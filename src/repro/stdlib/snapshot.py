"""Precompiled standard-library AST snapshot.

Every compilation with ``include_stdlib=True`` starts by parsing the same
few hundred lines of stdlib source; on a cold process that parse is pure
overhead.  This module maintains a pickled snapshot of the parsed stdlib
:class:`~repro.lang.ast.SourceUnit` next to the package
(:data:`SNAPSHOT_FILENAME`) so a cold compile deserialises the AST instead
of lexing and parsing it.

The snapshot is **advisory, never authoritative**:

* it is version-stamped with the pickle format, a SHA-256 of the stdlib
  source text and the compiler version; any mismatch (or a missing,
  truncated or corrupt file) silently falls back to a live parse and bumps
  :func:`snapshot_counters`'s ``fallbacks`` counter --
  :func:`load_stdlib_unit` never raises;
* ``tests/test_stdlib_snapshot.py`` asserts the committed snapshot is
  fresh (stamp matches the current source and version) and that the
  deserialised AST equals a live parse, so the snapshot cannot drift;
* ``setup.py`` rebuilds it at wheel build time and
  ``python -m repro.stdlib.snapshot`` regenerates it by hand after any
  stdlib or AST change.
"""

from __future__ import annotations

import hashlib
import pickle
import threading
from pathlib import Path
from typing import Optional

from repro import __version__
from repro.stdlib.source import STDLIB_SOURCE

#: Bump when the payload layout (not the AST classes -- those are covered by
#: the compiler-version stamp) changes incompatibly.
SNAPSHOT_FORMAT = 1

#: Snapshot file, shipped as package data next to this module.
SNAPSHOT_FILENAME = "_stdlib_ast.pkl"

_LOCK = threading.Lock()
_COUNTERS = {"hits": 0, "fallbacks": 0}
_LAST_FALLBACK: Optional[str] = None


def snapshot_path() -> Path:
    """Where the snapshot lives (inside the installed package)."""
    return Path(__file__).resolve().parent / SNAPSHOT_FILENAME


def _stamp(source_text: str) -> dict[str, object]:
    return {
        "format": SNAPSHOT_FORMAT,
        "source_sha256": hashlib.sha256(source_text.encode("utf-8")).hexdigest(),
        "compiler": __version__,
    }


def _record_fallback(reason: str) -> None:
    global _LAST_FALLBACK
    with _LOCK:
        _COUNTERS["fallbacks"] += 1
        _LAST_FALLBACK = reason


def snapshot_counters() -> dict[str, object]:
    """Hit/fallback counters (and the most recent fallback reason)."""
    with _LOCK:
        return {**_COUNTERS, "last_fallback": _LAST_FALLBACK}


def reset_counters() -> None:
    global _LAST_FALLBACK
    with _LOCK:
        _COUNTERS["hits"] = 0
        _COUNTERS["fallbacks"] = 0
        _LAST_FALLBACK = None


def load_stdlib_unit(path: Optional[Path] = None):
    """Deserialise the stdlib AST snapshot, or ``None`` on any mismatch.

    Returns the pickled :class:`~repro.lang.ast.SourceUnit` only when the
    stamp matches the *current* stdlib source and compiler version; every
    failure mode -- missing file, short read, unpicklable bytes, stale
    stamp, wrong payload shape -- records a fallback reason and returns
    ``None`` so the caller live-parses instead.  This function must never
    raise: a broken snapshot may cost milliseconds, not a compile.
    """
    target = path if path is not None else snapshot_path()
    try:
        raw = target.read_bytes()
    except OSError:
        _record_fallback("missing")
        return None
    try:
        payload = pickle.loads(raw)
    except Exception:
        _record_fallback("corrupt")
        return None
    if not isinstance(payload, dict):
        _record_fallback("corrupt")
        return None
    if payload.get("stamp") != _stamp(STDLIB_SOURCE):
        _record_fallback("stale")
        return None
    unit = payload.get("unit")
    from repro.lang.ast import SourceUnit

    if not isinstance(unit, SourceUnit):
        _record_fallback("corrupt")
        return None
    with _LOCK:
        _COUNTERS["hits"] += 1
    return unit


def build_snapshot(path: Optional[Path] = None) -> Path:
    """Parse the stdlib live and write a fresh, stamped snapshot."""
    from repro.lang.parser import parse_source

    target = path if path is not None else snapshot_path()
    unit = parse_source(STDLIB_SOURCE, "std.td")
    payload = {"stamp": _stamp(STDLIB_SOURCE), "unit": unit}
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_suffix(".tmp")
    tmp.write_bytes(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    tmp.replace(target)
    return target


def main() -> int:  # pragma: no cover - exercised via CLI
    target = build_snapshot()
    print(f"wrote {target} ({target.stat().st_size} bytes)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
