"""Programmatic builders for standard-library primitives.

Sugaring (automatic duplicator/voider insertion) happens *after* template
evaluation, so it cannot go through the normal template-instantiation path.
Instead it calls these builders, which create the concrete streamlet and
external implementation for a primitive directly in the IR -- mirroring the
paper's observation that standard-library components have a hard-coded
generation process.

Each generated implementation carries ``metadata["primitive"]`` so the VHDL
backend (:mod:`repro.stdlib.generators`) and the simulator can recognise it
and attach behaviour.
"""

from __future__ import annotations

from repro.ir.model import (
    ClockDomain,
    Implementation,
    Port,
    PortDirection,
    Project,
    Streamlet,
)
from repro.spec.logical_types import LogicalType
from repro.utils.names import mangle


#: Primitive kinds with hard-coded generators.  The names match the template
#: names used in the standard-library source (with the ``_i`` implementation
#: suffix stripped) so that external implementations instantiated *from the
#: source templates* are recognised too.
PRIMITIVE_KINDS = frozenset(
    {
        # handshake-level
        "duplicator",
        "voider",
        "demux",
        "mux",
        # constant generators
        "const_int_generator",
        "const_float_generator",
        "const_str_generator",
        # arithmetic
        "adder",
        "subtractor",
        "multiplier",
        "divider",
        # comparators
        "compare_eq",
        "compare_ne",
        "compare_lt",
        "compare_le",
        "compare_gt",
        "compare_ge",
        "compare_const_eq",
        # boolean combinators
        "or",
        "and",
        "not",
        # filtering and aggregation
        "filter",
        "sum",
        "count",
        "avg",
        "min_acc",
        "max_acc",
        "group_sum",
        "group_avg",
        "group_count",
        # logical-type transformation
        "combine2",
    }
)


def is_primitive(implementation: Implementation) -> bool:
    """True if the implementation is a standard-library primitive."""
    return primitive_kind(implementation) is not None


def primitive_kind(implementation: Implementation) -> str | None:
    """Return the primitive kind of an implementation, or None."""
    explicit = implementation.metadata.get("primitive")
    if isinstance(explicit, str) and explicit in PRIMITIVE_KINDS:
        return explicit
    template = implementation.metadata.get("template")
    if isinstance(template, str):
        base = template.split("__")[0]
        for suffix in ("_i", "_impl", "_s"):
            if base.endswith(suffix):
                base = base[: -len(suffix)]
                break
        if base in PRIMITIVE_KINDS:
            return base
    return None


def build_duplicator(
    project: Project,
    stream_type: LogicalType,
    channels: int,
    clock_domain: ClockDomain | None = None,
) -> Implementation:
    """Create (or reuse) a duplicator primitive for ``stream_type``.

    A duplicator copies every data packet from its single input to all of its
    ``channels`` outputs and only acknowledges the input once *all* outputs
    have been acknowledged (Section IV-C).
    """
    if channels < 2:
        raise ValueError(f"a duplicator needs at least 2 output channels, got {channels}")
    clock = clock_domain or ClockDomain()
    name = mangle("duplicator", (stream_type, channels))
    if name in project.implementations:
        return project.implementations[name]

    streamlet = Streamlet(
        name=f"{name}_s",
        documentation=f"duplicator of {stream_type.to_tydi()} to {channels} channels",
    )
    streamlet.add_port(Port("input", stream_type, PortDirection.IN, clock))
    for index in range(channels):
        streamlet.add_port(Port(f"output_{index}", stream_type, PortDirection.OUT, clock))
    project.add_streamlet(streamlet)

    implementation = Implementation(
        name=name,
        streamlet=streamlet.name,
        external=True,
        documentation=streamlet.documentation,
        metadata={
            "primitive": "duplicator",
            "channels": channels,
            "data_type": stream_type,
            "synthesized": True,
        },
    )
    project.add_implementation(implementation)
    return implementation


def build_voider(
    project: Project,
    stream_type: LogicalType,
    clock_domain: ClockDomain | None = None,
) -> Implementation:
    """Create (or reuse) a voider primitive for ``stream_type``.

    A voider removes all data packets by always acknowledging the source and
    ignoring the data (Section IV-C).
    """
    clock = clock_domain or ClockDomain()
    name = mangle("voider", (stream_type,))
    if name in project.implementations:
        return project.implementations[name]

    streamlet = Streamlet(
        name=f"{name}_s",
        documentation=f"voider of {stream_type.to_tydi()}",
    )
    streamlet.add_port(Port("input", stream_type, PortDirection.IN, clock))
    project.add_streamlet(streamlet)

    implementation = Implementation(
        name=name,
        streamlet=streamlet.name,
        external=True,
        documentation=streamlet.documentation,
        metadata={
            "primitive": "voider",
            "data_type": stream_type,
            "synthesized": True,
        },
    )
    project.add_implementation(implementation)
    return implementation
