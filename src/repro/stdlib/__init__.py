"""Tydi-lang standard library.

The standard library (Section IV-C of the paper) is a *pure-template*
library: none of its components can be described as instances and
connections, so each has a hard-coded generation process.  This package
provides three views of it:

* :data:`repro.stdlib.source.STDLIB_SOURCE` -- the Tydi-lang source text of
  the template streamlets/implementations (this is the "LoC for Tydi-lang
  standard library" column of Table IV),
* :mod:`repro.stdlib.components` -- programmatic builders that create the
  concrete IR for primitives directly (used by sugaring for the automatic
  duplicator / voider insertion),
* :mod:`repro.stdlib.generators` -- the RTL (VHDL architecture body)
  generators for each primitive, consumed by the VHDL backend.
"""

from repro.stdlib.source import STDLIB_SOURCE, stdlib_loc
from repro.stdlib.components import (
    build_duplicator,
    build_voider,
    is_primitive,
    primitive_kind,
)

__all__ = [
    "STDLIB_SOURCE",
    "stdlib_loc",
    "build_duplicator",
    "build_voider",
    "is_primitive",
    "primitive_kind",
]
