"""Hard-coded VHDL (RTL) generators for standard-library primitives.

Section IV-C of the paper: components in the standard library are too
elementary to be described as instances and connections, so "there is another
RTL generation process for these standard components [...] this generation
process must be manually defined".  This module is that manually defined
process: for each primitive kind it emits a behavioural VHDL architecture
operating on the physical-stream signals of the primitive's ports.

The generators are intentionally complete (handshake control, per-channel
bookkeeping, dimension ``last`` propagation) so that the generated-VHDL line
counts used in Table IV reflect a realistic implementation rather than a
stub.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import TydiBackendError
from repro.ir.model import Implementation, PortDirection, Project, Streamlet
from repro.vhdl.signals import data_width_of, last_width_of, vhdl_identifier, vhdl_type


def _ports_by_direction(streamlet: Streamlet) -> tuple[list, list]:
    inputs = [p for p in streamlet.ports if p.direction is PortDirection.IN]
    outputs = [p for p in streamlet.ports if p.direction is PortDirection.OUT]
    return inputs, outputs


def _resize_assign(dst: str, dst_width: int, src: str, src_width: int) -> str:
    """Width-adapting assignment between two std_logic_vector signals."""
    if dst_width == src_width:
        return f"{dst} <= {src};"
    return f"{dst} <= std_logic_vector(resize(unsigned({src}), {dst_width}));"


def _last_passthrough(in_port, out_port) -> list[str]:
    in_last = last_width_of(in_port)
    out_last = last_width_of(out_port)
    if in_last and out_last:
        if in_last == out_last:
            return [f"  {vhdl_identifier(out_port.name)}_last <= {vhdl_identifier(in_port.name)}_last;"]
        return [
            f"  {vhdl_identifier(out_port.name)}_last <= "
            f"std_logic_vector(resize(unsigned({vhdl_identifier(in_port.name)}_last), {out_last}));"
        ]
    if out_last:
        zero = "'0'" if out_last == 1 else f"(others => '0')"
        return [f"  {vhdl_identifier(out_port.name)}_last <= {zero};"]
    return []


def _architecture(name: str, entity: str, declarations: list[str], body: list[str]) -> str:
    decl_text = "\n".join(f"  {line}" if line else "" for line in declarations)
    body_text = "\n".join(f"  {line}" if line else "" for line in body)
    return (
        f"architecture {name} of {entity} is\n"
        f"{decl_text}\n"
        f"begin\n"
        f"{body_text}\n"
        f"end architecture {name};\n"
    )


# ---------------------------------------------------------------------------
# Handshake-level primitives
# ---------------------------------------------------------------------------


def generate_duplicator(implementation: Implementation, streamlet: Streamlet, project: Project) -> str:
    """Duplicator: copy each packet to all outputs, ack input when all acked."""
    inputs, outputs = _ports_by_direction(streamlet)
    in_port = inputs[0]
    in_name = vhdl_identifier(in_port.name)
    channels = len(outputs)

    declarations = [
        f"-- duplicator with {channels} output channel(s)",
        f"signal pending : std_logic_vector({channels - 1} downto 0);",
        "signal all_done : std_logic;",
    ]
    body: list[str] = []
    done_terms = []
    for index, out_port in enumerate(outputs):
        out_name = vhdl_identifier(out_port.name)
        body.append(f"{out_name}_valid <= {in_name}_valid and not pending({index});")
        body.append(_resize_assign(f"{out_name}_data", data_width_of(out_port), f"{in_name}_data", data_width_of(in_port)))
        body.extend(line.strip() for line in _last_passthrough(in_port, out_port))
        done_terms.append(f"(pending({index}) or ({out_name}_valid and {out_name}_ready))")
    body.append("all_done <= " + " and ".join(done_terms) + ";")
    body.append(f"{in_name}_ready <= all_done;")
    body.append("")
    body.append("bookkeeping : process(clk)")
    body.append("begin")
    body.append("  if rising_edge(clk) then")
    body.append("    if rst = '1' then")
    body.append("      pending <= (others => '0');")
    body.append("    elsif all_done = '1' then")
    body.append("      pending <= (others => '0');")
    body.append(f"    elsif {in_name}_valid = '1' then")
    for index, out_port in enumerate(outputs):
        out_name = vhdl_identifier(out_port.name)
        body.append(f"      if {out_name}_valid = '1' and {out_name}_ready = '1' then")
        body.append(f"        pending({index}) <= '1';")
        body.append("      end if;")
    body.append("    end if;")
    body.append("  end if;")
    body.append("end process;")
    return _architecture("behavioural", streamlet.name, declarations, body)


def generate_voider(implementation: Implementation, streamlet: Streamlet, project: Project) -> str:
    """Voider: always ready, ignores all data."""
    inputs, _ = _ports_by_direction(streamlet)
    in_name = vhdl_identifier(inputs[0].name)
    declarations = ["-- voider: sink every packet immediately"]
    body = [f"{in_name}_ready <= '1';"]
    return _architecture("behavioural", streamlet.name, declarations, body)


def generate_demux(implementation: Implementation, streamlet: Streamlet, project: Project) -> str:
    """Demultiplexer: round-robin distribution of packets over the outputs."""
    inputs, outputs = _ports_by_direction(streamlet)
    in_port = inputs[0]
    in_name = vhdl_identifier(in_port.name)
    channels = len(outputs)
    sel_width = max(1, (channels - 1).bit_length())

    declarations = [
        f"-- round-robin demultiplexer over {channels} channel(s)",
        f"signal selected : unsigned({sel_width - 1} downto 0);",
    ]
    body: list[str] = []
    ready_terms = []
    for index, out_port in enumerate(outputs):
        out_name = vhdl_identifier(out_port.name)
        body.append(
            f"{out_name}_valid <= {in_name}_valid when selected = {index} else '0';"
        )
        body.append(_resize_assign(f"{out_name}_data", data_width_of(out_port), f"{in_name}_data", data_width_of(in_port)))
        body.extend(line.strip() for line in _last_passthrough(in_port, out_port))
        ready_terms.append(f"{out_name}_ready when selected = {index}")
    body.append(f"{in_name}_ready <= " + " else ".join(ready_terms) + " else '0';")
    body.append("")
    body.append("advance : process(clk)")
    body.append("begin")
    body.append("  if rising_edge(clk) then")
    body.append("    if rst = '1' then")
    body.append("      selected <= (others => '0');")
    body.append(f"    elsif {in_name}_valid = '1' and {in_name}_ready = '1' then")
    body.append(f"      if selected = {channels - 1} then")
    body.append("        selected <= (others => '0');")
    body.append("      else")
    body.append("        selected <= selected + 1;")
    body.append("      end if;")
    body.append("    end if;")
    body.append("  end if;")
    body.append("end process;")
    return _architecture("behavioural", streamlet.name, declarations, body)


def generate_mux(implementation: Implementation, streamlet: Streamlet, project: Project) -> str:
    """Multiplexer: round-robin arbitration of the inputs onto one output."""
    inputs, outputs = _ports_by_direction(streamlet)
    out_port = outputs[0]
    out_name = vhdl_identifier(out_port.name)
    channels = len(inputs)
    sel_width = max(1, (channels - 1).bit_length())

    declarations = [
        f"-- round-robin multiplexer over {channels} channel(s)",
        f"signal selected : unsigned({sel_width - 1} downto 0);",
    ]
    body: list[str] = []
    valid_terms = []
    data_terms = []
    for index, in_port in enumerate(inputs):
        in_name = vhdl_identifier(in_port.name)
        valid_terms.append(f"{in_name}_valid when selected = {index}")
        data_terms.append(f"{in_name}_data when selected = {index}")
        body.append(
            f"{in_name}_ready <= {out_name}_ready when selected = {index} else '0';"
        )
    body.append(f"{out_name}_valid <= " + " else ".join(valid_terms) + " else '0';")
    body.append(f"{out_name}_data <= " + " else ".join(data_terms) + " else (others => '0');")
    out_last = last_width_of(out_port)
    if out_last:
        body.append(f"{out_name}_last <= (others => '0');")
    body.append("")
    body.append("advance : process(clk)")
    body.append("begin")
    body.append("  if rising_edge(clk) then")
    body.append("    if rst = '1' then")
    body.append("      selected <= (others => '0');")
    body.append(f"    elsif {out_name}_valid = '1' and {out_name}_ready = '1' then")
    body.append(f"      if selected = {channels - 1} then")
    body.append("        selected <= (others => '0');")
    body.append("      else")
    body.append("        selected <= selected + 1;")
    body.append("      end if;")
    body.append("    end if;")
    body.append("  end if;")
    body.append("end process;")
    return _architecture("behavioural", streamlet.name, declarations, body)


# ---------------------------------------------------------------------------
# Constant generators
# ---------------------------------------------------------------------------


def _constant_bits(value: object, width: int) -> str:
    """Encode a template-argument constant as a VHDL literal of ``width`` bits."""
    if isinstance(value, bool):
        number = int(value)
    elif isinstance(value, int):
        number = value % (1 << width)
    elif isinstance(value, float):
        # Decimal constants use a two-fractional-digit fixed-point encoding,
        # matching the decimal(15,2) columns of the evaluation queries.
        number = int(round(value * 100)) % (1 << width)
    elif isinstance(value, str):
        # Strings are encoded byte-wise (ASCII), truncated/padded to width.
        number = 0
        for ch in value.encode("utf-8"):
            number = (number << 8) | ch
        number %= 1 << width
    else:
        number = 0
    bits = format(number, f"0{width}b")[-width:]
    return f'"{bits}"'


def generate_const(implementation: Implementation, streamlet: Streamlet, project: Project) -> str:
    """Constant generator: drive a constant packet whenever the sink is ready."""
    _, outputs = _ports_by_direction(streamlet)
    out_port = outputs[0]
    out_name = vhdl_identifier(out_port.name)
    width = data_width_of(out_port)
    arguments = implementation.metadata.get("arguments", ())
    value = arguments[1] if len(arguments) > 1 else 0
    if hasattr(value, "logical_type"):
        value = 0

    declarations = [
        f"-- constant generator ({value!r})",
        f"constant c_value : std_logic_vector({width - 1} downto 0) := {_constant_bits(value, width)};",
    ]
    body = [
        f"{out_name}_valid <= '1';",
        f"{out_name}_data <= c_value;",
    ]
    out_last = last_width_of(out_port)
    if out_last:
        body.append(f"{out_name}_last <= (others => '0');")
    return _architecture("behavioural", streamlet.name, declarations, body)


# ---------------------------------------------------------------------------
# Arithmetic and comparison primitives
# ---------------------------------------------------------------------------

_ARITH_EXPR = {
    "adder": "resize(unsigned(lhs_q), result_width) + resize(unsigned(rhs_q), result_width)",
    "subtractor": "resize(unsigned(lhs_q), result_width) - resize(unsigned(rhs_q), result_width)",
    "multiplier": "resize(unsigned(lhs_q) * unsigned(rhs_q), result_width)",
    "divider": "resize(unsigned(lhs_q) / to_integer(unsigned(rhs_q) + 1), result_width)",
}


def _binary_sync_body(streamlet: Streamlet, result_expr: str, result_is_bool: bool) -> tuple[list[str], list[str]]:
    """Common structure of two-input synchronised primitives."""
    inputs, outputs = _ports_by_direction(streamlet)
    lhs, rhs = inputs[0], inputs[1]
    out_port = outputs[0]
    lhs_name, rhs_name = vhdl_identifier(lhs.name), vhdl_identifier(rhs.name)
    out_name = vhdl_identifier(out_port.name)
    lhs_width, rhs_width = data_width_of(lhs), data_width_of(rhs)
    out_width = data_width_of(out_port)

    declarations = [
        "-- two-input synchronised operator",
        f"constant result_width : natural := {out_width};",
        f"signal lhs_q : std_logic_vector({lhs_width - 1} downto 0);",
        f"signal rhs_q : std_logic_vector({rhs_width - 1} downto 0);",
        "signal lhs_full : std_logic;",
        "signal rhs_full : std_logic;",
        "signal result_valid : std_logic;",
    ]
    body = [
        "-- accept an element from each operand stream into a one-deep buffer",
        f"{lhs_name}_ready <= not lhs_full;",
        f"{rhs_name}_ready <= not rhs_full;",
        "result_valid <= lhs_full and rhs_full;",
        f"{out_name}_valid <= result_valid;",
    ]
    if result_is_bool:
        body.append(f"{out_name}_data <= '1' when {result_expr} else '0';")
    else:
        body.append(f"{out_name}_data <= std_logic_vector({result_expr});")
    out_last = last_width_of(out_port)
    in_last = last_width_of(lhs)
    if out_last:
        if in_last:
            body.append(f"{out_name}_last <= {lhs_name}_last;")
        else:
            body.append(f"{out_name}_last <= (others => '0');")
    body += [
        "",
        "operands : process(clk)",
        "begin",
        "  if rising_edge(clk) then",
        "    if rst = '1' then",
        "      lhs_full <= '0';",
        "      rhs_full <= '0';",
        f"    elsif result_valid = '1' and {out_name}_ready = '1' then",
        "      lhs_full <= '0';",
        "      rhs_full <= '0';",
        "    else",
        f"      if {lhs_name}_valid = '1' and lhs_full = '0' then",
        f"        lhs_q <= {lhs_name}_data;",
        "        lhs_full <= '1';",
        "      end if;",
        f"      if {rhs_name}_valid = '1' and rhs_full = '0' then",
        f"        rhs_q <= {rhs_name}_data;",
        "        rhs_full <= '1';",
        "      end if;",
        "    end if;",
        "  end if;",
        "end process;",
    ]
    return declarations, body


def _make_arith_generator(kind: str):
    def generate(implementation: Implementation, streamlet: Streamlet, project: Project) -> str:
        declarations, body = _binary_sync_body(streamlet, _ARITH_EXPR[kind], result_is_bool=False)
        declarations[0] = f"-- {kind} over the element data"
        return _architecture("behavioural", streamlet.name, declarations, body)

    return generate


_COMPARE_EXPR = {
    "compare_eq": "unsigned(lhs_q) = unsigned(rhs_q)",
    "compare_ne": "unsigned(lhs_q) /= unsigned(rhs_q)",
    "compare_lt": "unsigned(lhs_q) < unsigned(rhs_q)",
    "compare_le": "unsigned(lhs_q) <= unsigned(rhs_q)",
    "compare_gt": "unsigned(lhs_q) > unsigned(rhs_q)",
    "compare_ge": "unsigned(lhs_q) >= unsigned(rhs_q)",
}


def _make_compare_generator(kind: str):
    def generate(implementation: Implementation, streamlet: Streamlet, project: Project) -> str:
        declarations, body = _binary_sync_body(streamlet, _COMPARE_EXPR[kind], result_is_bool=True)
        declarations[0] = f"-- {kind.replace('_', ' ')} comparator"
        return _architecture("behavioural", streamlet.name, declarations, body)

    return generate


def generate_compare_const(implementation: Implementation, streamlet: Streamlet, project: Project) -> str:
    """Comparator against a compile-time constant (template argument)."""
    inputs, outputs = _ports_by_direction(streamlet)
    in_port, out_port = inputs[0], outputs[0]
    in_name, out_name = vhdl_identifier(in_port.name), vhdl_identifier(out_port.name)
    width = data_width_of(in_port)
    arguments = implementation.metadata.get("arguments", ())
    value = arguments[1] if len(arguments) > 1 else 0
    if hasattr(value, "logical_type"):
        value = 0

    declarations = [
        f"-- comparator against constant {value!r}",
        f"constant c_ref : std_logic_vector({width - 1} downto 0) := {_constant_bits(value, width)};",
    ]
    body = [
        f"{out_name}_valid <= {in_name}_valid;",
        f"{in_name}_ready <= {out_name}_ready;",
        f"{out_name}_data <= '1' when {in_name}_data = c_ref else '0';",
    ]
    body.extend(line.strip() for line in _last_passthrough(in_port, out_port))
    return _architecture("behavioural", streamlet.name, declarations, body)


# ---------------------------------------------------------------------------
# Boolean combinators
# ---------------------------------------------------------------------------


def _make_logic_generator(op: str):
    def generate(implementation: Implementation, streamlet: Streamlet, project: Project) -> str:
        inputs, outputs = _ports_by_direction(streamlet)
        out_port = outputs[0]
        out_name = vhdl_identifier(out_port.name)
        in_names = [vhdl_identifier(p.name) for p in inputs]

        declarations = [f"-- {len(inputs)}-input {op} of boolean streams"]
        body: list[str] = []
        all_valid = " and ".join(f"{name}_valid" for name in in_names)
        body.append(f"{out_name}_valid <= {all_valid};")
        if op == "not":
            body.append(f"{out_name}_data <= not {in_names[0]}_data;")
        else:
            combined = f" {op} ".join(f"{name}_data" for name in in_names)
            body.append(f"{out_name}_data <= {combined};")
        for name in in_names:
            body.append(f"{name}_ready <= {out_name}_ready and ({all_valid});")
        body.extend(line.strip() for line in _last_passthrough(inputs[0], out_port))
        return _architecture("behavioural", streamlet.name, declarations, body)

    return generate


# ---------------------------------------------------------------------------
# Filtering and aggregation
# ---------------------------------------------------------------------------


def generate_filter(implementation: Implementation, streamlet: Streamlet, project: Project) -> str:
    """Filter: forward the data packet only when the keep bit is '1'."""
    inputs, outputs = _ports_by_direction(streamlet)
    data_in = next(p for p in inputs if p.name != "keep")
    keep_in = next(p for p in inputs if p.name == "keep")
    out_port = outputs[0]
    data_name, keep_name = vhdl_identifier(data_in.name), vhdl_identifier(keep_in.name)
    out_name = vhdl_identifier(out_port.name)

    declarations = [
        "-- filter: drop packets whose keep bit is '0'",
        "signal pass : std_logic;",
        "signal both_valid : std_logic;",
    ]
    body = [
        f"both_valid <= {data_name}_valid and {keep_name}_valid;",
        f"pass <= {keep_name}_data;",
        f"{out_name}_valid <= both_valid and pass;",
        _resize_assign(f"{out_name}_data", data_width_of(out_port), f"{data_name}_data", data_width_of(data_in)),
        f"-- a dropped packet is consumed without being forwarded",
        f"{data_name}_ready <= both_valid and ({out_name}_ready or not pass);",
        f"{keep_name}_ready <= both_valid and ({out_name}_ready or not pass);",
    ]
    body.extend(line.strip() for line in _last_passthrough(data_in, out_port))
    return _architecture("behavioural", streamlet.name, declarations, body)


def _make_accumulator_generator(kind: str):
    init = {
        "sum": "(others => '0')",
        "count": "(others => '0')",
        "avg": "(others => '0')",
        "min_acc": "(others => '1')",
        "max_acc": "(others => '0')",
    }[kind]
    update = {
        "sum": "acc + resize(unsigned(in_data), acc'length)",
        "count": "acc + 1",
        "avg": "acc + resize(unsigned(in_data), acc'length)",
        "min_acc": "minimum(acc, resize(unsigned(in_data), acc'length))",
        "max_acc": "maximum(acc, resize(unsigned(in_data), acc'length))",
    }[kind]

    def generate(implementation: Implementation, streamlet: Streamlet, project: Project) -> str:
        inputs, outputs = _ports_by_direction(streamlet)
        in_port, out_port = inputs[0], outputs[0]
        in_name, out_name = vhdl_identifier(in_port.name), vhdl_identifier(out_port.name)
        out_width = data_width_of(out_port)
        in_last = last_width_of(in_port)
        last_expr = (
            f"{in_name}_last({in_last - 1})" if in_last > 1 else f"{in_name}_last" if in_last == 1 else "'0'"
        )

        declarations = [
            f"-- {kind} accumulator: reduce the input sequence to one result",
            f"signal acc : unsigned({out_width - 1} downto 0);",
            "signal elements : unsigned(31 downto 0);",
            "signal result_pending : std_logic;",
            f"signal in_data : std_logic_vector({data_width_of(in_port) - 1} downto 0);",
        ]
        body = [
            f"in_data <= {in_name}_data;",
            f"{in_name}_ready <= not result_pending;",
            f"{out_name}_valid <= result_pending;",
        ]
        if kind == "avg":
            body.append(
                f"{out_name}_data <= std_logic_vector(acc / to_integer(elements + 1))"
                f" when elements /= 0 else std_logic_vector(acc);"
            )
        elif kind == "count":
            body.append(f"{out_name}_data <= std_logic_vector(resize(elements, {out_width}));")
        else:
            body.append(f"{out_name}_data <= std_logic_vector(acc);")
        out_last = last_width_of(out_port)
        if out_last:
            body.append(f"{out_name}_last <= (others => '1');")
        body += [
            "",
            "accumulate : process(clk)",
            "begin",
            "  if rising_edge(clk) then",
            "    if rst = '1' then",
            f"      acc <= {init};",
            "      elements <= (others => '0');",
            "      result_pending <= '0';",
            f"    elsif result_pending = '1' and {out_name}_ready = '1' then",
            f"      acc <= {init};",
            "      elements <= (others => '0');",
            "      result_pending <= '0';",
            f"    elsif {in_name}_valid = '1' and result_pending = '0' then",
            f"      acc <= {update};",
            "      elements <= elements + 1;",
            f"      if {last_expr} = '1' then",
            "        result_pending <= '1';",
            "      end if;",
            "    end if;",
            "  end if;",
            "end process;",
        ]
        return _architecture("behavioural", streamlet.name, declarations, body)

    return generate


def generate_combine2(implementation: Implementation, streamlet: Streamlet, project: Project) -> str:
    """Combine two synchronised element streams into one composite element."""
    inputs, outputs = _ports_by_direction(streamlet)
    in0, in1 = inputs[0], inputs[1]
    out_port = outputs[0]
    in0_name, in1_name = vhdl_identifier(in0.name), vhdl_identifier(in1.name)
    out_name = vhdl_identifier(out_port.name)
    in0_width, in1_width = data_width_of(in0), data_width_of(in1)
    out_width = data_width_of(out_port)

    declarations = [
        "-- combine two element streams into one composite element",
        f"signal combined : std_logic_vector({in0_width + in1_width - 1} downto 0);",
        "signal both_valid : std_logic;",
    ]
    body = [
        f"both_valid <= {in0_name}_valid and {in1_name}_valid;",
        f"combined <= {in0_name}_data & {in1_name}_data;",
        f"{out_name}_valid <= both_valid;",
        _resize_assign(f"{out_name}_data", out_width, "combined", in0_width + in1_width),
        f"{in0_name}_ready <= both_valid and {out_name}_ready;",
        f"{in1_name}_ready <= both_valid and {out_name}_ready;",
    ]
    body.extend(line.strip() for line in _last_passthrough(in0, out_port))
    return _architecture("behavioural", streamlet.name, declarations, body)


def _make_group_aggregate_generator(kind: str) -> Callable:
    def generate(implementation: Implementation, streamlet: Streamlet, project: Project) -> str:
        inputs, outputs = _ports_by_direction(streamlet)
        key_port = next(p for p in inputs if p.name == "key")
        value_port = next(p for p in inputs if p.name == "value")
        out_port = outputs[0]
        key_name = vhdl_identifier(key_port.name)
        value_name = vhdl_identifier(value_port.name)
        out_name = vhdl_identifier(out_port.name)
        key_width = data_width_of(key_port)
        value_width = data_width_of(value_port)
        out_width = data_width_of(out_port)
        in_last = last_width_of(value_port)
        last_expr = (
            f"{value_name}_last({in_last - 1})" if in_last > 1 else f"{value_name}_last" if in_last == 1 else "'0'"
        )
        op = {"group_sum": "sum", "group_avg": "avg", "group_count": "count"}[kind]

        declarations = [
            f"-- keyed {op} aggregation (GROUP BY): small direct-mapped key table",
            "constant table_size : natural := 64;",
            f"type key_array is array (0 to table_size - 1) of std_logic_vector({key_width - 1} downto 0);",
            f"type acc_array is array (0 to table_size - 1) of unsigned({max(out_width, 32) - 1} downto 0);",
            "type count_array is array (0 to table_size - 1) of unsigned(31 downto 0);",
            "signal keys : key_array;",
            "signal accs : acc_array;",
            "signal counts : count_array;",
            "signal occupied : std_logic_vector(table_size - 1 downto 0);",
            "signal drain_index : natural range 0 to table_size;",
            "signal draining : std_logic;",
            f"signal slot : natural range 0 to table_size - 1;",
        ]
        body = [
            f"slot <= to_integer(unsigned({key_name}_data({min(5, key_width - 1)} downto 0)));",
            f"{key_name}_ready <= {value_name}_valid and not draining;",
            f"{value_name}_ready <= {key_name}_valid and not draining;",
            f"{out_name}_valid <= draining when drain_index < table_size and occupied(drain_index) = '1' else '0';",
        ]
        if op == "count":
            body.append(
                f"{out_name}_data <= std_logic_vector(resize(counts(drain_index), {out_width})) "
                f"when drain_index < table_size else (others => '0');"
            )
        elif op == "avg":
            body.append(
                f"{out_name}_data <= std_logic_vector(resize(accs(drain_index) / "
                f"to_integer(counts(drain_index) + 1), {out_width})) "
                f"when drain_index < table_size else (others => '0');"
            )
        else:
            body.append(
                f"{out_name}_data <= std_logic_vector(resize(accs(drain_index), {out_width})) "
                f"when drain_index < table_size else (others => '0');"
            )
        out_last = last_width_of(out_port)
        if out_last:
            body.append(f"{out_name}_last <= (others => '1') when drain_index = table_size - 1 else (others => '0');")
        body += [
            "",
            "aggregate : process(clk)",
            "begin",
            "  if rising_edge(clk) then",
            "    if rst = '1' then",
            "      occupied <= (others => '0');",
            "      draining <= '0';",
            "      drain_index <= 0;",
            "    elsif draining = '0' then",
            f"      if {key_name}_valid = '1' and {value_name}_valid = '1' then",
            f"        keys(slot) <= {key_name}_data;",
            "        if occupied(slot) = '1' then",
            f"          accs(slot) <= accs(slot) + resize(unsigned({value_name}_data), accs(slot)'length);",
            "          counts(slot) <= counts(slot) + 1;",
            "        else",
            f"          accs(slot) <= resize(unsigned({value_name}_data), accs(slot)'length);",
            "          counts(slot) <= to_unsigned(1, 32);",
            "          occupied(slot) <= '1';",
            "        end if;",
            f"        if {last_expr} = '1' then",
            "          draining <= '1';",
            "          drain_index <= 0;",
            "        end if;",
            "      end if;",
            "    else",
            f"      if {out_name}_ready = '1' or occupied(drain_index) = '0' then",
            "        if drain_index = table_size then",
            "          draining <= '0';",
            "          occupied <= (others => '0');",
            "        else",
            "          drain_index <= drain_index + 1;",
            "        end if;",
            "      end if;",
            "    end if;",
            "  end if;",
            "end process;",
        ]
        return _architecture("behavioural", streamlet.name, declarations, body)

    return generate


#: Dispatch table from primitive kind to its generator.
GENERATORS: dict[str, Callable[[Implementation, Streamlet, Project], str]] = {
    "duplicator": generate_duplicator,
    "voider": generate_voider,
    "demux": generate_demux,
    "mux": generate_mux,
    "const_int_generator": generate_const,
    "const_float_generator": generate_const,
    "const_str_generator": generate_const,
    "adder": _make_arith_generator("adder"),
    "subtractor": _make_arith_generator("subtractor"),
    "multiplier": _make_arith_generator("multiplier"),
    "divider": _make_arith_generator("divider"),
    "compare_eq": _make_compare_generator("compare_eq"),
    "compare_ne": _make_compare_generator("compare_ne"),
    "compare_lt": _make_compare_generator("compare_lt"),
    "compare_le": _make_compare_generator("compare_le"),
    "compare_gt": _make_compare_generator("compare_gt"),
    "compare_ge": _make_compare_generator("compare_ge"),
    "compare_const_eq": generate_compare_const,
    "or": _make_logic_generator("or"),
    "and": _make_logic_generator("and"),
    "not": _make_logic_generator("not"),
    "filter": generate_filter,
    "sum": _make_accumulator_generator("sum"),
    "count": _make_accumulator_generator("count"),
    "avg": _make_accumulator_generator("avg"),
    "min_acc": _make_accumulator_generator("min_acc"),
    "max_acc": _make_accumulator_generator("max_acc"),
    "group_sum": _make_group_aggregate_generator("group_sum"),
    "group_avg": _make_group_aggregate_generator("group_avg"),
    "group_count": _make_group_aggregate_generator("group_count"),
    "combine2": generate_combine2,
}


def generate_primitive_architecture(
    kind: str, implementation: Implementation, streamlet: Streamlet, project: Project
) -> str:
    """Generate the behavioural VHDL architecture for a primitive kind."""
    generator = GENERATORS.get(kind)
    if generator is None:
        raise TydiBackendError(f"no RTL generator registered for primitive kind {kind!r}")
    return generator(implementation, streamlet, project)
