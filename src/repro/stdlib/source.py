'''Tydi-lang source text of the standard library.

Section IV-C: the standard library is a pure-template library whose
components fall into three categories -- handshake-level components
(duplicator, voider), components describing common behaviour for different
logical types (adders, comparators, filters, aggregators), and components
that transform logical types.  All of them are *external* implementations
(their RTL comes from the hard-coded generators in
:mod:`repro.stdlib.generators`), except for ``parallelize_i`` which is a true
template implementation built from a demultiplexer, a multiplexer and an
array of processing units (the worked example of Section IV-B).

The module-level constant :data:`STDLIB_SOURCE` is what gets prepended to
every compilation that requests the standard library; its line count is the
"LoC for Tydi-lang standard library" figure of Table IV.
'''

from __future__ import annotations

from repro.utils.text import count_loc

STDLIB_SOURCE = """
package std;

// ---------------------------------------------------------------------------
// Common logical types
// ---------------------------------------------------------------------------
// The boolean stream used by filters and comparators: one bit per element.
type std_bool = Stream(Bit(1), d=1);

// ---------------------------------------------------------------------------
// Handshake-level components (independent of the logical type)
// ---------------------------------------------------------------------------
// Duplicator: copy each packet to all outputs, acknowledge the input only
// when every output has acknowledged.
streamlet duplicator_s<data_type: type, channel: int> {
    input: data_type in,
    output: data_type out [channel],
}
external impl duplicator_i<data_type: type, channel: int>
    of duplicator_s<type data_type, channel>;

// Voider: always ready, discards every packet.
streamlet voider_s<data_type: type> {
    input: data_type in,
}
external impl voider_i<data_type: type> of voider_s<type data_type>;

// Demultiplexer / multiplexer over a channel array.
streamlet demux_s<data_type: type, channel: int> {
    input: data_type in,
    output: data_type out [channel],
}
external impl demux_i<data_type: type, channel: int>
    of demux_s<type data_type, channel>;

streamlet mux_s<data_type: type, channel: int> {
    input: data_type in [channel],
    output: data_type out,
}
external impl mux_i<data_type: type, channel: int>
    of mux_s<type data_type, channel>;

// ---------------------------------------------------------------------------
// Constant generators
// ---------------------------------------------------------------------------
streamlet const_generator_s<data_type: type> {
    output: data_type out,
}
external impl const_int_generator_i<data_type: type, value: int>
    of const_generator_s<type data_type>;
external impl const_float_generator_i<data_type: type, value: float>
    of const_generator_s<type data_type>;
external impl const_str_generator_i<data_type: type, value: string>
    of const_generator_s<type data_type>;

// ---------------------------------------------------------------------------
// Arithmetic components (shared behaviour over numeric logical types)
// ---------------------------------------------------------------------------
streamlet binary_op_s<in_type: type, out_type: type> {
    lhs: in_type in,
    rhs: in_type in,
    output: out_type out,
}
external impl adder_i<in_type: type, out_type: type>
    of binary_op_s<type in_type, type out_type>;
external impl subtractor_i<in_type: type, out_type: type>
    of binary_op_s<type in_type, type out_type>;
external impl multiplier_i<in_type: type, out_type: type>
    of binary_op_s<type in_type, type out_type>;
external impl divider_i<in_type: type, out_type: type>
    of binary_op_s<type in_type, type out_type>;

// ---------------------------------------------------------------------------
// Comparators (produce a std_bool keep/select signal)
// ---------------------------------------------------------------------------
streamlet comparator_s<in_type: type> {
    lhs: in_type in,
    rhs: in_type in,
    result: std_bool out,
}
external impl compare_eq_i<in_type: type> of comparator_s<type in_type>;
external impl compare_ne_i<in_type: type> of comparator_s<type in_type>;
external impl compare_lt_i<in_type: type> of comparator_s<type in_type>;
external impl compare_le_i<in_type: type> of comparator_s<type in_type>;
external impl compare_gt_i<in_type: type> of comparator_s<type in_type>;
external impl compare_ge_i<in_type: type> of comparator_s<type in_type>;

// Comparator against a compile-time string constant (e.g. p_brand = ':1').
streamlet const_comparator_s<in_type: type> {
    input: in_type in,
    result: std_bool out,
}
external impl compare_const_eq_i<in_type: type, value: string>
    of const_comparator_s<type in_type>;

// ---------------------------------------------------------------------------
// Boolean combinators over a configurable number of inputs
// ---------------------------------------------------------------------------
streamlet logic_op_s<channel: int> {
    input: std_bool in [channel],
    output: std_bool out,
}
external impl or_i<channel: int> of logic_op_s<channel>;
external impl and_i<channel: int> of logic_op_s<channel>;
external impl not_i of logic_op_s<1>;

// ---------------------------------------------------------------------------
// Filtering and aggregation
// ---------------------------------------------------------------------------
// Filter: forwards the current packet only when the keep signal is 1.
streamlet filter_s<data_type: type> {
    input: data_type in,
    keep: std_bool in,
    output: data_type out,
}
external impl filter_i<data_type: type> of filter_s<type data_type>;

// Stream aggregators: reduce a stream to a single result packet.
streamlet accumulator_s<in_type: type, out_type: type> {
    input: in_type in,
    output: out_type out,
}
external impl sum_i<in_type: type, out_type: type>
    of accumulator_s<type in_type, type out_type>;
external impl count_i<in_type: type, out_type: type>
    of accumulator_s<type in_type, type out_type>;
external impl avg_i<in_type: type, out_type: type>
    of accumulator_s<type in_type, type out_type>;
external impl min_acc_i<in_type: type, out_type: type>
    of accumulator_s<type in_type, type out_type>;
external impl max_acc_i<in_type: type, out_type: type>
    of accumulator_s<type in_type, type out_type>;

// Keyed aggregation (SQL GROUP BY): reduce values per key.
streamlet group_aggregate_s<key_type: type, value_type: type, out_type: type> {
    key: key_type in,
    value: value_type in,
    output: out_type out,
}
external impl group_sum_i<key_type: type, value_type: type, out_type: type>
    of group_aggregate_s<type key_type, type value_type, type out_type>;
external impl group_avg_i<key_type: type, value_type: type, out_type: type>
    of group_aggregate_s<type key_type, type value_type, type out_type>;
external impl group_count_i<key_type: type, value_type: type, out_type: type>
    of group_aggregate_s<type key_type, type value_type, type out_type>;

// ---------------------------------------------------------------------------
// Logical-type transformation (the third stdlib category of Section IV-C)
// ---------------------------------------------------------------------------
// Combine two element streams into one composite stream (used for composite
// GROUP BY keys such as (l_returnflag, l_linestatus) in TPC-H Q1).
streamlet combine2_s<in0_type: type, in1_type: type, out_type: type> {
    in0: in0_type in,
    in1: in1_type in,
    output: out_type out,
}
external impl combine2_i<in0_type: type, in1_type: type, out_type: type>
    of combine2_s<type in0_type, type in1_type, type out_type>;

// ---------------------------------------------------------------------------
// Parallelisation template (Section IV-B worked example)
// ---------------------------------------------------------------------------
streamlet process_unit_s<in_data_type: type, out_data_type: type> {
    input: in_data_type in,
    output: out_data_type out,
}
streamlet parallelize_s<in_data_type: type, out_data_type: type> {
    input: in_data_type in,
    output: out_data_type out,
}
impl parallelize_i<in_data_type: type, out_data_type: type,
                   pu_instance: impl of process_unit_s, channel: int>
    of parallelize_s<type in_data_type, type out_data_type> {
    instance demux_inst(demux_i<type in_data_type, channel>),
    instance mux_inst(mux_i<type out_data_type, channel>),
    instance pu(pu_instance) [channel],
    input => demux_inst.input,
    mux_inst.output => output,
    for i in 0->channel {
        demux_inst.output[i] => pu[i].input,
        pu[i].output => mux_inst.input[i],
    }
}
"""


def stdlib_loc() -> int:
    """LoC of the standard library source (the LoCs term of Table IV)."""
    return count_loc(STDLIB_SOURCE, language="tydi")
