"""Arrow-like schemas and their mapping onto Tydi logical types.

A schema is a named, ordered collection of fields; every field carries one of
a small set of logical column types that covers what the TPC-H queries need:

========  =========================================  =======================
type      meaning                                    Tydi logical type
========  =========================================  =======================
int64     64-bit integer key / quantity              ``Stream(Bit(64), d=1)``
int32     32-bit integer                             ``Stream(Bit(32), d=1)``
decimal   fixed-point decimal(15,2) money amount     ``Stream(Bit(ceil(log2(10^15-1))), d=1)``
date      days since epoch                           ``Stream(Bit(32), d=1)``
utf8      variable-length string (bounded to 32 B)   ``Stream(Bit(256), d=1)``
bool      single bit                                 ``Stream(Bit(1), d=1)``
========  =========================================  =======================

The decimal mapping is the paper's own example of the Tydi-lang math system:
``Bit(ceil(log2(10^15 - 1)))``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import TydiTypeError
from repro.spec.logical_types import Bit, LogicalType, Stream

#: Supported Arrow-like column types.
COLUMN_TYPES = ("int64", "int32", "decimal", "date", "utf8", "bool")

#: The shared Tydi-lang type alias used for each column type (see
#: :func:`repro.arrow.fletcher.fletcher_type_preamble`); using one named alias
#: per category keeps strict type equality satisfied across tables.
TYPE_ALIASES = {
    "int64": "tpch_int",
    "int32": "tpch_int32",
    "decimal": "tpch_decimal",
    "date": "tpch_date",
    "utf8": "tpch_char",
    "bool": "tpch_flag",
}


def decimal_bit_width(precision: int = 15) -> int:
    """Bits needed for a decimal of ``precision`` digits (paper Section IV-A)."""
    return math.ceil(math.log2(10**precision - 1))


def arrow_type_to_tydi(column_type: str) -> LogicalType:
    """Map an Arrow-like column type to its Tydi logical (stream) type."""
    if column_type == "int64":
        return Stream.new(Bit(64), dimension=1)
    if column_type == "int32":
        return Stream.new(Bit(32), dimension=1)
    if column_type == "decimal":
        return Stream.new(Bit(decimal_bit_width(15)), dimension=1)
    if column_type == "date":
        return Stream.new(Bit(32), dimension=1)
    if column_type == "utf8":
        return Stream.new(Bit(256), dimension=1)
    if column_type == "bool":
        return Stream.new(Bit(1), dimension=1)
    raise TydiTypeError(f"unsupported Arrow column type {column_type!r}")


def tydi_type_expression(column_type: str) -> str:
    """The Tydi-lang source text of the logical type of a column type."""
    if column_type == "int64":
        return "Stream(Bit(64), d=1)"
    if column_type == "int32":
        return "Stream(Bit(32), d=1)"
    if column_type == "decimal":
        return "Stream(Bit(ceil(log2(10^15 - 1))), d=1)"
    if column_type == "date":
        return "Stream(Bit(32), d=1)"
    if column_type == "utf8":
        return "Stream(Bit(256), d=1)"
    if column_type == "bool":
        return "Stream(Bit(1), d=1)"
    raise TydiTypeError(f"unsupported Arrow column type {column_type!r}")


@dataclass(frozen=True)
class ArrowField:
    """One column of a schema."""

    name: str
    column_type: str
    nullable: bool = False
    #: Marks primary-key columns; the paper treats these as the reader's
    #: command/input side.
    primary_key: bool = False

    def __post_init__(self) -> None:
        if self.column_type not in COLUMN_TYPES:
            raise TydiTypeError(
                f"field {self.name!r} has unsupported column type {self.column_type!r}"
            )

    def tydi_type(self) -> LogicalType:
        return arrow_type_to_tydi(self.column_type)

    def type_alias(self) -> str:
        return TYPE_ALIASES[self.column_type]


@dataclass(frozen=True)
class ArrowSchema:
    """A named, ordered collection of fields (one per column)."""

    name: str
    fields: tuple[ArrowField, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for f in self.fields:
            if f.name in seen:
                raise TydiTypeError(f"schema {self.name!r} has duplicate field {f.name!r}")
            seen.add(f.name)

    @classmethod
    def of(cls, name: str, **columns: str) -> "ArrowSchema":
        return cls(name=name, fields=tuple(ArrowField(n, t) for n, t in columns.items()))

    def field(self, name: str) -> ArrowField:
        for f in self.fields:
            if f.name == name:
                return f
        raise KeyError(f"schema {self.name!r} has no field {name!r}")

    def field_names(self) -> list[str]:
        return [f.name for f in self.fields]

    def __contains__(self, name: str) -> bool:
        return any(f.name == name for f in self.fields)

    def __len__(self) -> int:
        return len(self.fields)

    def subset(self, names: list[str]) -> "ArrowSchema":
        """A schema containing only the named columns (order preserved)."""
        return ArrowSchema(
            name=self.name, fields=tuple(f for f in self.fields if f.name in names)
        )
