"""Arrow-style schemas, columnar datasets and the Fletcher-equivalent generator.

The paper's big-data workflow (Figure 2) starts from an Apache Arrow schema
and uses Fletcher to generate the hardware components that stream the
in-memory columnar data into the FPGA.  Neither Arrow nor Fletcher is
available in this reproduction environment, so this package provides the
closest synthetic equivalents:

* :mod:`repro.arrow.schema` -- a minimal Arrow-like schema model (fields with
  logical SQL-ish types) and its mapping onto Tydi logical types,
* :mod:`repro.arrow.dataset` -- in-memory columnar tables backed by numpy,
* :mod:`repro.arrow.fletcher` -- the Fletcher substitute: generate, from a
  schema, the Tydi-lang interface streamlets of the memory readers (the
  "Fletcher part" counted in Table IV) plus simulator behaviours that stream
  a dataset through those interfaces,
* :mod:`repro.arrow.tpch` -- TPC-H table schemas, a seeded synthetic data
  generator, and golden (reference) implementations of the evaluated queries.
"""

from repro.arrow.schema import ArrowField, ArrowSchema, arrow_type_to_tydi
from repro.arrow.dataset import Column, Table
from repro.arrow.fletcher import (
    FletcherReaderBehavior,
    fletcher_interface_source,
    fletcher_type_preamble,
    reader_behaviors,
)
from repro.arrow.tpch import (
    TPCH_SCHEMAS,
    generate_tpch_data,
    golden_q1,
    golden_q3,
    golden_q5,
    golden_q6,
    golden_q19,
)

__all__ = [
    "ArrowField",
    "ArrowSchema",
    "arrow_type_to_tydi",
    "Column",
    "Table",
    "FletcherReaderBehavior",
    "fletcher_interface_source",
    "fletcher_type_preamble",
    "reader_behaviors",
    "TPCH_SCHEMAS",
    "generate_tpch_data",
    "golden_q1",
    "golden_q3",
    "golden_q5",
    "golden_q6",
    "golden_q19",
]
