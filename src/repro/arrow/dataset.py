"""In-memory columnar datasets (the Apache Arrow stand-in).

A :class:`Table` is a named collection of equal-length :class:`Column` s.
Numeric columns are stored as numpy arrays so that the golden query
implementations (:mod:`repro.arrow.tpch`) can be fully vectorised; string
columns are stored as numpy object arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.arrow.schema import ArrowSchema
from repro.errors import TydiTypeError


@dataclass
class Column:
    """One column of a table."""

    name: str
    values: np.ndarray

    def __post_init__(self) -> None:
        if not isinstance(self.values, np.ndarray):
            self.values = np.asarray(self.values)

    def __len__(self) -> int:
        return int(self.values.shape[0])

    def to_list(self) -> list:
        return self.values.tolist()


class Table:
    """A named collection of equal-length columns."""

    def __init__(self, name: str, columns: Mapping[str, Iterable] | None = None) -> None:
        self.name = name
        self._columns: dict[str, Column] = {}
        if columns:
            for column_name, values in columns.items():
                self.add_column(column_name, values)

    # -- construction ------------------------------------------------------------

    def add_column(self, name: str, values: Iterable) -> Column:
        column = Column(name=name, values=np.asarray(values))
        if self._columns and len(column) != self.num_rows:
            raise TydiTypeError(
                f"column {name!r} has {len(column)} rows but table {self.name!r} has "
                f"{self.num_rows}"
            )
        self._columns[name] = column
        return column

    @classmethod
    def from_schema(cls, schema: ArrowSchema, data: Mapping[str, Iterable]) -> "Table":
        """Build a table validating that every schema column is present."""
        missing = [f.name for f in schema.fields if f.name not in data]
        if missing:
            raise TydiTypeError(f"data for schema {schema.name!r} is missing columns {missing}")
        table = cls(schema.name)
        for f in schema.fields:
            table.add_column(f.name, data[f.name])
        return table

    # -- access ------------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        if not self._columns:
            return 0
        return len(next(iter(self._columns.values())))

    @property
    def num_columns(self) -> int:
        return len(self._columns)

    def column(self, name: str) -> Column:
        try:
            return self._columns[name]
        except KeyError as exc:
            raise KeyError(f"table {self.name!r} has no column {name!r}") from exc

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name).values

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def column_names(self) -> list[str]:
        return list(self._columns)

    def select(self, names: list[str]) -> "Table":
        """A new table containing only the named columns."""
        return Table(self.name, {n: self._columns[n].values for n in names})

    def filter(self, mask: np.ndarray) -> "Table":
        """A new table containing only the rows where ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool)
        return Table(self.name, {n: c.values[mask] for n, c in self._columns.items()})

    def head(self, count: int) -> "Table":
        return Table(self.name, {n: c.values[:count] for n, c in self._columns.items()})

    def rows(self) -> list[dict[str, object]]:
        """Row-oriented view (handy for feeding the simulator)."""
        names = self.column_names()
        return [
            {name: self._columns[name].values[index].item()
             if hasattr(self._columns[name].values[index], "item")
             else self._columns[name].values[index]
             for name in names}
            for index in range(self.num_rows)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, rows={self.num_rows}, columns={self.column_names()})"
