"""TPC-H substrate: schemas, synthetic data and golden query results.

The paper evaluates Tydi-lang by translating TPC-H queries 1, 3, 5, 6 and 19
to hardware.  The official TPC-H data generator is not available offline, so
:func:`generate_tpch_data` produces a seeded synthetic dataset with the same
columns and broadly similar value distributions (dates over 1992-1998,
discounts 0-0.1, a small set of brands/containers/ship modes, ...).  The
``golden_q*`` functions compute the reference answers with numpy; the
simulator-executed hardware designs are validated against them.

Join handling: the paper's designs stream *pre-joined* data out of the
Fletcher readers (nested SELECTs and real joins are explicitly out of scope
in Section VI).  :func:`joined_table_for` therefore materialises the joined
projection each multi-table query needs, and the corresponding reader streams
that projection.  This substitution is documented in DESIGN.md.

Dates are stored as integer day offsets from 1992-01-01.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.arrow.dataset import Table
from repro.arrow.schema import ArrowField, ArrowSchema

# ---------------------------------------------------------------------------
# Schemas
# ---------------------------------------------------------------------------

LINEITEM_SCHEMA = ArrowSchema(
    name="lineitem",
    fields=(
        ArrowField("l_orderkey", "int64", primary_key=True),
        ArrowField("l_partkey", "int64"),
        ArrowField("l_suppkey", "int64"),
        ArrowField("l_quantity", "decimal"),
        ArrowField("l_extendedprice", "decimal"),
        ArrowField("l_discount", "decimal"),
        ArrowField("l_tax", "decimal"),
        ArrowField("l_returnflag", "utf8"),
        ArrowField("l_linestatus", "utf8"),
        ArrowField("l_shipdate", "date"),
        ArrowField("l_commitdate", "date"),
        ArrowField("l_receiptdate", "date"),
        ArrowField("l_shipinstruct", "utf8"),
        ArrowField("l_shipmode", "utf8"),
    ),
)

PART_SCHEMA = ArrowSchema(
    name="part",
    fields=(
        ArrowField("p_partkey", "int64", primary_key=True),
        ArrowField("p_brand", "utf8"),
        ArrowField("p_size", "int32"),
        ArrowField("p_container", "utf8"),
    ),
)

ORDERS_SCHEMA = ArrowSchema(
    name="orders",
    fields=(
        ArrowField("o_orderkey", "int64", primary_key=True),
        ArrowField("o_custkey", "int64"),
        ArrowField("o_orderdate", "date"),
        ArrowField("o_shippriority", "int32"),
    ),
)

CUSTOMER_SCHEMA = ArrowSchema(
    name="customer",
    fields=(
        ArrowField("c_custkey", "int64", primary_key=True),
        ArrowField("c_nationkey", "int64"),
        ArrowField("c_mktsegment", "utf8"),
    ),
)

SUPPLIER_SCHEMA = ArrowSchema(
    name="supplier",
    fields=(
        ArrowField("s_suppkey", "int64", primary_key=True),
        ArrowField("s_nationkey", "int64"),
    ),
)

NATION_SCHEMA = ArrowSchema(
    name="nation",
    fields=(
        ArrowField("n_nationkey", "int64", primary_key=True),
        ArrowField("n_regionkey", "int64"),
        ArrowField("n_name", "utf8"),
    ),
)

REGION_SCHEMA = ArrowSchema(
    name="region",
    fields=(
        ArrowField("r_regionkey", "int64", primary_key=True),
        ArrowField("r_name", "utf8"),
    ),
)

TPCH_SCHEMAS: dict[str, ArrowSchema] = {
    schema.name: schema
    for schema in (
        LINEITEM_SCHEMA,
        PART_SCHEMA,
        ORDERS_SCHEMA,
        CUSTOMER_SCHEMA,
        SUPPLIER_SCHEMA,
        NATION_SCHEMA,
        REGION_SCHEMA,
    )
}

#: Value domains mirroring TPC-H.
RETURN_FLAGS = ["A", "N", "R"]
LINE_STATUSES = ["F", "O"]
BRANDS = [f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6)]
CONTAINERS = [
    f"{size} {kind}"
    for size in ("SM", "MED", "LG", "JUMBO", "WRAP")
    for kind in ("CASE", "BOX", "BAG", "PKG", "PACK", "CAN")
]
SHIP_MODES = ["AIR", "AIR REG", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
SHIP_INSTRUCTIONS = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"]
MARKET_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1), ("EGYPT", 4),
    ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3), ("INDIA", 2), ("INDONESIA", 2),
    ("IRAN", 4), ("IRAQ", 4), ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0),
    ("MOROCCO", 0), ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3), ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
]
REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

#: Days covered by the synthetic dataset (1992-01-01 .. 1998-12-31).
DATE_MIN, DATE_MAX = 0, 2556
#: Day offset of a few dates the queries reference.
DATE_1994_01_01 = 731
DATE_1995_01_01 = 1096
DATE_1995_03_15 = 1169
DATE_1998_09_02 = 2436


def generate_tpch_data(
    num_lineitems: int = 600,
    *,
    seed: int = 42,
    num_parts: int | None = None,
    num_orders: int | None = None,
    num_customers: int | None = None,
    num_suppliers: int | None = None,
) -> dict[str, Table]:
    """Generate a seeded synthetic TPC-H dataset.

    Row counts of the dimension tables scale with ``num_lineitems`` unless
    given explicitly, keeping join selectivities roughly TPC-H-like.
    """
    rng = np.random.default_rng(seed)
    num_parts = num_parts or max(20, num_lineitems // 5)
    num_orders = num_orders or max(20, num_lineitems // 4)
    num_customers = num_customers or max(10, num_orders // 3)
    num_suppliers = num_suppliers or max(5, num_parts // 10)

    # The value distributions are skewed towards the constants the evaluated
    # queries reference (hot brands/containers/ship modes, a bounded nation
    # set), so that moderate row counts already produce non-empty answers for
    # the more selective queries (Q5 and Q19).  Official TPC-H data achieves
    # the same through its comment/correlation rules.
    hot_brands = ["Brand#12", "Brand#23", "Brand#34"]
    hot_containers = [
        f"{size} {kind}"
        for size in ("SM", "MED", "LG")
        for kind in ("CASE", "BOX", "BAG", "PKG", "PACK")
    ]
    brand_pool = hot_brands * 5 + BRANDS
    container_pool = hot_containers * 3 + CONTAINERS
    shipmode_pool = ["AIR", "AIR REG"] * 3 + SHIP_MODES
    shipinstruct_pool = ["DELIVER IN PERSON"] * 2 + SHIP_INSTRUCTIONS
    nation_pool = np.arange(0, 10, dtype=np.int64)

    part = Table(
        "part",
        {
            "p_partkey": np.arange(1, num_parts + 1, dtype=np.int64),
            "p_brand": rng.choice(brand_pool, size=num_parts),
            "p_size": rng.integers(1, 21, size=num_parts, dtype=np.int32),
            "p_container": rng.choice(container_pool, size=num_parts),
        },
    )

    customer = Table(
        "customer",
        {
            "c_custkey": np.arange(1, num_customers + 1, dtype=np.int64),
            "c_nationkey": rng.choice(nation_pool, size=num_customers),
            "c_mktsegment": rng.choice(MARKET_SEGMENTS, size=num_customers),
        },
    )

    orders = Table(
        "orders",
        {
            "o_orderkey": np.arange(1, num_orders + 1, dtype=np.int64),
            "o_custkey": rng.integers(1, num_customers + 1, size=num_orders, dtype=np.int64),
            "o_orderdate": rng.integers(DATE_MIN, DATE_MAX - 200, size=num_orders, dtype=np.int64),
            "o_shippriority": np.zeros(num_orders, dtype=np.int32),
        },
    )

    supplier = Table(
        "supplier",
        {
            "s_suppkey": np.arange(1, num_suppliers + 1, dtype=np.int64),
            "s_nationkey": rng.choice(nation_pool, size=num_suppliers),
        },
    )

    nation = Table(
        "nation",
        {
            "n_nationkey": np.arange(len(NATIONS), dtype=np.int64),
            "n_regionkey": np.array([r for _, r in NATIONS], dtype=np.int64),
            "n_name": np.array([n for n, _ in NATIONS], dtype=object),
        },
    )

    region = Table(
        "region",
        {
            "r_regionkey": np.arange(len(REGIONS), dtype=np.int64),
            "r_name": np.array(REGIONS, dtype=object),
        },
    )

    order_keys = rng.integers(1, num_orders + 1, size=num_lineitems, dtype=np.int64)
    order_dates = orders["o_orderdate"][order_keys - 1]
    ship_delay = rng.integers(1, 366, size=num_lineitems)
    quantity = rng.integers(1, 41, size=num_lineitems).astype(np.float64)
    extended_price = np.round(quantity * rng.uniform(900.0, 10_000.0, size=num_lineitems), 2)
    lineitem = Table(
        "lineitem",
        {
            "l_orderkey": order_keys,
            "l_partkey": rng.integers(1, num_parts + 1, size=num_lineitems, dtype=np.int64),
            "l_suppkey": rng.integers(1, num_suppliers + 1, size=num_lineitems, dtype=np.int64),
            "l_quantity": quantity,
            "l_extendedprice": extended_price,
            "l_discount": np.round(rng.uniform(0.0, 0.10, size=num_lineitems), 2),
            "l_tax": np.round(rng.uniform(0.0, 0.08, size=num_lineitems), 2),
            "l_returnflag": rng.choice(RETURN_FLAGS, size=num_lineitems),
            "l_linestatus": rng.choice(LINE_STATUSES, size=num_lineitems),
            "l_shipdate": np.minimum(order_dates + ship_delay, DATE_MAX),
            "l_commitdate": np.minimum(order_dates + ship_delay + 10, DATE_MAX),
            "l_receiptdate": np.minimum(order_dates + ship_delay + 20, DATE_MAX),
            "l_shipinstruct": rng.choice(shipinstruct_pool, size=num_lineitems),
            "l_shipmode": rng.choice(shipmode_pool, size=num_lineitems),
        },
    )

    return {
        "lineitem": lineitem,
        "part": part,
        "orders": orders,
        "customer": customer,
        "supplier": supplier,
        "nation": nation,
        "region": region,
    }


# ---------------------------------------------------------------------------
# Join-aligned projections for the multi-table queries
# ---------------------------------------------------------------------------


def joined_table_for(query: str, tables: Mapping[str, Table]) -> Table:
    """Materialise the pre-joined projection a multi-table query streams.

    The hardware designs receive this projection from their Fletcher reader
    (one row per surviving join result); the golden query functions compute
    on exactly the same projection, so the simulator output is comparable.
    """
    lineitem = tables["lineitem"]
    if query == "q19":
        part = tables["part"]
        part_index = {int(k): i for i, k in enumerate(part["p_partkey"])}
        rows = [part_index[int(k)] for k in lineitem["l_partkey"]]
        return Table(
            "lineitem_part",
            {
                "l_partkey": lineitem["l_partkey"],
                "l_quantity": lineitem["l_quantity"],
                "l_extendedprice": lineitem["l_extendedprice"],
                "l_discount": lineitem["l_discount"],
                "l_shipmode": lineitem["l_shipmode"],
                "l_shipinstruct": lineitem["l_shipinstruct"],
                "p_partkey": part["p_partkey"][rows],
                "p_brand": part["p_brand"][rows],
                "p_size": part["p_size"][rows],
                "p_container": part["p_container"][rows],
            },
        )
    if query == "q3":
        orders = tables["orders"]
        customer = tables["customer"]
        order_index = {int(k): i for i, k in enumerate(orders["o_orderkey"])}
        customer_index = {int(k): i for i, k in enumerate(customer["c_custkey"])}
        order_rows = [order_index[int(k)] for k in lineitem["l_orderkey"]]
        customer_rows = [customer_index[int(k)] for k in orders["o_custkey"][order_rows]]
        return Table(
            "customer_orders_lineitem",
            {
                "l_orderkey": lineitem["l_orderkey"],
                "l_extendedprice": lineitem["l_extendedprice"],
                "l_discount": lineitem["l_discount"],
                "l_shipdate": lineitem["l_shipdate"],
                "o_orderdate": orders["o_orderdate"][order_rows],
                "o_shippriority": orders["o_shippriority"][order_rows],
                "c_mktsegment": customer["c_mktsegment"][customer_rows],
            },
        )
    if query == "q5":
        orders = tables["orders"]
        customer = tables["customer"]
        supplier = tables["supplier"]
        nation = tables["nation"]
        region = tables["region"]
        order_index = {int(k): i for i, k in enumerate(orders["o_orderkey"])}
        customer_index = {int(k): i for i, k in enumerate(customer["c_custkey"])}
        supplier_index = {int(k): i for i, k in enumerate(supplier["s_suppkey"])}
        order_rows = [order_index[int(k)] for k in lineitem["l_orderkey"]]
        customer_rows = [customer_index[int(k)] for k in orders["o_custkey"][order_rows]]
        supplier_rows = [supplier_index[int(k)] for k in lineitem["l_suppkey"]]
        supplier_nations = supplier["s_nationkey"][supplier_rows]
        customer_nations = customer["c_nationkey"][customer_rows]
        nation_names = nation["n_name"][supplier_nations]
        region_names = region["r_name"][nation["n_regionkey"][supplier_nations]]
        return Table(
            "q5_joined",
            {
                "l_extendedprice": lineitem["l_extendedprice"],
                "l_discount": lineitem["l_discount"],
                "o_orderdate": orders["o_orderdate"][order_rows],
                "c_nationkey": customer_nations,
                "s_nationkey": supplier_nations,
                "n_name": nation_names,
                "r_name": region_names,
            },
        )
    raise KeyError(f"no joined projection defined for query {query!r}")


# ---------------------------------------------------------------------------
# Golden (reference) query implementations
# ---------------------------------------------------------------------------


def golden_q1(tables: Mapping[str, Table], *, cutoff: int = DATE_1998_09_02) -> dict[tuple[str, str], dict[str, float]]:
    """TPC-H Q1 pricing summary (reduced aggregate set, see repro.queries.q1)."""
    lineitem = tables["lineitem"]
    mask = lineitem["l_shipdate"] <= cutoff
    flags = lineitem["l_returnflag"][mask]
    statuses = lineitem["l_linestatus"][mask]
    quantity = lineitem["l_quantity"][mask]
    price = lineitem["l_extendedprice"][mask]
    discount = lineitem["l_discount"][mask]

    results: dict[tuple[str, str], dict[str, float]] = {}
    for flag, status in sorted(set(zip(flags.tolist(), statuses.tolist()))):
        group = (flags == flag) & (statuses == status)
        results[(flag, status)] = {
            "sum_qty": float(quantity[group].sum()),
            "sum_base_price": float(price[group].sum()),
            "sum_disc_price": float((price[group] * (1.0 - discount[group])).sum()),
            "count_order": int(group.sum()),
        }
    return results


def golden_q3(
    tables: Mapping[str, Table],
    *,
    segment: str = "BUILDING",
    cutoff: int = DATE_1995_03_15,
) -> dict[int, float]:
    """TPC-H Q3 shipping-priority revenue per order."""
    joined = joined_table_for("q3", tables)
    mask = (
        (joined["c_mktsegment"] == segment)
        & (joined["o_orderdate"] < cutoff)
        & (joined["l_shipdate"] > cutoff)
    )
    revenue = joined["l_extendedprice"][mask] * (1.0 - joined["l_discount"][mask])
    orders = joined["l_orderkey"][mask]
    results: dict[int, float] = {}
    for order_key in np.unique(orders):
        results[int(order_key)] = float(revenue[orders == order_key].sum())
    return results


def golden_q5(
    tables: Mapping[str, Table],
    *,
    region: str = "ASIA",
    date_from: int = DATE_1994_01_01,
    date_to: int = DATE_1995_01_01,
) -> dict[str, float]:
    """TPC-H Q5 local-supplier revenue per nation."""
    joined = joined_table_for("q5", tables)
    mask = (
        (joined["r_name"] == region)
        & (joined["c_nationkey"] == joined["s_nationkey"])
        & (joined["o_orderdate"] >= date_from)
        & (joined["o_orderdate"] < date_to)
    )
    revenue = joined["l_extendedprice"][mask] * (1.0 - joined["l_discount"][mask])
    nations = joined["n_name"][mask]
    results: dict[str, float] = {}
    for nation_name in np.unique(nations):
        results[str(nation_name)] = float(revenue[nations == nation_name].sum())
    return results


def golden_q6(
    tables: Mapping[str, Table],
    *,
    date_from: int = DATE_1994_01_01,
    date_to: int = DATE_1995_01_01,
    discount_min: float = 0.05,
    discount_max: float = 0.07,
    quantity_max: float = 24.0,
) -> float:
    """TPC-H Q6 forecasting-revenue-change (a single summed value)."""
    lineitem = tables["lineitem"]
    mask = (
        (lineitem["l_shipdate"] >= date_from)
        & (lineitem["l_shipdate"] < date_to)
        & (lineitem["l_discount"] >= discount_min)
        & (lineitem["l_discount"] <= discount_max)
        & (lineitem["l_quantity"] < quantity_max)
    )
    return float((lineitem["l_extendedprice"][mask] * lineitem["l_discount"][mask]).sum())


#: The three (brand, containers, quantity range) clauses of Q19; the paper
#: quotes the first clause in Section VI.
Q19_CLAUSES = (
    {
        "brand": "Brand#12",
        "containers": ("SM CASE", "SM BOX", "SM PACK", "SM PKG"),
        "quantity_min": 1.0,
        "size_max": 5,
    },
    {
        "brand": "Brand#23",
        "containers": ("MED BAG", "MED BOX", "MED PKG", "MED PACK"),
        "quantity_min": 10.0,
        "size_max": 10,
    },
    {
        "brand": "Brand#34",
        "containers": ("LG CASE", "LG BOX", "LG PACK", "LG PKG"),
        "quantity_min": 20.0,
        "size_max": 15,
    },
)


def golden_q19(tables: Mapping[str, Table]) -> float:
    """TPC-H Q19 discounted-revenue (three OR-ed brand/container clauses)."""
    joined = joined_table_for("q19", tables)
    quantity = joined["l_quantity"]
    size = joined["p_size"]
    ship_ok = np.isin(joined["l_shipmode"], ("AIR", "AIR REG")) & (
        joined["l_shipinstruct"] == "DELIVER IN PERSON"
    )
    total_mask = np.zeros(len(quantity), dtype=bool)
    for clause in Q19_CLAUSES:
        clause_mask = (
            (joined["p_brand"] == clause["brand"])
            & np.isin(joined["p_container"], clause["containers"])
            & (quantity >= clause["quantity_min"])
            & (quantity <= clause["quantity_min"] + 10)
            & (size >= 1)
            & (size <= clause["size_max"])
            & ship_ok
        )
        total_mask |= clause_mask
    revenue = joined["l_extendedprice"][total_mask] * (1.0 - joined["l_discount"][total_mask])
    return float(revenue.sum())
