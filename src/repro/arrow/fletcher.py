"""The Fletcher substitute: memory-reader interfaces from Arrow schemas.

Fletcher generates, for an Arrow schema, the hardware components that stream
the columnar data from host memory into the accelerator.  The paper
hand-writes the Tydi-lang *interface* of those components and counts it as
the "LoC for Fletcher part" of Table IV (166 lines), while their actual
behaviour comes from the Fletcher project.

This module plays both roles:

* :func:`fletcher_interface_source` generates the Tydi-lang source of the
  reader interfaces (one external streamlet/implementation per table, one
  output port per column, plus the shared column-type aliases), which is the
  quantity our Table-IV harness counts as LoCf;
* :class:`FletcherReaderBehavior` / :func:`reader_behaviors` provide the
  simulator behaviour of those readers, streaming a :class:`repro.arrow.Table`
  out of the column ports so that compiled query designs can be functionally
  validated.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.arrow.dataset import Table
from repro.arrow.schema import ArrowSchema, TYPE_ALIASES, tydi_type_expression
from repro.errors import TydiSimulationError
from repro.ir.model import Implementation
from repro.sim.packets import Packet


def fletcher_type_preamble() -> str:
    """Tydi-lang type aliases shared by every generated reader interface.

    Using one named alias per column category (rather than writing the
    ``Stream(...)`` inline at every port) keeps the DRC's *strict* type
    equality satisfied when two columns of the same category are compared.
    """
    lines = ["// Column types shared by all Fletcher-generated readers"]
    for column_type, alias in TYPE_ALIASES.items():
        lines.append(f"type {alias} = {tydi_type_expression(column_type)};  // {column_type}")
    return "\n".join(lines) + "\n"


def reader_name(schema: ArrowSchema) -> str:
    """Name of the generated reader implementation for a table schema."""
    return f"{schema.name}_reader_i"


def reader_streamlet_name(schema: ArrowSchema) -> str:
    return f"{schema.name}_reader_s"


def fletcher_interface_source(
    schemas: Iterable[ArrowSchema],
    *,
    include_preamble: bool = True,
) -> str:
    """Generate the Tydi-lang interface source for a set of table readers."""
    sections: list[str] = ["package fletcher;"]
    if include_preamble:
        sections.append(fletcher_type_preamble())
    for schema in schemas:
        lines = [f"// Fletcher-generated reader for Arrow table '{schema.name}'"]
        lines.append(f"streamlet {reader_streamlet_name(schema)} {{")
        for field in schema.fields:
            lines.append(f"    {field.name}: {field.type_alias()} out,")
        lines.append("}")
        lines.append(
            f"external impl {reader_name(schema)} of {reader_streamlet_name(schema)};"
        )
        sections.append("\n".join(lines))
    return "\n\n".join(sections) + "\n"


def fletcher_loc(schemas: Iterable[ArrowSchema]) -> int:
    """LoC of the generated Fletcher part (the LoCf term of Table IV)."""
    from repro.utils.text import count_loc

    return count_loc(fletcher_interface_source(schemas), language="tydi")


class FletcherReaderBehavior:
    """Simulator behaviour of a generated memory reader.

    Streams the rows of a :class:`Table` out of the column ports.  Every
    column advances independently (each output port has its own read
    pointer), matching how Fletcher's per-column readers behave; the final
    row carries the ``last`` flag closing the outer dimension.
    """

    latency = 1

    def __init__(self, implementation: Implementation, table: Table) -> None:
        self.implementation = implementation
        self.table = table

    def fire(self, ctx) -> bool:
        progressed = False
        for port in ctx.output_ports():
            if port not in self.table:
                continue
            values = self.table[port]
            position = int(ctx.get_state(f"pos_{port}", 0))
            if position >= len(values):
                continue
            if not ctx.can_send(port):
                continue
            raw = values[position]
            value = raw.item() if hasattr(raw, "item") else raw
            is_last = position == len(values) - 1
            ctx.send(port, Packet(value=value, last=(is_last,)))
            ctx.set_state(f"pos_{port}", position + 1)
            progressed = True
        return progressed

    def start(self, ctx) -> None:
        if self.table.num_rows == 0:
            # An empty table still terminates every column stream.
            for port in ctx.output_ports():
                ctx.send(port, Packet(value=None, last=(True,)))


def reader_behaviors(
    schemas: Iterable[ArrowSchema],
    tables: Mapping[str, Table],
) -> dict[str, object]:
    """Build the ``behaviors`` mapping for :class:`repro.sim.Simulator`.

    Keys are reader implementation names (e.g. ``lineitem_reader_i``); the
    simulator looks behaviours up by implementation name, so these apply to
    every instance of the reader.
    """
    behaviors: dict[str, object] = {}
    for schema in schemas:
        if schema.name not in tables:
            raise TydiSimulationError(f"no dataset provided for table {schema.name!r}")

        def factory(table: Table):
            return lambda implementation: FletcherReaderBehavior(implementation, table)

        behaviors[reader_name(schema)] = factory(tables[schema.name])
    return behaviors
