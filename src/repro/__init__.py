"""repro: a Python reproduction of "Tydi-lang: A Language for Typed Streaming Hardware".

The package is organised as a toolchain (Figure 1 of the paper):

* :mod:`repro.spec`   -- the Tydi-spec logical type system.
* :mod:`repro.lang`   -- the Tydi-lang frontend (parser, evaluator, templates,
  sugaring, design rule check) producing Tydi-IR.
* :mod:`repro.ir`     -- the Tydi-IR data model and textual emitter.
* :mod:`repro.backends` -- the pluggable backend registry (``vhdl``,
  ``ir``, ``dot``) behind the Tydi-IR -> output boundary.
* :mod:`repro.vhdl`   -- the Tydi-IR to VHDL backend.
* :mod:`repro.stdlib` -- the Tydi-lang standard library and its hard-coded
  RTL generators.
* :mod:`repro.sim`    -- the event-driven simulator, bottleneck/deadlock
  analysis and testbench generation (Section V).
* :mod:`repro.arrow`  -- Arrow-style schemas, columnar datasets, the
  Fletcher-equivalent interface generator and the TPC-H substrate.
* :mod:`repro.sql`    -- a SQL subset frontend and the SQL -> Tydi-lang
  translator.
* :mod:`repro.queries`-- hand-written Tydi-lang sources for the TPC-H queries
  evaluated in the paper.
* :mod:`repro.report` -- LoC accounting and regeneration of the paper's
  tables and figures.

Typical one-shot use::

    from repro.lang import compile_project
    from repro.vhdl import generate_vhdl

    result = compile_project(source_text, top="my_top")
    vhdl_files = generate_vhdl(result.project)

Session use (the canonical API for anything long-lived -- editors,
services, watch loops; see ``docs/workspace.md``)::

    from repro.workspace import Workspace

    ws = Workspace(cache_dir=".tydi-cache")
    ws.add_design("my_design", {"top.td": source_text})
    print(ws.ir("my_design"))          # lazy, memoised query
    ws.update_file("my_design", "top.td", edited_text)
    print(ws.ir("my_design"))          # recompiles only what changed
"""

from repro.lang.compile import (
    CompilationResult,
    CompileOptions,
    compile_project,
    compile_sources,
)

__version__ = "1.1.0"

__all__ = [
    "CompilationResult",
    "CompileOptions",
    "Workspace",
    "compile_project",
    "compile_sources",
    "__version__",
]


def __getattr__(name: str):
    # Lazy: ``repro.Workspace`` pulls in the pipeline + backends packages,
    # which plain ``import repro`` users should not pay for.
    if name == "Workspace":
        from repro.workspace import Workspace

        return Workspace
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
