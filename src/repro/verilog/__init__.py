"""Tydi-IR to Verilog backend.

The second HDL target of the toolchain: the same lowering discipline as the
VHDL backend (:mod:`repro.vhdl`) rendered in Verilog-2001:

* every streamlet becomes a ``module`` whose ports are the ready/valid
  physical-stream signal groups derived from its logical types (the
  language-independent expansion of :mod:`repro.vhdl.signals` /
  :mod:`repro.spec.physical`),
* every structural implementation becomes a module body with per-connection
  interconnect wires and named-port instantiations,
* external implementations (including the standard-library primitives, whose
  behavioural generators are VHDL-only) become annotated stub modules with
  safe handshake tie-offs.

The registered ``verilog`` backend (:mod:`repro.backends.verilog`) wraps
this engine in the ``emit_shared`` / ``emit_unit`` / ``assemble``
composition law, so its per-implementation units ride the backend-output
cache exactly like VHDL units do.
"""

from repro.verilog.backend import VerilogBackend, generate_verilog

__all__ = ["VerilogBackend", "generate_verilog"]
