"""Small shared utilities: source locations, text/LoC helpers, name mangling."""

from repro.utils.source import SourceFile, SourceLocation, SourceSpan
from repro.utils.text import count_loc, dedent_block, indent_block
from repro.utils.names import mangle, sanitize_identifier, unique_namer

__all__ = [
    "SourceFile",
    "SourceLocation",
    "SourceSpan",
    "count_loc",
    "dedent_block",
    "indent_block",
    "mangle",
    "sanitize_identifier",
    "unique_namer",
]
