"""Identifier helpers: sanitization, template-instance mangling, uniquing.

Template instantiation in Tydi-lang produces *concrete* streamlets and
implementations whose names must be valid identifiers in Tydi-IR and in the
generated VHDL.  We mirror the Rust compiler's approach of mangling the
template name together with a stable rendering of its arguments.
"""

from __future__ import annotations

import re
from typing import Callable, Iterable

_IDENT_RE = re.compile(r"[^A-Za-z0-9_]")
_VHDL_KEYWORDS = frozenset(
    """
    abs access after alias all and architecture array assert attribute begin
    block body buffer bus case component configuration constant disconnect
    downto else elsif end entity exit file for function generate generic group
    guarded if impure in inertial inout is label library linkage literal loop
    map mod nand new next nor not null of on open or others out package port
    postponed procedure process pure range record register reject rem report
    return rol ror select severity signal shared sla sll sra srl subtype then
    to transport type unaffected units until use variable wait when while with
    xnor xor
    """.split()
)


def sanitize_identifier(name: str, keyword_suffix: bool = True) -> str:
    """Turn an arbitrary string into a legal VHDL/Tydi-IR identifier.

    Non-alphanumeric characters become underscores, a leading digit gets an
    underscore prefix, consecutive/trailing underscores are collapsed, and --
    unless ``keyword_suffix`` is disabled -- VHDL reserved words get an ``_i``
    suffix.  IR-level names keep their spelling (``keyword_suffix=False``);
    only the VHDL backend needs the reserved-word escape.
    """
    cleaned = _IDENT_RE.sub("_", name)
    cleaned = re.sub(r"_+", "_", cleaned).strip("_")
    if not cleaned:
        cleaned = "anon"
    if cleaned[0].isdigit():
        cleaned = "_" + cleaned
    if keyword_suffix and cleaned.lower() in _VHDL_KEYWORDS:
        cleaned += "_i"
    return cleaned


def render_argument(value: object) -> str:
    """Render a template argument value for inclusion in a mangled name."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        text = f"{value:g}".replace(".", "p").replace("-", "m")
        return text
    if isinstance(value, int):
        return str(value) if value >= 0 else f"m{-value}"
    if isinstance(value, str):
        return sanitize_identifier(value.lower())
    # Logical types, implementations etc. render via their own name hooks.
    name = getattr(value, "mangle_name", None)
    if callable(name):
        return str(name())
    return sanitize_identifier(str(value))


def mangle(base: str, arguments: Iterable[object] = ()) -> str:
    """Build the concrete name of a template instance.

    ``duplicator`` instantiated with ``(Stream(Bit(32)), 2)`` becomes e.g.
    ``duplicator_0_stream_bit32_1_2``.  Positional indices keep instantiations
    with identical-looking arguments of different kinds distinct.
    """
    parts = [sanitize_identifier(base)]
    for index, argument in enumerate(arguments):
        parts.append(f"{index}_{render_argument(argument)}")
    # Sanitize the joined name so that it is identical to what the IR classes
    # store (they sanitize on construction); callers use it as a lookup key.
    return sanitize_identifier("__".join(parts))


def unique_namer(prefix: str = "anon") -> Callable[[str | None], str]:
    """Return a closure that produces unique names with a shared counter.

    Used by sugaring to name the automatically inserted duplicators and
    voiders deterministically within a single compilation.
    """
    counter = {"value": 0}

    def next_name(hint: str | None = None) -> str:
        counter["value"] += 1
        base = sanitize_identifier(hint) if hint else prefix
        return f"{base}_{counter['value']}"

    return next_name
