"""Source-text bookkeeping: files, locations and spans.

The Tydi-lang compiler reports every diagnostic against a location in the
original source text (file name, 1-based line, 1-based column).  The lexer
produces a :class:`SourceSpan` for every token and the parser propagates the
spans onto AST nodes, mirroring what the Rust/Pest implementation does with
pest's ``Span`` type.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True, order=True, slots=True)
class SourceLocation:
    """A single point in a source file (1-based line and column)."""

    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


@dataclass(frozen=True, slots=True)
class SourceSpan:
    """A half-open byte range ``[start, end)`` within a named source file."""

    filename: str
    start: SourceLocation
    end: SourceLocation

    def __str__(self) -> str:
        return f"{self.filename}:{self.start}"

    def merge(self, other: "SourceSpan") -> "SourceSpan":
        """Return the smallest span covering both ``self`` and ``other``."""
        start = min(self.start, other.start)
        end = max(self.end, other.end)
        return SourceSpan(self.filename, start, end)


class SourceFile:
    """A named source text with O(log n) offset → line/column conversion."""

    def __init__(self, text: str, filename: str = "<string>") -> None:
        self.text = text
        self.filename = filename
        # Precompute the byte offset of the start of every line so that
        # offset→location lookups are a bisect rather than a scan.
        self._line_starts = [0]
        for idx, ch in enumerate(text):
            if ch == "\n":
                self._line_starts.append(idx + 1)

    def location(self, offset: int) -> SourceLocation:
        """Convert a character offset into a 1-based :class:`SourceLocation`."""
        if offset < 0:
            offset = 0
        if offset > len(self.text):
            offset = len(self.text)
        line_index = bisect.bisect_right(self._line_starts, offset) - 1
        column = offset - self._line_starts[line_index] + 1
        return SourceLocation(line=line_index + 1, column=column)

    def span(self, start_offset: int, end_offset: int) -> SourceSpan:
        """Build a :class:`SourceSpan` from two character offsets."""
        return SourceSpan(
            filename=self.filename,
            start=self.location(start_offset),
            end=self.location(end_offset),
        )

    def line_text(self, line: int) -> str:
        """Return the text of a 1-based line (without trailing newline)."""
        if line < 1 or line > len(self._line_starts):
            return ""
        start = self._line_starts[line - 1]
        end = self._line_starts[line] - 1 if line < len(self._line_starts) else len(self.text)
        return self.text[start:end].rstrip("\n")

    def num_lines(self) -> int:
        if not self.text:
            return 0
        return len(self._line_starts)

    def snippet(self, span: SourceSpan, context: int = 0) -> str:
        """Render the lines covered by ``span`` with a caret under the start."""
        lines = []
        first = max(1, span.start.line - context)
        last = min(self.num_lines() or 1, span.end.line + context)
        for line_no in range(first, last + 1):
            lines.append(f"{line_no:>5} | {self.line_text(line_no)}")
            if line_no == span.start.line:
                lines.append("      | " + " " * (span.start.column - 1) + "^")
        return "\n".join(lines)


def unknown_span(filename: str = "<unknown>") -> SourceSpan:
    """A placeholder span for synthesized constructs (e.g. sugaring output)."""
    loc = SourceLocation(0, 0)
    return SourceSpan(filename, loc, loc)
