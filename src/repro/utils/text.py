"""Text utilities: line-of-code counting and indentation helpers.

LoC counting matters here because the paper's headline evaluation (Table IV)
is a LoC comparison between Tydi-lang sources and generated VHDL.  We follow
the usual convention for such comparisons: blank lines and comment-only lines
are excluded.
"""

from __future__ import annotations

from typing import Iterable


#: Comment prefixes recognised by :func:`count_loc`, keyed by language.
_COMMENT_PREFIXES = {
    "tydi": ("//",),
    "vhdl": ("--",),
    "verilog": ("//",),
    "sql": ("--",),
    "python": ("#",),
}


def strip_block_comments(text: str, language: str = "tydi") -> str:
    """Remove ``/* ... */`` block comments (Tydi-lang only)."""
    if language != "tydi":
        return text
    out = []
    i = 0
    n = len(text)
    while i < n:
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end == -1:
                # Unterminated block comment: drop the remainder but keep the
                # newlines so line numbers stay meaningful for LoC purposes.
                out.append("\n" * text.count("\n", i))
                break
            out.append("\n" * text.count("\n", i, end + 2))
            i = end + 2
        else:
            out.append(text[i])
            i += 1
    return "".join(out)


def count_loc(text: str, language: str = "tydi") -> int:
    """Count non-blank, non-comment lines of ``text``.

    Parameters
    ----------
    text:
        Source text.
    language:
        One of ``"tydi"``, ``"vhdl"``, ``"verilog"``, ``"sql"``, ``"python"``;
        controls which
        line-comment prefix is ignored.  Tydi-lang ``/* */`` block comments are
        stripped before counting.
    """
    prefixes = _COMMENT_PREFIXES.get(language, ())
    text = strip_block_comments(text, language)
    count = 0
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        if any(stripped.startswith(p) for p in prefixes):
            continue
        count += 1
    return count


def indent_block(text: str, spaces: int = 2) -> str:
    """Indent every non-empty line of ``text`` by ``spaces`` spaces."""
    pad = " " * spaces
    return "\n".join(pad + line if line.strip() else line for line in text.splitlines())


def dedent_block(text: str) -> str:
    """Remove the common leading whitespace of all non-empty lines."""
    lines = text.splitlines()
    indents = [len(line) - len(line.lstrip()) for line in lines if line.strip()]
    if not indents:
        return text
    common = min(indents)
    return "\n".join(line[common:] if line.strip() else line for line in lines)


def join_nonempty(parts: Iterable[str], sep: str = "\n") -> str:
    """Join the non-empty strings in ``parts`` with ``sep``."""
    return sep.join(p for p in parts if p)


def format_table(headers: list[str], rows: list[list[str]], min_width: int = 0) -> str:
    """Render a simple left-aligned ASCII table (used by the report module)."""
    columns = len(headers)
    widths = [max(min_width, len(h)) for h in headers]
    for row in rows:
        for i in range(columns):
            cell = str(row[i]) if i < len(row) else ""
            widths[i] = max(widths[i], len(cell))
    lines = []
    header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        cells = [str(row[i]) if i < len(row) else "" for i in range(columns)]
        lines.append(" | ".join(cells[i].ljust(widths[i]) for i in range(columns)))
    return "\n".join(lines)
