"""Tydi-spec logical types: Null, Bit, Group, Union and Stream.

These are the five constructors of the Tydi type system (Table I of the
paper).  Logical types are immutable value objects:

* ``Null`` represents empty data; a stream of Null is optimised away.
* ``Bit(x)`` represents ``x`` hardware bits.
* ``Group(a=..., b=...)`` is a product: total width is the sum of the fields.
* ``Union(a=..., b=...)`` is a sum: width is the max field width plus a tag.
* ``Stream(element, ...)`` wraps a logical type with stream-space properties
  (dimensionality, direction, synchronicity, complexity, throughput, user
  signals and clock domain).

Every logical type knows its data bit width (:meth:`LogicalType.bit_width`)
and can render itself back to Tydi-lang / Tydi-IR syntax (:meth:`to_tydi`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro.errors import TydiTypeError
from repro.spec.stream_params import Complexity, Direction, Synchronicity, Throughput
from repro.utils.names import sanitize_identifier


class _InternedTypeMeta(type):
    """Constructor-level hash-consing of logical type instances.

    Logical types are immutable value objects compared *structurally* all
    over the DRC/compat hot path (``strictly_equal`` falls back to deep
    comparison, ``structurally_equal`` always recurses).  Interning at the
    constructor makes structurally identical constructions return the *same*
    object, so those comparisons short-circuit on their ``a is b`` fast
    paths -- without touching ``__eq__``/``__hash__`` semantics at all
    (dataclass-generated structural equality is exactly what keys the
    intern table).

    Properties:

    * validation still runs first -- ``__post_init__`` raises before the
      table is consulted, so invalid constructions never intern;
    * only instances whose :meth:`LogicalType._internable` predicate holds
      are collapsed.  Strict equality (``strictly_equal``) deliberately
      distinguishes *anonymous* structural twins -- two separately written
      ``Group { x: Bit(8) }`` types are different types -- so anonymous
      Groups/Unions (and Streams wrapping them) are never interned.
      Primitives and *named* compound types are safe: dataclass equality
      for those already implies strict equality, so collapsing them cannot
      change any DRC verdict;
    * an instance with an unhashable field (never the case for the five
      spec constructors, but subclasses are free) simply skips interning;
    * the table is bounded: at :data:`_INTERN_CAPACITY` entries it is
      cleared wholesale (interning is an optimisation, not an identity
      guarantee -- ``__eq__`` remains the source of truth);
    * unpickled instances bypass ``__call__`` and are therefore not
      interned; pickle's memo still preserves sharing *within* one payload,
      and equality semantics are unchanged either way.
    """

    _INTERN_CAPACITY = 4096
    _intern_table: dict["LogicalType", "LogicalType"] = {}

    def __call__(cls, *args, **kwargs):
        instance = super().__call__(*args, **kwargs)
        if not instance._internable():
            return instance
        table = _InternedTypeMeta._intern_table
        try:
            canonical = table.get(instance)
        except TypeError:  # unhashable field: skip interning
            return instance
        if canonical is not None:
            return canonical
        if len(table) >= _InternedTypeMeta._INTERN_CAPACITY:
            table.clear()
        table[instance] = instance
        return instance


def clear_intern_table() -> None:
    """Drop every interned logical type (test isolation hook)."""
    _InternedTypeMeta._intern_table.clear()


def intern_table_size() -> int:
    return len(_InternedTypeMeta._intern_table)


class LogicalType(metaclass=_InternedTypeMeta):
    """Base class for all Tydi logical types."""

    #: Short constructor name used in rendering ("Null", "Bit", ...).
    kind: str = "Logical"

    def bit_width(self) -> int:
        """Number of data bits needed to represent one element of this type."""
        raise NotImplementedError

    def to_tydi(self) -> str:
        """Render this type in Tydi-lang / Tydi-IR surface syntax."""
        raise NotImplementedError

    def mangle_name(self) -> str:
        """A filesystem/identifier-safe rendering used for template mangling."""
        return sanitize_identifier(self.to_tydi().lower())

    def is_null(self) -> bool:
        return isinstance(self, Null)

    def contains_stream(self) -> bool:
        """True if this type or any nested field is a Stream."""
        return any(isinstance(t, Stream) for t in self.walk())

    def walk(self) -> Iterator["LogicalType"]:
        """Depth-first iteration over this type and all nested types."""
        yield self

    def children(self) -> Iterable[tuple[str, "LogicalType"]]:
        """(name, type) pairs of direct children; empty for leaf types."""
        return ()

    def _internable(self) -> bool:
        """Whether constructor-level interning may collapse equal instances.

        Must only be True when dataclass equality implies *strict* equality
        (see :func:`repro.spec.compat.strictly_equal`): anonymous compound
        types are distinct types even when structurally identical, so they
        opt out via overrides.  Leaf primitives are always safe.
        """
        return True

    def __str__(self) -> str:
        return self.to_tydi()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.to_tydi()})"


@dataclass(frozen=True, repr=False)
class Null(LogicalType):
    """The empty logical type: zero bits of data."""

    kind = "Null"

    def bit_width(self) -> int:
        return 0

    def to_tydi(self) -> str:
        return "Null"


@dataclass(frozen=True, repr=False)
class Bit(LogicalType):
    """``Bit(x)``: data requiring ``x`` hardware bits."""

    width: int
    kind = "Bit"

    def __post_init__(self) -> None:
        if not isinstance(self.width, int) or isinstance(self.width, bool):
            raise TydiTypeError(f"Bit width must be an integer, got {self.width!r}")
        if self.width < 1:
            raise TydiTypeError(f"Bit width must be >= 1, got {self.width}")

    def bit_width(self) -> int:
        return self.width

    def to_tydi(self) -> str:
        return f"Bit({self.width})"


def _validate_fields(fields: tuple[tuple[str, LogicalType], ...], kind: str) -> None:
    seen: set[str] = set()
    for name, logical_type in fields:
        if not name or not name.isidentifier():
            raise TydiTypeError(f"{kind} field name {name!r} is not a valid identifier")
        if name in seen:
            raise TydiTypeError(f"duplicate field {name!r} in {kind}")
        if not isinstance(logical_type, LogicalType):
            raise TydiTypeError(
                f"{kind} field {name!r} must be a logical type, got {logical_type!r}"
            )
        seen.add(name)


@dataclass(frozen=True, repr=False)
class Group(LogicalType):
    """Product type: a named tuple of logical types.

    The data width is the sum of the field widths.  Field order is
    significant because it fixes the bit layout in the physical stream.
    """

    fields: tuple[tuple[str, LogicalType], ...]
    name: Optional[str] = None
    kind = "Group"

    def __post_init__(self) -> None:
        _validate_fields(self.fields, "Group")

    @classmethod
    def of(cls, name: Optional[str] = None, **fields: LogicalType) -> "Group":
        return cls(tuple(fields.items()), name=name)

    def field(self, name: str) -> LogicalType:
        for field_name, logical_type in self.fields:
            if field_name == name:
                return logical_type
        raise TydiTypeError(f"Group has no field {name!r}")

    def field_names(self) -> list[str]:
        return [name for name, _ in self.fields]

    def children(self) -> Iterable[tuple[str, LogicalType]]:
        return self.fields

    def bit_width(self) -> int:
        return sum(t.bit_width() for _, t in self.fields)

    def walk(self) -> Iterator[LogicalType]:
        yield self
        for _, t in self.fields:
            yield from t.walk()

    def to_tydi(self) -> str:
        inner = ", ".join(f"{name}: {t.to_tydi()}" for name, t in self.fields)
        if self.name:
            return f"Group {self.name} {{ {inner} }}"
        return f"Group({inner})"

    def mangle_name(self) -> str:
        if self.name:
            return sanitize_identifier(self.name.lower())
        return super().mangle_name()

    def _internable(self) -> bool:
        # Anonymous groups are distinct types under strict equality even
        # when structurally identical; only named ones may be collapsed.
        return bool(self.name)


@dataclass(frozen=True, repr=False)
class Union(LogicalType):
    """Sum type: data is exactly one of the named variants.

    The data width is the maximum variant width; a tag of
    ``ceil(log2(len(variants)))`` bits selects the active variant.
    """

    variants: tuple[tuple[str, LogicalType], ...]
    name: Optional[str] = None
    kind = "Union"

    def __post_init__(self) -> None:
        if not self.variants:
            raise TydiTypeError("Union must have at least one variant")
        _validate_fields(self.variants, "Union")

    @classmethod
    def of(cls, name: Optional[str] = None, **variants: LogicalType) -> "Union":
        return cls(tuple(variants.items()), name=name)

    def variant(self, name: str) -> LogicalType:
        for variant_name, logical_type in self.variants:
            if variant_name == name:
                return logical_type
        raise TydiTypeError(f"Union has no variant {name!r}")

    def children(self) -> Iterable[tuple[str, LogicalType]]:
        return self.variants

    def tag_width(self) -> int:
        count = len(self.variants)
        return max(1, math.ceil(math.log2(count))) if count > 1 else 0

    def bit_width(self) -> int:
        payload = max(t.bit_width() for _, t in self.variants)
        return payload + self.tag_width()

    def walk(self) -> Iterator[LogicalType]:
        yield self
        for _, t in self.variants:
            yield from t.walk()

    def to_tydi(self) -> str:
        inner = ", ".join(f"{name}: {t.to_tydi()}" for name, t in self.variants)
        if self.name:
            return f"Union {self.name} {{ {inner} }}"
        return f"Union({inner})"

    def mangle_name(self) -> str:
        if self.name:
            return sanitize_identifier(self.name.lower())
        return super().mangle_name()

    def _internable(self) -> bool:
        # Same rule as Group: anonymous unions stay distinct.
        return bool(self.name)


@dataclass(frozen=True, repr=False)
class Stream(LogicalType):
    """Stream-space wrapper around an element type.

    Parameters mirror the Tydi specification:

    dimension:
        Dimensionality ``d`` of the data carried by the stream.  A flat value
        has ``d=0`` (in Tydi-lang sources ``d`` often starts at 1 for a
        sequence); an English sentence -- a sequence of variable-length words
        of characters -- has ``d=2``.
    direction / synchronicity / complexity / throughput:
        See :mod:`repro.spec.stream_params`.
    user:
        An optional logical type transported as transfer-level user data.
    keep:
        Whether the stream must be kept even if the element type is Null.
    """

    element: LogicalType
    dimension: int = 0
    direction: Direction = Direction.FORWARD
    synchronicity: Synchronicity = Synchronicity.SYNC
    complexity: Complexity = field(default_factory=Complexity)
    throughput: Throughput = field(default_factory=Throughput)
    user: LogicalType = field(default_factory=Null)
    keep: bool = False
    kind = "Stream"

    def __post_init__(self) -> None:
        if not isinstance(self.element, LogicalType):
            raise TydiTypeError(f"Stream element must be a logical type, got {self.element!r}")
        if isinstance(self.element, Stream):
            raise TydiTypeError(
                "Stream element may not directly be another Stream; nest it inside a Group"
            )
        if not isinstance(self.dimension, int) or self.dimension < 0:
            raise TydiTypeError(f"Stream dimension must be a non-negative int, got {self.dimension!r}")

    @classmethod
    def new(
        cls,
        element: LogicalType,
        dimension: int = 0,
        direction: Direction | str = Direction.FORWARD,
        synchronicity: Synchronicity | str = Synchronicity.SYNC,
        complexity: Complexity | int | str = 1,
        throughput: Throughput | int | float = 1,
        user: LogicalType | None = None,
        keep: bool = False,
    ) -> "Stream":
        """Convenience constructor accepting plain Python values."""
        if isinstance(direction, str):
            direction = Direction(direction.capitalize())
        if isinstance(synchronicity, str):
            synchronicity = Synchronicity(synchronicity)
        return cls(
            element=element,
            dimension=dimension,
            direction=direction,
            synchronicity=synchronicity,
            complexity=Complexity.parse(complexity),
            throughput=Throughput.of(throughput),
            user=user if user is not None else Null(),
            keep=keep,
        )

    def children(self) -> Iterable[tuple[str, LogicalType]]:
        return (("element", self.element), ("user", self.user))

    def _internable(self) -> bool:
        # Mirrors the element condition of ``strictly_equal``'s Stream rule:
        # collapsing two equal streams is only safe when equal elements are
        # guaranteed strictly equal -- primitives and named compound types.
        # Streams around anonymous Groups/Unions stay distinct objects.
        return isinstance(self.element, (Bit, Null)) or bool(getattr(self.element, "name", None))

    def data_width(self) -> int:
        """Bits of element data per lane (excluding dimension / user bits)."""
        return self.element.bit_width()

    def bit_width(self) -> int:
        """Total data bits across all lanes of one transfer."""
        return self.data_width() * self.throughput.lanes

    def walk(self) -> Iterator[LogicalType]:
        yield self
        yield from self.element.walk()
        if not self.user.is_null():
            yield from self.user.walk()

    def with_element(self, element: LogicalType) -> "Stream":
        """Return a copy of this stream carrying a different element type."""
        return Stream(
            element=element,
            dimension=self.dimension,
            direction=self.direction,
            synchronicity=self.synchronicity,
            complexity=self.complexity,
            throughput=self.throughput,
            user=self.user,
            keep=self.keep,
        )

    def mangle_name(self) -> str:
        parts = ["stream", self.element.mangle_name()]
        if self.dimension:
            parts.append(f"d{self.dimension}")
        if self.throughput.lanes != 1:
            parts.append(f"t{self.throughput.lanes}")
        return "_".join(parts)

    def to_tydi(self) -> str:
        args = [self.element.to_tydi()]
        if self.dimension:
            args.append(f"d={self.dimension}")
        if self.direction is not Direction.FORWARD:
            args.append(f"dir={self.direction}")
        if self.synchronicity is not Synchronicity.SYNC:
            args.append(f"sync={self.synchronicity}")
        if self.complexity != Complexity():
            args.append(f"c={self.complexity}")
        if float(self.throughput) != 1.0:
            args.append(f"t={self.throughput}")
        if not self.user.is_null():
            args.append(f"user={self.user.to_tydi()}")
        if self.keep:
            args.append("keep=true")
        return f"Stream({', '.join(args)})"


#: Convenience alias: a 1-bit boolean stream used pervasively in the paper
#: (the ``select_or_not`` / ``keep`` signals of filters), ``Stream(Bit(1), d=1)``.
def bool_stream(dimension: int = 1) -> Stream:
    """The ``bool = Stream(Bit(1), d=1)`` type used by filter/select templates."""
    return Stream.new(Bit(1), dimension=dimension)
