"""Type compatibility and equality rules used by the design rule check.

The paper distinguishes two notions of equality for connection checking
(Section IV-B):

* **strict equality** (the default): the two ports must be declared with the
  *same logical type variable* -- i.e. the same named type object.  Two
  structurally identical types declared separately are *not* considered
  equal, which avoids the "type equality problem" discussed in the paper.
* **structural equality** (opt-in via an attribute on the connection): the
  type *hierarchies* must match -- same constructors, same field names, same
  widths and same stream parameters.

On top of type equality, a connection is only legal when the directions are
compatible (an output drives an input), the source protocol complexity is
accepted by the sink, and both ports live in the same clock domain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.spec.logical_types import Bit, Group, LogicalType, Null, Stream, Union


def structurally_equal(a: LogicalType, b: LogicalType) -> bool:
    """Deep structural comparison of two logical types.

    Stream parameters (dimension, direction, synchronicity, throughput, user)
    must match exactly; complexity participates in the connection check
    separately, so it is *not* part of structural equality.

    Constructor-level interning (:class:`repro.spec.logical_types.
    _InternedTypeMeta`) makes structurally identical types the *same*
    object in the common case, so the identity check below resolves most
    DRC comparisons without recursing.
    """
    if a is b:
        return True
    if isinstance(a, Null) and isinstance(b, Null):
        return True
    if isinstance(a, Bit) and isinstance(b, Bit):
        return a.width == b.width
    if isinstance(a, Group) and isinstance(b, Group):
        if len(a.fields) != len(b.fields):
            return False
        return all(
            na == nb and structurally_equal(ta, tb)
            for (na, ta), (nb, tb) in zip(a.fields, b.fields)
        )
    if isinstance(a, Union) and isinstance(b, Union):
        if len(a.variants) != len(b.variants):
            return False
        return all(
            na == nb and structurally_equal(ta, tb)
            for (na, ta), (nb, tb) in zip(a.variants, b.variants)
        )
    if isinstance(a, Stream) and isinstance(b, Stream):
        return (
            a.dimension == b.dimension
            and a.direction == b.direction
            and a.synchronicity == b.synchronicity
            and a.throughput == b.throughput
            and a.keep == b.keep
            and structurally_equal(a.element, b.element)
            and structurally_equal(a.user, b.user)
        )
    return False


def strictly_equal(a: LogicalType, b: LogicalType) -> bool:
    """Strict type equality: same object identity, or same declared name with
    structural equality as a backstop.

    The Tydi-lang frontend interns named type declarations, so two ports that
    were declared with the same ``type Foo = ...`` statement share one
    ``LogicalType`` instance and compare equal by identity.  Anonymous types
    (written inline) are only strictly equal to themselves.
    """
    if a is b:
        return True
    # Primitive leaf types carry no user intent beyond their width, so two
    # inline `Bit(8)` occurrences are the same type.
    if isinstance(a, (Bit, Null)) or isinstance(b, (Bit, Null)):
        return structurally_equal(a, b)
    name_a = getattr(a, "name", None)
    name_b = getattr(b, "name", None)
    if name_a and name_b and name_a == name_b:
        return structurally_equal(a, b)
    # Streams wrapping the same named element type (or a primitive element)
    # are strictly equal if all their stream parameters match (a
    # `type T = Stream(X)` alias is shared, but a stream written inline around
    # a shared Group should still match another identical inline stream around
    # the *same* Group object).
    if isinstance(a, Stream) and isinstance(b, Stream):
        if (
            a.element is b.element
            or isinstance(a.element, (Bit, Null))
            or (
                getattr(a.element, "name", None)
                and getattr(a.element, "name", None) == getattr(b.element, "name", None)
            )
        ):
            return structurally_equal(a, b)
    return False


@dataclass
class CompatibilityReport:
    """Outcome of a connection compatibility check."""

    compatible: bool
    reasons: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.compatible

    @classmethod
    def ok(cls) -> "CompatibilityReport":
        return cls(True, [])

    @classmethod
    def fail(cls, *reasons: str) -> "CompatibilityReport":
        return cls(False, list(reasons))


def check_connection_compatibility(
    source_type: LogicalType,
    sink_type: LogicalType,
    *,
    strict: bool = True,
    source_clock: str | None = None,
    sink_clock: str | None = None,
) -> CompatibilityReport:
    """Check whether a source port may legally drive a sink port.

    Parameters
    ----------
    source_type, sink_type:
        The logical types bound to the two ports (normally ``Stream`` types).
    strict:
        Use strict type equality (the DRC default) or structural equality
        (when the connection carries the "structural" attribute).
    source_clock, sink_clock:
        Clock-domain names; both ``None`` means the default domain.
    """
    reasons: list[str] = []

    equal = strictly_equal(source_type, sink_type) if strict else structurally_equal(source_type, sink_type)
    if not equal:
        mode = "strict" if strict else "structural"
        reasons.append(
            f"logical types are not {mode}ly equal: {source_type.to_tydi()} vs {sink_type.to_tydi()}"
        )

    if isinstance(source_type, Stream) and isinstance(sink_type, Stream):
        if not source_type.complexity.satisfies(sink_type.complexity):
            reasons.append(
                "source protocol complexity "
                f"{source_type.complexity} exceeds sink complexity {sink_type.complexity}"
            )
        if float(source_type.throughput) > float(sink_type.throughput):
            reasons.append(
                f"source throughput {source_type.throughput} exceeds sink throughput {sink_type.throughput}"
            )

    if (source_clock or "default") != (sink_clock or "default"):
        reasons.append(
            f"clock domain mismatch: source in {source_clock!r}, sink in {sink_clock!r}"
        )

    if reasons:
        return CompatibilityReport.fail(*reasons)
    return CompatibilityReport.ok()
