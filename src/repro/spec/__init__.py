"""Tydi-spec: logical types and physical stream mapping.

This package implements the type system of the Tydi specification
(Peltenburg et al., IEEE Micro 2020) that Tydi-lang builds on:

* :class:`~repro.spec.logical_types.Null` -- empty data.
* :class:`~repro.spec.logical_types.Bit` -- ``x`` hardware bits.
* :class:`~repro.spec.logical_types.Group` -- product type (sum of widths).
* :class:`~repro.spec.logical_types.Union` -- sum type (max width + tag).
* :class:`~repro.spec.logical_types.Stream` -- stream-space properties of a
  logical type: dimensionality, direction, synchronicity, complexity,
  throughput and clock domain.

It also provides the mapping from a Stream type to the physical signal bundle
(:mod:`repro.spec.physical`) used by the VHDL backend and the type
compatibility rules (:mod:`repro.spec.compat`) used by the design rule check.
"""

from repro.spec.logical_types import (
    Bit,
    Group,
    LogicalType,
    Null,
    Stream,
    Union,
)
from repro.spec.stream_params import (
    Complexity,
    Direction,
    Synchronicity,
    Throughput,
)
from repro.spec.physical import PhysicalSignal, PhysicalStream, expand_stream
from repro.spec.compat import (
    CompatibilityReport,
    check_connection_compatibility,
    structurally_equal,
    strictly_equal,
)

__all__ = [
    "Bit",
    "Group",
    "LogicalType",
    "Null",
    "Stream",
    "Union",
    "Complexity",
    "Direction",
    "Synchronicity",
    "Throughput",
    "PhysicalSignal",
    "PhysicalStream",
    "expand_stream",
    "CompatibilityReport",
    "check_connection_compatibility",
    "structurally_equal",
    "strictly_equal",
]
