"""Stream-space parameters from the Tydi specification.

A ``Stream`` logical type does not only name the element type that travels
over the wires; it also fixes *how* the element travels:

* :class:`Direction` -- whether data flows with (``FORWARD``) or against
  (``REVERSE``) the parent stream.
* :class:`Synchronicity` -- how the dimensionality information of a child
  stream relates to its parent (``SYNC``, ``FLATTEN``, ``DESYNC``,
  ``FLAT_DESYNC``).
* :class:`Complexity` -- the protocol complexity level ``C`` (1..8) of the
  Tydi physical-stream specification.  A source with complexity ``c`` may be
  connected to a sink that accepts complexity ``>= c``.
* :class:`Throughput` -- the number of element lanes per transfer (a positive
  rational, stored as a float like the specification does).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction

from repro.errors import TydiTypeError


class Direction(enum.Enum):
    """Data-flow direction of a stream relative to its parent."""

    FORWARD = "Forward"
    REVERSE = "Reverse"

    def __str__(self) -> str:
        return self.value


class Synchronicity(enum.Enum):
    """Relation between the dimensionality of a child stream and its parent."""

    SYNC = "Sync"
    FLATTEN = "Flatten"
    DESYNC = "Desync"
    FLAT_DESYNC = "FlatDesync"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, order=True)
class Complexity:
    """Protocol complexity level of a physical stream.

    The Tydi specification defines complexity as a period-separated sequence
    of integers (e.g. ``4.1.3``), ordered lexicographically where a missing
    component counts as zero.  Higher complexity means the source makes fewer
    guarantees, so a sink must support a complexity at least as high as the
    source it is connected to.
    """

    levels: tuple[int, ...] = (1,)

    def __post_init__(self) -> None:
        if not self.levels:
            raise TydiTypeError("complexity must have at least one level")
        if any(l < 0 for l in self.levels):
            raise TydiTypeError(f"complexity levels must be non-negative: {self.levels}")
        if self.levels[0] < 1 or self.levels[0] > 8:
            raise TydiTypeError(
                f"major complexity level must be between 1 and 8, got {self.levels[0]}"
            )

    @classmethod
    def parse(cls, text: str | int | float | "Complexity") -> "Complexity":
        """Parse a complexity from ``"4.1.3"``, an int, or another Complexity."""
        if isinstance(text, Complexity):
            return text
        if isinstance(text, int):
            return cls((text,))
        if isinstance(text, float):
            if text.is_integer():
                return cls((int(text),))
            raise TydiTypeError(f"complexity must be integral or dotted string, got {text!r}")
        parts = str(text).strip().split(".")
        try:
            levels = tuple(int(p) for p in parts)
        except ValueError as exc:
            raise TydiTypeError(f"invalid complexity {text!r}") from exc
        return cls(levels)

    @property
    def major(self) -> int:
        return self.levels[0]

    def satisfies(self, sink: "Complexity") -> bool:
        """Return True if a source of this complexity can drive ``sink``.

        The sink must accept a complexity at least as high as the source
        produces, i.e. ``self <= sink`` in the lexicographic order.
        """
        return self._key() <= sink._key()

    def _key(self) -> tuple[int, ...]:
        # Pad to a common comparison length of 8 with zeros.
        return self.levels + (0,) * (8 - len(self.levels))

    def __str__(self) -> str:
        return ".".join(str(l) for l in self.levels)


@dataclass(frozen=True)
class Throughput:
    """Number of element lanes per transfer (positive rational)."""

    ratio: Fraction = Fraction(1)

    def __post_init__(self) -> None:
        if self.ratio <= 0:
            raise TydiTypeError(f"throughput must be positive, got {self.ratio}")

    @classmethod
    def of(cls, value: "Throughput | int | float | str | Fraction") -> "Throughput":
        if isinstance(value, Throughput):
            return value
        if isinstance(value, Fraction):
            return cls(value)
        if isinstance(value, int):
            return cls(Fraction(value))
        if isinstance(value, float):
            return cls(Fraction(value).limit_denominator(1_000_000))
        return cls(Fraction(str(value)))

    @property
    def lanes(self) -> int:
        """Number of physical data lanes needed: ``ceil(throughput)``."""
        return -((-self.ratio.numerator) // self.ratio.denominator)

    def __float__(self) -> float:
        return float(self.ratio)

    def __str__(self) -> str:
        if self.ratio.denominator == 1:
            return str(self.ratio.numerator)
        return f"{float(self.ratio):g}"

    def __mul__(self, other: "Throughput") -> "Throughput":
        return Throughput(self.ratio * other.ratio)
