"""Mapping from logical Stream types to physical signal bundles.

The Tydi specification maps every logical ``Stream`` onto a *physical stream*:
a valid/ready handshaked channel with

* ``data``   -- ``element_width * lanes`` bits,
* ``last``   -- ``dimension * lanes`` bits marking the end of each nesting
  level (at complexity >= 8 a per-lane last; below that a per-transfer last),
* ``stai`` / ``endi`` -- lane start/end indices (present with multiple lanes),
* ``strb``   -- per-lane strobe (present at complexity >= 7 or with multiple
  lanes),
* ``user``   -- transfer-level user bits.

The VHDL backend uses :func:`expand_stream` to derive the port signals of an
entity from the logical types bound to its ports, which is exactly the
information the type system preserves down to RTL.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import TydiTypeError
from repro.spec.logical_types import LogicalType, Stream


@dataclass(frozen=True)
class PhysicalSignal:
    """One wire bundle of a physical stream (name, width, direction role)."""

    name: str
    width: int
    #: "forward" signals travel source->sink, "reverse" signals sink->source.
    role: str = "forward"

    def __post_init__(self) -> None:
        if self.width < 0:
            raise TydiTypeError(f"signal {self.name} has negative width {self.width}")
        if self.role not in ("forward", "reverse"):
            raise TydiTypeError(f"signal role must be forward/reverse, got {self.role!r}")


@dataclass(frozen=True)
class PhysicalStream:
    """The complete signal bundle of one physical stream."""

    signals: tuple[PhysicalSignal, ...]
    element_width: int
    lanes: int
    dimension: int

    def signal(self, name: str) -> PhysicalSignal:
        for sig in self.signals:
            if sig.name == name:
                return sig
        raise KeyError(name)

    def signal_names(self) -> list[str]:
        return [s.name for s in self.signals]

    def total_forward_width(self) -> int:
        """Total forward-direction payload width (excludes valid/ready)."""
        return sum(s.width for s in self.signals if s.role == "forward" and s.name not in ("valid",))

    def wire_count(self) -> int:
        """Total number of physical wires including handshake."""
        return sum(max(1, s.width) for s in self.signals)


def _index_width(lanes: int) -> int:
    """Bits needed to index a lane: ceil(log2(lanes)) with a minimum of 1."""
    if lanes <= 1:
        return 0
    return max(1, math.ceil(math.log2(lanes)))


def expand_stream(stream: LogicalType) -> PhysicalStream:
    """Expand a logical ``Stream`` into its physical signal bundle.

    Raises :class:`TydiTypeError` when given a non-Stream logical type, since
    only streams have a physical representation on a port.
    """
    if not isinstance(stream, Stream):
        raise TydiTypeError(
            f"only Stream types have a physical representation, got {stream.to_tydi() if isinstance(stream, LogicalType) else stream!r}"
        )

    lanes = stream.throughput.lanes
    element_width = stream.data_width()
    dimension = stream.dimension
    complexity = stream.complexity.major

    signals: list[PhysicalSignal] = [
        PhysicalSignal("valid", 1, "forward"),
        PhysicalSignal("ready", 1, "reverse"),
    ]
    if element_width > 0:
        signals.append(PhysicalSignal("data", element_width * lanes, "forward"))
    if dimension > 0:
        # Below complexity 8 the last flags apply to the whole transfer;
        # at complexity 8 every lane carries its own last flags.
        last_lanes = lanes if complexity >= 8 else 1
        signals.append(PhysicalSignal("last", dimension * last_lanes, "forward"))
    index_width = _index_width(lanes)
    if index_width > 0:
        if complexity >= 6:
            signals.append(PhysicalSignal("stai", index_width, "forward"))
        signals.append(PhysicalSignal("endi", index_width, "forward"))
    if complexity >= 7 or (lanes > 1 and dimension > 0):
        signals.append(PhysicalSignal("strb", lanes, "forward"))
    user_width = stream.user.bit_width()
    if user_width > 0:
        signals.append(PhysicalSignal("user", user_width, "forward"))

    return PhysicalStream(
        signals=tuple(signals),
        element_width=element_width,
        lanes=lanes,
        dimension=dimension,
    )


def stream_wire_summary(stream: Stream) -> dict[str, int]:
    """Summarise wire usage of a stream; handy for reports and tests."""
    phys = expand_stream(stream)
    return {
        "element_width": phys.element_width,
        "lanes": phys.lanes,
        "dimension": phys.dimension,
        "forward_width": phys.total_forward_width(),
        "wire_count": phys.wire_count(),
        "signals": len(phys.signals),
    }
