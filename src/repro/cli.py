"""Command-line interface: ``tydi-compile``.

Compiles one or more Tydi-lang source files to Tydi-IR and (optionally)
VHDL, mirroring the workflow of Figure 1:

.. code-block:: console

    $ tydi-compile design.td --top my_top --vhdl-dir out/
"""

from __future__ import annotations

import argparse
import pathlib
import sys


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tydi-compile",
        description="Compile Tydi-lang sources to Tydi-IR and VHDL.",
    )
    parser.add_argument("sources", nargs="+", help="Tydi-lang source files (.td)")
    parser.add_argument("--top", help="name of the top-level implementation", default=None)
    parser.add_argument("--no-stdlib", action="store_true", help="do not include the standard library")
    parser.add_argument("--no-sugaring", action="store_true", help="disable duplicator/voider insertion")
    parser.add_argument("--ir-out", help="write textual Tydi-IR to this file", default=None)
    parser.add_argument("--vhdl-dir", help="write generated VHDL files into this directory", default=None)
    parser.add_argument("--stats", action="store_true", help="print design statistics")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)

    from repro.lang import compile_sources
    from repro.errors import TydiError

    sources = []
    for path_text in args.sources:
        path = pathlib.Path(path_text)
        sources.append((path.read_text(), path.name))

    try:
        result = compile_sources(
            sources,
            top=args.top,
            include_stdlib=not args.no_stdlib,
            sugaring=not args.no_sugaring,
        )
    except TydiError as exc:
        print(f"error ({exc.stage}): {exc.render()}", file=sys.stderr)
        return 1

    for stage in result.stages:
        print(f"[{stage.name}] {stage.detail}")

    if args.stats:
        for key, value in result.project.statistics().items():
            print(f"  {key}: {value}")

    if args.ir_out:
        pathlib.Path(args.ir_out).write_text(result.ir_text())
        print(f"wrote Tydi-IR to {args.ir_out}")

    if args.vhdl_dir:
        from repro.vhdl import generate_vhdl

        out_dir = pathlib.Path(args.vhdl_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        files = generate_vhdl(result.project)
        for name, text in files.items():
            (out_dir / name).write_text(text)
        print(f"wrote {len(files)} VHDL file(s) to {out_dir}")

    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
