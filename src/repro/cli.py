"""Command-line interface: ``tydi-compile``.

Compiles one or more Tydi-lang source files to Tydi-IR and (optionally)
VHDL, mirroring the workflow of Figure 1:

.. code-block:: console

    $ tydi-compile design.td --top my_top --vhdl-dir out/

In the default mode every given file is part of *one* design.  With
``--batch`` each file is an *independent* design and the set is compiled
through the pipeline batch driver (:mod:`repro.pipeline`), optionally in
parallel and against a content-addressed cache:

.. code-block:: console

    $ tydi-compile --batch --jobs 4 --cache-dir .tydi-cache --json designs/*.td

Output backends are pluggable (:mod:`repro.backends`): ``--target`` selects
one or more registered emitters (``--list-backends`` enumerates them),
``--backend-opt name.key=value`` sets their options, and a single design's
outputs stream to stdout when no ``--out-dir`` is given:

.. code-block:: console

    $ tydi-compile --target dot design.td | dot -Tsvg > design.svg
    $ tydi-compile --target dot --backend-opt dot.rankdir=TB design.td
    $ tydi-compile --target vhdl --target ir --target dot --out-dir out/ design.td

``--from-ir`` swaps the frontend: the sources are Tydi-IR interchange
documents (:mod:`repro.interchange`, e.g. a previous ``--target tydi-ir``
emission) compiled through the ingest pipeline, so a design can round-trip
out of one session and into another without its Tydi-lang sources:

.. code-block:: console

    $ tydi-compile --target tydi-ir --out-dir out/ design.td
    $ tydi-compile --from-ir --target vhdl --out-dir out2/ out/tydi-ir/design.tir

Both modes run through one :class:`repro.workspace.Workspace` session, and
``--watch`` keeps that session alive: the loop polls the source files
(``--watch-interval`` seconds), feeds real changes through
``Workspace.update_file`` (fingerprint-keyed, so an unchanged save is a
no-op) and recompiles only the designs that became stale, re-writing the
requested outputs:

.. code-block:: console

    $ tydi-compile --watch --ir-out out.tir design.td
    $ tydi-compile --batch --watch --cache-dir .tydi-cache designs/*.td

For a *shared* long-lived session serving many clients, see ``tydi-serve``
(:mod:`repro.server`).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tydi-compile",
        description="Compile Tydi-lang sources to Tydi-IR and VHDL.",
    )
    parser.add_argument("sources", nargs="*", help="Tydi-lang source files (.td)")
    parser.add_argument(
        "--from-ir",
        action="store_true",
        help="treat the sources as Tydi-IR interchange documents (.tir, e.g. "
        "a previous --target tydi-ir emission) and compile them through the "
        "ingest pipeline instead of the Tydi-lang frontend; single mode "
        "takes exactly one document, --batch one per source",
    )
    parser.add_argument("--top", help="name of the top-level implementation", default=None)
    parser.add_argument("--no-stdlib", action="store_true", help="do not include the standard library")
    parser.add_argument("--no-sugaring", action="store_true", help="disable duplicator/voider insertion")
    parser.add_argument("--ir-out", help="write textual Tydi-IR to this file (a directory in --batch mode)", default=None)
    parser.add_argument(
        "--vhdl-dir",
        help="write generated VHDL files into this directory (one subdirectory per design in --batch mode)",
        default=None,
    )
    parser.add_argument("--stats", action="store_true", help="print design statistics")
    backends = parser.add_argument_group("output backends")
    backends.add_argument(
        "--target",
        action="append",
        dest="targets",
        default=None,
        metavar="NAME",
        help="run a registered output backend (vhdl, ir, dot, ...); repeatable, "
        "one output set per target",
    )
    backends.add_argument(
        "--out-dir",
        default=None,
        metavar="DIR",
        help="write --target outputs under DIR/<target>/ "
        "(DIR/<design>/<target>/ in --batch mode); without it a single "
        "design's outputs stream to stdout, pipeable into e.g. dot -Tsvg",
    )
    backends.add_argument(
        "--backend-opt",
        action="append",
        dest="backend_opts",
        default=None,
        metavar="NAME.KEY=VALUE",
        help="set one option of a registered backend (e.g. dot.rankdir=TB); "
        "repeatable, values are coerced to the option's declared type",
    )
    backends.add_argument(
        "--list-backends",
        action="store_true",
        help="list the registered output backends and exit",
    )
    batch = parser.add_argument_group("batch compilation")
    batch.add_argument(
        "--batch",
        action="store_true",
        help="treat every source file as an independent design and compile them as a batch",
    )
    batch.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker count for --batch (default: CPU count)",
    )
    batch.add_argument(
        "--executor",
        choices=("serial", "thread", "process"),
        default="thread",
        help="batch executor kind (default: thread)",
    )
    batch.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-addressed compilation cache directory (e.g. .tydi-cache)",
    )
    batch.add_argument(
        "--max-cache-mb",
        type=float,
        default=None,
        metavar="MB",
        help="bound the on-disk cache (whole-result and per-stage artefacts) "
        "to this many megabytes, evicting least-recently-used entries",
    )
    batch.add_argument(
        "--remote-cache",
        default=None,
        metavar="HOST:PORT",
        help="shared remote L2 cache endpoint (a tydi-serve cache daemon); "
        "consulted after memory and disk miss, with write-behind upload "
        "(usable with or without --cache-dir)",
    )
    batch.add_argument(
        "--json",
        action="store_true",
        dest="json_output",
        help="print per-design and cache statistics as JSON",
    )
    perf = parser.add_argument_group("performance")
    perf.add_argument(
        "--profile-stages",
        action="store_true",
        help="record per-stage wall/CPU timings (parse, evaluate, sugaring, "
        "drc, backends) and print the table to stderr when done; same "
        "switch as the TYDI_PROFILE_STAGES environment variable",
    )
    perf.add_argument(
        "--parse-jobs",
        type=int,
        default=None,
        metavar="N",
        help="pre-parse the input files across N worker processes, warming "
        "the per-file AST cache before compilation (uses an in-memory "
        "cache when no --cache-dir is configured)",
    )
    perf.add_argument(
        "--emit-jobs",
        type=int,
        default=None,
        metavar="N",
        help="emit cold backend units across N worker processes (uses an "
        "in-memory stage cache when no --cache-dir is configured; cache "
        "hits and assembly stay in-process)",
    )
    sim = parser.add_argument_group("simulation")
    sim.add_argument(
        "--simulate",
        action="store_true",
        help="after compiling, run the event-driven simulator over the "
        "design and print a one-line report (bottleneck component, "
        "deadlock verdict); a deadlocked design exits non-zero",
    )
    sim.add_argument(
        "--sim-plan",
        default=None,
        metavar="FILE",
        help="JSON simulation plan for --simulate: an object with any of "
        "stimuli, channel_capacity, max_time, max_events, analyses, "
        "testbench (default: an empty plan -- sources drive themselves)",
    )
    watch = parser.add_argument_group("watch mode")
    watch.add_argument(
        "--watch",
        action="store_true",
        help="after the first compile, keep the session alive: poll the "
        "source files, feed edits into the workspace and recompile (with "
        "outputs re-written) whenever a file really changed; Ctrl-C exits",
    )
    watch.add_argument(
        "--watch-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="polling interval for --watch (default: 1.0)",
    )
    return parser


def _load_sources(paths: list[str]) -> list[tuple[str, str]]:
    """Read the input files, keyed by their full (relative) path.

    The full path -- not just the basename -- is recorded as the diagnostic
    filename, so two inputs like ``a/top.td`` and ``b/top.td`` stay
    distinguishable in error messages and stage logs.
    """
    sources = []
    for path_text in paths:
        path = pathlib.Path(path_text)
        sources.append((_read_or_exit(path), str(path)))
    return sources


class _CliInputError(Exception):
    """An unusable input or output path (reported as a clean one-line error)."""


def _read_or_exit(path: pathlib.Path) -> str:
    try:
        return path.read_text()
    except OSError as exc:
        raise _CliInputError(f"cannot read {path}: {exc.strerror or exc}") from exc


def _write_file(path: pathlib.Path, text: str) -> None:
    try:
        path.write_text(text)
    except OSError as exc:
        raise _CliInputError(f"cannot write {path}: {exc.strerror or exc}") from exc


def _make_dir(path: pathlib.Path) -> pathlib.Path:
    try:
        path.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        # e.g. the path exists but is a file (FileExistsError), or no perms.
        raise _CliInputError(f"cannot create directory {path}: {exc.strerror or exc}") from exc
    return path


def _design_name(path_text: str, taken: set[str]) -> str:
    """A unique short name for one batch design (stem, then qualified stem)."""
    stem = pathlib.Path(path_text).stem
    if stem not in taken:
        return stem
    candidate = str(pathlib.Path(path_text).with_suffix("")).replace("/", "_").replace("\\", "_")
    while candidate in taken:
        candidate += "_"
    return candidate


def _build_cache(args: argparse.Namespace):
    """The compilation cache the CLI flags describe (``None`` without one).

    ``--remote-cache`` alone still gets a cache (memory + remote tiers,
    no disk): the point of the shared L2 is precisely that a machine
    without a local artefact store can ride the fleet's warm entries.
    """
    max_disk_bytes = None
    if args.max_cache_mb is not None:
        if args.max_cache_mb < 0:
            raise _CliInputError("--max-cache-mb must be >= 0")
        if not args.cache_dir:
            raise _CliInputError("--max-cache-mb requires --cache-dir")
        max_disk_bytes = int(args.max_cache_mb * 1024 * 1024)
    remote = getattr(args, "remote_cache", None)
    if not args.cache_dir and not remote:
        # --parse-jobs warms the per-file AST tier and --emit-jobs fans the
        # backend-unit tier out, both of which need *some* stage cache; a
        # memory-only one keeps the flags useful without forcing
        # --cache-dir.
        if getattr(args, "parse_jobs", None) or getattr(args, "emit_jobs", None):
            from repro.pipeline import CompilationCache

            return CompilationCache()
        return None
    from repro.pipeline import CompilationCache

    return CompilationCache(
        cache_dir=args.cache_dir or None,
        max_disk_bytes=max_disk_bytes,
        remote=remote,
    )


def _apply_emit_jobs(workspace, args: argparse.Namespace) -> None:
    """Point the session's stage cache at ``--emit-jobs`` worker processes.

    A no-op without the flag; ``_build_cache`` guarantees a stage cache
    exists whenever the flag is set.
    """
    jobs = getattr(args, "emit_jobs", None)
    if not jobs:
        return
    stage_cache = getattr(workspace.cache, "stages", None) if workspace.cache else None
    if stage_cache is not None:
        stage_cache.emit_jobs = jobs


def _preload_parse(workspace, sources, args: argparse.Namespace) -> None:
    """Warm the per-file AST cache across ``--parse-jobs`` worker processes.

    A no-op without the flag, without a stage cache, or with nothing to
    parse; the subsequent compile then serves its parse stage from the
    warmed tier (:meth:`repro.pipeline.stages.StageCache.preload_units`).
    """
    jobs = getattr(args, "parse_jobs", None)
    if not jobs or not sources:
        return
    stage_cache = getattr(workspace.cache, "stages", None) if workspace.cache else None
    if stage_cache is None:
        return
    stage_cache.preload_units(sources, jobs=jobs)


def _load_sim_plan(args: argparse.Namespace):
    """The :class:`~repro.sim.harness.SimulationPlan` of ``--sim-plan``.

    Re-read on every call so a ``--watch`` session picks up plan edits;
    without the flag, the default plan (no stimuli, default budgets).
    """
    from repro.sim.harness import SimulationPlan

    if not args.sim_plan:
        return SimulationPlan()
    path = pathlib.Path(args.sim_plan)
    try:
        document = json.loads(_read_or_exit(path))
    except ValueError as exc:
        raise _CliInputError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise _CliInputError(f"{path} must hold a JSON object (a simulation plan)")
    from repro.errors import TydiError

    try:
        return SimulationPlan.coerce(document)
    except TydiError as exc:
        raise _CliInputError(f"{path}: {exc}") from exc


def _design_options(args: argparse.Namespace, name: str, targets, backend_opts):
    """The :class:`~repro.lang.compile.CompileOptions` the CLI flags describe."""
    from repro.lang.compile import CompileOptions

    return CompileOptions(
        top=args.top,
        include_stdlib=not args.no_stdlib,
        sugaring=not args.no_sugaring,
        project_name=name,
        targets=targets,
        backend_options=backend_opts,
    )


def _run_batch(args: argparse.Namespace) -> int:
    from repro.pipeline import CompileJob, JobResult
    from repro.workspace import Workspace

    targets = _resolve_targets(args)
    backend_opts = _resolve_backend_options(args)

    # One workspace session per invocation; --watch keeps it alive below,
    # feeding edited sources through update_file and re-querying.
    workspace = Workspace(cache=_build_cache(args))
    _apply_emit_jobs(workspace, args)
    cache = workspace.cache

    # An unreadable file is one failed *design*, not a reason to abort the
    # batch -- mirroring the engine's per-design compile-error isolation.
    unreadable: dict[int, JobResult] = {}
    taken: set[str] = set()
    design_paths: dict[str, pathlib.Path] = {}
    readable_sources: list[tuple[str, str]] = []
    for position, path_text in enumerate(args.sources):
        path = pathlib.Path(path_text)
        name = _design_name(path_text, taken)
        taken.add(name)
        design_paths[name] = path
        try:
            text = _read_or_exit(path)
        except _CliInputError as exc:
            placeholder = CompileJob(name=name, sources=())
            unreadable[position] = JobResult(
                job=placeholder,
                error=str(exc),
                error_stage="read",
                error_type=type(exc.__cause__).__name__ if exc.__cause__ else "OSError",
            )
            continue
        readable_sources.append((text, str(path)))
        if args.from_ir:
            workspace.add_ir_design(
                name,
                text,
                _design_options(args, name, targets, backend_opts),
                filename=str(path),
            )
        else:
            workspace.add_design(
                name,
                ((text, str(path)),),
                _design_options(args, name, targets, backend_opts),
            )

    if not args.from_ir:
        _preload_parse(workspace, readable_sources, args)

    outcome = workspace.compile_all(executor=args.executor, jobs=args.jobs).batch

    # Splice the read failures back in at their input positions.
    for position in sorted(unreadable):
        outcome.results.insert(position, unreadable[position])

    if args.json_output:
        payload = {
            "designs": [entry.as_dict() for entry in outcome.results],
            "batch": outcome.stats(),
            "cache": cache.stats_snapshot() if cache is not None else None,
            "stage_cache": cache.stages.stats_snapshot()
            if cache is not None and cache.stages is not None
            else None,
        }
        print(json.dumps(payload, indent=2))
    else:
        for entry in outcome.results:
            if entry.ok:
                note = " (cached)" if entry.from_cache else ""
                print(f"[ok] {entry.name}{note} ({entry.elapsed:.3f}s)")
                if args.stats:
                    for key, value in entry.result.project.statistics().items():
                        print(f"    {key}: {value}")
            else:
                stage = entry.error_stage or "error"
                print(f"[failed] {entry.name} ({stage}): {entry.error}")
        stats = outcome.stats()
        print(
            f"batch: {stats['succeeded']}/{stats['jobs']} succeeded "
            f"({stats['cached']} cached) in {stats['wall_time']:.3f}s "
            f"[{stats['executor']} x{stats['workers']}]"
        )

    if args.ir_out:
        out_dir = _make_dir(pathlib.Path(args.ir_out))
        for entry in outcome.results:
            if entry.ok:
                _write_file(out_dir / f"{entry.name}.tir", entry.result.ir_text())
        if not args.json_output:
            print(f"wrote Tydi-IR for {sum(1 for e in outcome.results if e.ok)} design(s) to {out_dir}")

    if args.vhdl_dir:
        from repro.vhdl import generate_vhdl

        base_dir = pathlib.Path(args.vhdl_dir)
        written = 0
        for entry in outcome.results:
            if not entry.ok:
                continue
            design_dir = _make_dir(base_dir / entry.name)
            files = generate_vhdl(entry.result.project)
            for name, text in files.items():
                _write_file(design_dir / name, text)
            written += len(files)
        if not args.json_output:
            print(f"wrote {written} VHDL file(s) to {base_dir} (one directory per design)")

    if targets:
        if args.out_dir:
            base_dir = pathlib.Path(args.out_dir)
            written = 0
            for entry in outcome.results:
                if entry.ok:
                    written += _write_outputs(base_dir / entry.name, entry.result.outputs)
            if not args.json_output:
                print(
                    f"wrote {written} backend output file(s) to {base_dir} "
                    f"(one directory per design and target)"
                )
        elif not args.json_output:
            # The outputs were produced but have nowhere to go: say so
            # instead of silently dropping them.
            emitted = sum(
                len(files)
                for entry in outcome.results
                if entry.ok
                for files in entry.result.outputs.values()
            )
            print(
                f"emitted {emitted} backend output file(s) in memory; "
                f"pass --out-dir to write them"
            )

    if not args.watch:
        return 0 if outcome.ok else 1

    from repro.errors import TydiError

    # Watch every input path -- including files that were unreadable at
    # startup: they get an empty placeholder design now, and the loop adds
    # their content via update_file the moment they become readable.
    for name, path in design_paths.items():
        if name not in workspace:
            if args.from_ir:
                workspace.add_ir_design(
                    name,
                    "",
                    _design_options(args, name, targets, backend_opts),
                    filename=str(path),
                )
            else:
                workspace.add_design(
                    name, (), _design_options(args, name, targets, backend_opts)
                )
    watched = {
        name: {str(path): path} for name, path in design_paths.items()
    }

    def refresh(name: str, changed: list[str]) -> None:
        try:
            result = workspace.result(name)
        except TydiError as exc:
            print(f"[watch] {name}: error ({exc.stage}): {exc.render()}", file=sys.stderr)
            return
        print(f"[watch] recompiled {name} ({', '.join(changed)})")
        if args.ir_out:
            out_dir = _make_dir(pathlib.Path(args.ir_out))
            _write_file(out_dir / f"{name}.tir", result.ir_text())
        if args.vhdl_dir:
            from repro.vhdl import generate_vhdl

            design_dir = _make_dir(pathlib.Path(args.vhdl_dir) / name)
            for filename, text in generate_vhdl(result.project).items():
                _write_file(design_dir / filename, text)
        if targets and args.out_dir:
            _write_outputs(pathlib.Path(args.out_dir) / name, result.outputs)

    watched_files = sum(len(files) for files in watched.values())
    print(
        f"[watch] watching {watched_files} file(s) across {len(watched)} design(s) "
        f"every {args.watch_interval}s (Ctrl-C to stop)"
    )
    run_watch_loop(workspace, watched, refresh, interval=args.watch_interval)
    return 0


def _list_backends(as_json: bool = False) -> int:
    from repro.backends import available_backends, backend_class, option_schema

    entries = [
        {
            "name": name,
            "description": backend_class(name).description,
            "options": option_schema(backend_class(name)),
        }
        for name in available_backends()
    ]
    if as_json:
        print(json.dumps({"backends": entries}, indent=2))
        return 0
    for entry in entries:
        print(f"{entry['name']:8s} {entry['description']}")
        for option in entry["options"]:
            print(
                f"         --backend-opt {entry['name']}.{option['name']}=... "
                f"({option['type']}, default {option['default']!r})"
            )
    return 0


def _resolve_targets(args: argparse.Namespace) -> tuple[str, ...]:
    """Validate the --target names against the registry (ordered, deduped)."""
    from repro.backends import backend_class
    from repro.errors import TydiBackendError
    from repro.lang.compile import normalize_targets

    targets = normalize_targets(args.targets)
    for name in targets:
        try:
            backend_class(name)
        except TydiBackendError as exc:
            raise _CliInputError(str(exc)) from exc
    if args.out_dir and not targets:
        raise _CliInputError("--out-dir requires at least one --target")
    return targets


def _resolve_backend_options(args: argparse.Namespace) -> tuple[tuple[str, object], ...]:
    """Parse and validate every --backend-opt into backend options instances.

    Unknown backends, unknown option keys (with a did-you-mean suggestion)
    and un-coercible values all fail here with a clean one-line error, not
    deep inside the emit stage.
    """
    from repro.backends import parse_backend_opt_specs
    from repro.errors import TydiError
    from repro.lang.compile import normalize_backend_options

    if not args.backend_opts:
        return ()
    try:
        return normalize_backend_options(parse_backend_opt_specs(args.backend_opts))
    except TydiError as exc:
        raise _CliInputError(str(exc)) from exc


#: The watch loop's clock (``time.sleep``); module-level so tests can drive
#: the loop with a fake clock that edits files between rounds.
_watch_sleep = time.sleep


def _stat_signature(path: pathlib.Path):
    """A cheap change signature of one file (``None``: currently unreadable)."""
    try:
        stat = path.stat()
    except OSError:
        return None
    return (stat.st_mtime_ns, stat.st_size)


def run_watch_loop(
    workspace,
    watched: dict[str, dict[str, pathlib.Path]],
    refresh,
    *,
    interval: float,
    sleep=None,
    max_rounds: int | None = None,
    err_stream=None,
) -> int:
    """The ``--watch`` polling loop: stat, diff, ``update_file``, re-query.

    ``watched`` maps each design to its ``{diagnostic filename: path}``
    files.  Every round sleeps ``interval`` seconds, then re-stats every
    watched path; files whose mtime/size signature moved are re-read and
    fed through :meth:`~repro.workspace.Workspace.update_file` -- which is
    fingerprint-keyed, so a save that didn't change the bytes invalidates
    nothing.  ``refresh(design, changed_files)`` runs for each design that
    became genuinely stale (the re-query + output rewriting of the calling
    mode).  ``sleep`` is injectable (tests drive the loop with a fake clock
    that edits files and finally raises ``KeyboardInterrupt``);
    ``max_rounds`` bounds the loop (``None``: until interrupted).  Returns
    the number of completed rounds.
    """
    sleep = _watch_sleep if sleep is None else sleep
    err_stream = err_stream if err_stream is not None else sys.stderr
    signatures = {
        design: {filename: _stat_signature(path) for filename, path in files.items()}
        for design, files in watched.items()
    }
    rounds = 0
    while max_rounds is None or rounds < max_rounds:
        try:
            sleep(interval)
        except KeyboardInterrupt:
            break
        rounds += 1
        for design, files in watched.items():
            changed: list[str] = []
            for filename, path in files.items():
                signature = _stat_signature(path)
                if signature is None or signature == signatures[design][filename]:
                    continue
                try:
                    text = path.read_text()
                except OSError as exc:
                    # Keep the old signature: the next round retries this
                    # edit instead of silently losing it to a read flake.
                    print(
                        f"[watch] cannot re-read {path}: {exc.strerror or exc}",
                        file=err_stream,
                    )
                    continue
                signatures[design][filename] = signature
                workspace.update_file(design, filename, text)
                changed.append(filename)
            if changed and not workspace.is_fresh(design):
                refresh(design, changed)
    return rounds


def _write_outputs(base_dir: pathlib.Path, outputs: dict[str, dict[str, str]]) -> int:
    """Write every target's files under ``base_dir/<target>/``."""
    written = 0
    for target, files in outputs.items():
        target_dir = _make_dir(base_dir / target)
        for filename, text in files.items():
            path = target_dir / filename
            _make_dir(path.parent)
            _write_file(path, text)
            written += 1
    return written


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)

    try:
        if args.list_backends:
            return _list_backends(args.json_output)
        if not args.sources:
            build_arg_parser().error("at least one source file is required")
        if args.watch and args.json_output:
            raise _CliInputError("--watch cannot be combined with --json")
        if args.parse_jobs is not None and args.parse_jobs < 1:
            raise _CliInputError("--parse-jobs must be >= 1")
        if args.emit_jobs is not None and args.emit_jobs < 1:
            raise _CliInputError("--emit-jobs must be >= 1")
        if args.from_ir and not args.batch and len(args.sources) != 1:
            raise _CliInputError(
                "--from-ir takes exactly one interchange document "
                "(use --batch for several)"
            )
        if args.sim_plan and not args.simulate:
            raise _CliInputError("--sim-plan requires --simulate")
        if args.simulate and args.batch:
            raise _CliInputError("--simulate is not supported with --batch")
        if args.profile_stages:
            from repro.profiling import enable_profiling

            enable_profiling()
        try:
            return _run_batch(args) if args.batch else _run_single(args)
        finally:
            if args.profile_stages:
                from repro.profiling import format_profile

                print(format_profile(), file=sys.stderr)
    except _CliInputError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _run_single(args: argparse.Namespace) -> int:
    from repro.errors import TydiError
    from repro.workspace import Workspace

    sources = _load_sources(args.sources)
    targets = _resolve_targets(args)
    backend_opts = _resolve_backend_options(args)

    workspace = Workspace(cache=_build_cache(args))
    _apply_emit_jobs(workspace, args)
    if not args.from_ir:
        # Pre-parsing is a Tydi-lang frontend warm-up; interchange
        # documents never touch the parse tier.
        _preload_parse(workspace, sources, args)

    # When target outputs stream to stdout (no --out-dir), the stage log
    # moves to stderr so e.g. `tydi-compile --target dot x.td | dot -Tsvg`
    # pipes clean DOT.
    emit_to_stdout = bool(targets) and not args.out_dir and not args.json_output
    log_stream = sys.stderr if emit_to_stdout else sys.stdout

    try:
        if args.from_ir:
            text, filename = sources[0]
            workspace.add_ir_design(
                "design",
                text,
                _design_options(args, "design", targets, backend_opts),
                filename=filename,
            )
        else:
            workspace.add_design(
                "design", sources, _design_options(args, "design", targets, backend_opts)
            )
    except TydiError as exc:
        print(f"error ({exc.stage}): {exc.render()}", file=sys.stderr)
        return 1

    status = _query_and_emit_single(args, workspace, targets, log_stream)
    if not args.watch:
        return status

    watched = {"design": {filename: pathlib.Path(filename) for _, filename in sources}}

    def refresh(design: str, changed: list[str]) -> None:
        print(f"[watch] {', '.join(changed)} changed; recompiling", file=log_stream)
        _query_and_emit_single(args, workspace, targets, log_stream)

    print(
        f"[watch] watching {len(sources)} file(s) every {args.watch_interval}s "
        f"(Ctrl-C to stop)",
        file=log_stream,
    )
    run_watch_loop(workspace, watched, refresh, interval=args.watch_interval)
    return 0


def _query_and_emit_single(args, workspace, targets, log_stream) -> int:
    """Query the single-mode design and write every requested output.

    The shared tail of the one-shot run and each ``--watch`` refresh; a
    failing compile reports the stage error and returns 1 without raising,
    so a watch session survives broken intermediate states.
    """
    from repro.errors import TydiError

    cache = workspace.cache
    try:
        result = workspace.result("design")
    except TydiError as exc:
        print(f"error ({exc.stage}): {exc.render()}", file=sys.stderr)
        return 1

    sim_report = None
    if getattr(args, "simulate", False):
        try:
            sim_report = workspace.simulate("design", _load_sim_plan(args))
        except TydiError as exc:
            print(f"error ({exc.stage}): {exc.render()}", file=sys.stderr)
            return 1

    if args.json_output:
        payload = {
            "stages": [{"name": s.name, "detail": s.detail} for s in result.stages],
            "statistics": result.project.statistics(),
            "outputs": {target: sorted(files) for target, files in result.outputs.items()},
            "cache": cache.stats_snapshot() if cache is not None else None,
            "stage_cache": cache.stages.stats_snapshot()
            if cache is not None and cache.stages is not None
            else None,
        }
        if sim_report is not None:
            payload["simulation"] = sim_report.as_dict()
        print(json.dumps(payload, indent=2))
    else:
        for stage in result.stages:
            print(f"[{stage.name}] {stage.detail}", file=log_stream)
        if sim_report is not None:
            print(f"[simulate] {sim_report.summary()}", file=log_stream)

    if args.stats and not args.json_output:
        for key, value in result.project.statistics().items():
            print(f"  {key}: {value}", file=log_stream)

    if targets:
        if args.out_dir:
            written = _write_outputs(pathlib.Path(args.out_dir), result.outputs)
            if not args.json_output:
                print(f"wrote {written} file(s) to {args.out_dir} (one directory per target)")
        elif not args.json_output:
            for target in targets:
                for _, text in sorted(result.outputs[target].items()):
                    sys.stdout.write(text)

    if args.ir_out:
        _write_file(pathlib.Path(args.ir_out), result.ir_text())
        if not args.json_output:
            print(f"wrote Tydi-IR to {args.ir_out}", file=log_stream)

    if args.vhdl_dir:
        from repro.vhdl import generate_vhdl

        out_dir = _make_dir(pathlib.Path(args.vhdl_dir))
        files = generate_vhdl(result.project)
        for name, text in files.items():
            _write_file(out_dir / name, text)
        if not args.json_output:
            print(f"wrote {len(files)} VHDL file(s) to {out_dir}", file=log_stream)

    if sim_report is not None and sim_report.deadlocked:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
