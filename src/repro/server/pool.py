"""The multi-process compile worker pool: warm forks, design sharding, ops.

``tydi-serve`` was one process, one GIL: parse/evaluate/sugar/DRC are pure
Python CPU work, so the PR-5 thread pool serialized concurrent clients.
:class:`WorkerPool` is the scale-out: it **forks** N worker processes
*after* the stdlib AST is parsed (:func:`warm_stdlib` -- every worker
inherits the warm parse instead of paying ~60ms on its first job) and
routes every design-addressed request to the worker that owns the design's
shard.

**Sharding** is a stable content hash of the design *name*
(:func:`shard_for`): the same design always lands on the same worker, so
that worker's in-memory :class:`~repro.pipeline.stages.StageCache` tiers
and :class:`~repro.workspace.Workspace` memos stay hot for its shard --
the in-memory analogue of the on-disk content addressing the cache stack
already uses.  Workers sharing a ``cache_dir`` still share cold artefacts
through the multi-process-safe disk tiers.

**Ops surface** (what a real deployment needs, per ROADMAP item 1):

* *lifespan*: a worker that dies (crash, OOM kill) is detected by EOF on
  its result pipe and respawned within a capped restart budget; the
  parent replays the shard's design state (it mirrors every successful
  mutation), then retries the in-flight job once -- a second crash on the
  same job returns a structured :class:`~repro.errors.TydiServerError`
  instead of looping a poison job forever.
* *graceful drain*: :meth:`WorkerPool.drain` stops intake (submits raise
  :class:`~repro.errors.TydiDrainingError`), lets queued and in-flight
  jobs finish, then EOFs each worker's job pipe and joins it.
* *backpressure*: each worker has a bounded FIFO queue; a full queue
  rejects with :class:`~repro.errors.TydiBackpressureError` rather than
  buffering without bound.
* *stats*: per-worker dispatch/retry/restart counters, queue depths,
  design counts and (on demand) each worker's workspace cache stats.

The pool requires the ``fork`` start method (Linux/macOS); platforms
without it keep the ``workers=0`` in-process thread path.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import queue
import threading
from typing import Any, Callable, Mapping, Optional

from repro.errors import TydiBackpressureError, TydiDrainingError, TydiServerError
from repro.server import protocol
from repro.server.worker import read_frame, worker_main, write_frame

#: Methods the pool routes by their ``design`` parameter; everything else
#: (ping, stats, list_backends, shutdown) is answered by the parent.
POOLED_METHODS = frozenset(
    {
        "open_design",
        "open_ir_design",
        "update_file",
        "remove_file",
        "remove_design",
        "get_ir",
        "get_outputs",
        "get_diagnostics",
        # Read-only like get_ir: routed to the owning shard so simulation
        # reports come out of that worker's warm sim: cache tier; never
        # mirrored (nothing to replay on a respawn).
        "simulate_design",
    }
)


def shard_for(design: str, shards: int) -> int:
    """The worker index owning one design name (stable across processes).

    A content hash, *not* Python's salted ``hash()``: the same design must
    map to the same shard across daemon restarts and on every platform,
    or the per-shard warm state would be shuffled away on each run.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    digest = hashlib.sha256(design.encode("utf-8", "surrogatepass")).digest()
    return int.from_bytes(digest[:8], "big") % shards


def warm_stdlib() -> None:
    """Parse the stdlib once in this process (memoised), pre-fork.

    Forked workers inherit the parsed AST via copy-on-write memory, which
    is the whole point of forking *after* this call.
    """
    from repro.lang.compile import parse_stage

    parse_stage((), include_stdlib=True)


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


class _PoolJob:
    """One design-addressed request travelling through a worker queue."""

    __slots__ = ("job_id", "request_id", "method", "params", "future")

    def __init__(self, job_id: int, request_id: Any, method: str, params: dict) -> None:
        self.job_id = job_id
        self.request_id = request_id
        self.method = method
        self.params = params
        from concurrent.futures import Future

        self.future: "Future[dict]" = Future()


class _Control:
    """An out-of-band request to one worker (stats/report/ping)."""

    __slots__ = ("kind", "token", "future")

    def __init__(self, kind: str, token: int) -> None:
        self.kind = kind
        self.token = token
        from concurrent.futures import Future

        self.future: "Future[Any]" = Future()


#: Queue sentinel: drain this worker (EOF the job pipe, join the process).
_EXIT = object()


class _Worker:
    """Parent-side handle of one worker: process, pipes, queue, dispatcher.

    All pipe I/O and all mutable per-worker state (the shard's design
    mirror, the counters) are owned by the single dispatcher thread, so
    the frame protocol needs no locks: one write, one read, strictly FIFO.
    """

    def __init__(self, pool: "WorkerPool", index: int) -> None:
        self.pool = pool
        self.index = index
        self.queue: "queue.Queue[Any]" = queue.Queue(maxsize=pool.backlog)
        self.proc: Optional[multiprocessing.process.BaseProcess] = None
        self.job_w = -1
        self.result_r = -1
        self.restarts = 0
        self.retries = 0
        self.dispatched = 0
        self.errors = 0
        self.dead = False  # restart budget exhausted: shard answers errors
        #: Mirror of the shard's design state -- ``{name: (files, options,
        #: kind)}`` where ``kind`` is ``"lang"`` (``open_design``) or
        #: ``"ir"`` (``open_ir_design``) -- maintained from successful
        #: mutations, replayed on respawn through the matching open method.
        self.designs: dict[str, tuple[dict[str, str], Optional[dict], str]] = {}
        self.thread = threading.Thread(
            target=self._run, name=f"tydi-pool-{index}", daemon=True
        )

    # -- process lifecycle (dispatcher thread only, after start) ---------------

    def spawn(self) -> None:
        job_r, job_w = os.pipe()
        result_r, result_w = os.pipe()
        # Fork copies the whole fd table, so the child starts by closing
        # every pipe end it must not hold: its own parent-side ends and
        # every sibling's ends.  Without this, the parent closing a job
        # pipe is never the last write end (no EOF = no drain) and a
        # crashed sibling's result pipe never EOFs (no crash detection).
        close_in_child = (job_w, result_r) + self.pool.parent_side_fds(exclude=self.index)
        self.proc = self.pool.ctx.Process(
            target=worker_main,
            args=(self.index, job_r, result_w, self.pool.worker_config, close_in_child),
            name=f"tydi-worker-{self.index}",
            daemon=True,
        )
        self.proc.start()
        os.close(job_r)
        os.close(result_w)
        self.job_w = job_w
        self.result_r = result_r

    def start(self) -> None:
        self.spawn()
        self.thread.start()

    def _close_pipes(self) -> None:
        for fd in (self.job_w, self.result_r):
            if fd >= 0:
                try:
                    os.close(fd)
                except OSError:
                    pass
        self.job_w = self.result_r = -1

    def _reap(self) -> None:
        """Put a crashed/old worker process fully to rest."""
        self._close_pipes()
        proc = self.proc
        if proc is not None:
            proc.join(timeout=1.0)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.kill()
                proc.join(timeout=5.0)
        self.proc = None

    # -- the dispatcher loop ---------------------------------------------------

    def _run(self) -> None:
        while True:
            item = self.queue.get()
            if item is _EXIT:
                self._graceful_exit()
                return
            if isinstance(item, _Control):
                self._do_control(item)
            else:
                self._do_job(item)

    def _graceful_exit(self) -> None:
        proc = self.proc
        if self.job_w >= 0:
            try:
                os.close(self.job_w)  # EOF: the worker drains and exits
            except OSError:
                pass
            self.job_w = -1
        if proc is not None:
            proc.join(timeout=self.pool.drain_join_timeout)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.kill()
                proc.join(timeout=5.0)
        self._close_pipes()
        self.proc = None

    def _exchange(self, frame: tuple) -> Optional[tuple]:
        """One frame out, one frame in; ``None`` means the worker died."""
        try:
            write_frame(self.job_w, frame)
            return read_frame(self.result_r)
        except (OSError, ValueError):
            return None

    def _do_control(self, control: _Control) -> None:
        if self.dead:
            control.future.set_result(None)
            return
        reply = self._exchange((control.kind, control.token))
        if reply is None or reply[0] not in (control.kind, "pong"):
            # Controls are best-effort observability: never burn a restart
            # on them, just report the gap and let the next job respawn.
            control.future.set_result(None)
            return
        control.future.set_result(reply[2])

    def _do_job(self, job: _PoolJob) -> None:
        if self.dead:
            job.future.set_result(self._dead_envelope(job))
            return
        self.dispatched += 1
        request = {"id": job.request_id, "method": job.method, "params": job.params}
        for attempt in (1, 2):
            reply = self._exchange(("job", job.job_id, request))
            if (
                reply is not None
                and reply[0] == "result"
                and reply[1] == job.job_id
            ):
                envelope = reply[2]
                if envelope.get("ok"):
                    self._mirror(job.method, job.params)
                else:
                    self.errors += 1
                job.future.set_result(envelope)
                return
            # The worker died under this job (or desynced, which gets the
            # same treatment: a fresh process with replayed state).
            if not self._respawn_and_replay():
                job.future.set_result(self._dead_envelope(job))
                return
            if attempt == 1:
                self.retries += 1
        self.errors += 1
        job.future.set_result(
            protocol.error_envelope(
                job.request_id,
                TydiServerError(
                    f"worker {self.index} crashed twice while serving "
                    f"{job.method!r}; giving up on this request (the worker "
                    f"was restarted and its designs replayed)"
                ),
            )
        )

    def _dead_envelope(self, job: _PoolJob) -> dict:
        self.errors += 1
        return protocol.error_envelope(
            job.request_id,
            TydiServerError(
                f"worker {self.index} exceeded its restart budget "
                f"({self.pool.restart_budget} restarts) and is out of service; "
                f"restart the daemon"
            ),
        )

    def _respawn_and_replay(self) -> bool:
        """Fork a replacement and replay the shard's designs into it.

        Returns ``False`` once the restart budget is exhausted (the shard
        then answers every job with a structured error instead of fork-
        bombing on a systemic failure).
        """
        while True:
            self._reap()
            if self.restarts >= self.pool.restart_budget:
                self.dead = True
                return False
            self.restarts += 1
            self.pool.note_restart()
            self.spawn()
            if self._replay():
                return True

    def _replay(self) -> bool:
        """Re-open every mirrored design in a fresh worker (FIFO, awaited)."""
        for name, (files, options, kind) in self.designs.items():
            params: dict[str, Any] = {"design": name, "replace": True}
            if kind == "ir":
                if not files:  # document removed: nothing to replay
                    continue
                method = "open_ir_design"
                params["text"] = next(iter(files.values()))
            else:
                method = "open_design"
                params["files"] = files
            if options is not None:
                params["options"] = options
            request = {"id": None, "method": method, "params": params}
            reply = self._exchange(("job", -1, request))
            if reply is None:
                return False  # died during replay: caller loops on budget
        return True

    def _mirror(self, method: str, params: Mapping[str, Any]) -> None:
        """Fold one *successful* mutation into the shard's design mirror."""
        design = params.get("design")
        if not isinstance(design, str):
            return
        if method == "open_design":
            files = params.get("files", {})
            try:
                from repro.lang.compile import normalize_sources

                normalized = normalize_sources(files)
            except Exception:  # pragma: no cover - worker accepted it
                return
            options = params.get("options")
            self.designs[design] = (
                {filename: text for text, filename in normalized},
                dict(options) if isinstance(options, Mapping) else None,
                "lang",
            )
        elif method == "open_ir_design":
            options = params.get("options")
            self.designs[design] = (
                {f"{design}.tir": str(params.get("text", ""))},
                dict(options) if isinstance(options, Mapping) else None,
                "ir",
            )
        elif method == "update_file":
            entry = self.designs.get(design)
            if entry is not None:
                entry[0][str(params.get("filename"))] = str(params.get("text"))
        elif method == "remove_file":
            entry = self.designs.get(design)
            if entry is not None:
                entry[0].pop(params.get("filename"), None)
        elif method == "remove_design":
            self.designs.pop(design, None)

    # -- observability (any thread; racy int reads are fine) -------------------

    def snapshot(self) -> dict[str, Any]:
        proc = self.proc
        return {
            "worker": self.index,
            "pid": proc.pid if proc is not None else None,
            "alive": bool(proc is not None and proc.is_alive()) and not self.dead,
            "designs": len(self.designs),
            "queue_depth": self.queue.qsize(),
            "dispatched": self.dispatched,
            "errors": self.errors,
            "retries": self.retries,
            "restarts": self.restarts,
        }


class WorkerPool:
    """N forked compile workers with design sharding and a drain lifecycle.

    Parameters
    ----------
    workers:
        Process count (>= 1).
    cache_dir / max_cache_mb / remote_cache / options:
        Workspace wiring handed to every worker (one shared on-disk cache,
        private in-memory tiers; ``remote_cache`` is an endpoint *string*,
        so each worker dials its own connection to the parent's shared
        remote tier after the fork).
    backlog:
        Bounded per-worker queue depth; a full queue rejects submits with
        :class:`~repro.errors.TydiBackpressureError`.
    restart_budget:
        Crash respawns allowed *per worker* before its shard is declared
        out of service.
    """

    def __init__(
        self,
        workers: int,
        *,
        cache_dir: Optional[str] = None,
        max_cache_mb: Optional[float] = None,
        remote_cache: Optional[str] = None,
        options: Optional[Mapping[str, object]] = None,
        parse_jobs: Optional[int] = None,
        backlog: int = 64,
        restart_budget: int = 3,
        drain_join_timeout: float = 30.0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if backlog < 1:
            raise ValueError(f"backlog must be >= 1, got {backlog}")
        if not fork_available():
            raise TydiServerError(
                "the worker pool requires the 'fork' start method (not "
                "available on this platform); run with --workers 0"
            )
        self.ctx = multiprocessing.get_context("fork")
        self.backlog = backlog
        self.restart_budget = restart_budget
        self.drain_join_timeout = drain_join_timeout
        self.worker_config: dict[str, Any] = {
            "cache_dir": cache_dir,
            "max_cache_mb": max_cache_mb,
            "remote_cache": remote_cache,
            "options": dict(options) if options is not None else None,
            "parse_jobs": parse_jobs,
        }
        self._lock = threading.Lock()
        self._next_job_id = 0
        self._total_restarts = 0
        self._draining = False
        self._drained = False
        # Parse the stdlib *before* the first fork: every worker inherits
        # the warm AST through copy-on-write pages.
        warm_stdlib()
        self.workers = [_Worker(self, index) for index in range(workers)]
        for worker in self.workers:
            worker.start()

    # -- intake ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.workers)

    def shard_of(self, design: str) -> int:
        return shard_for(design, len(self.workers))

    def parent_side_fds(self, *, exclude: int) -> tuple[int, ...]:
        """Every other worker's parent-side pipe fds (for a fork to close).

        A racy snapshot is fine: a stale fd number is either closed in the
        child already (EBADF, ignored) or refers to a sibling's freshly
        respawned pipe -- which the child must close anyway.
        """
        fds: list[int] = []
        for worker in self.workers:
            if worker.index == exclude:
                continue
            for fd in (worker.job_w, worker.result_r):
                if fd >= 0:
                    fds.append(fd)
        return tuple(fds)

    def submit(self, method: str, params: Mapping[str, Any], request_id: Any = None):
        """Queue one design-addressed request; returns a ``Future[envelope]``.

        Raises :class:`~repro.errors.TydiDrainingError` once draining and
        :class:`~repro.errors.TydiBackpressureError` when the target
        worker's queue is full -- both *before* any state changes.
        """
        if self._draining:
            raise TydiDrainingError(
                f"service is draining for shutdown; {method!r} rejected "
                f"(in-flight requests are completing)"
            )
        design = params.get("design")
        shard = self.shard_of(design) if isinstance(design, str) and design else 0
        worker = self.workers[shard]
        with self._lock:
            self._next_job_id += 1
            job = _PoolJob(self._next_job_id, request_id, method, dict(params))
        try:
            worker.queue.put_nowait(job)
        except queue.Full:
            raise TydiBackpressureError(
                f"worker {shard} has {self.backlog} jobs queued (bounded "
                f"backlog); back off and retry {method!r}"
            ) from None
        return job.future

    # -- observability ---------------------------------------------------------

    def note_restart(self) -> None:
        with self._lock:
            self._total_restarts += 1

    @property
    def total_restarts(self) -> int:
        with self._lock:
            return self._total_restarts

    @property
    def draining(self) -> bool:
        return self._draining

    def stats(self, *, include_workspaces: bool = True, timeout: float = 10.0) -> dict[str, Any]:
        """Pool counters plus (optionally) each worker's workspace stats."""
        payload: dict[str, Any] = {
            "workers": len(self.workers),
            "backlog": self.backlog,
            "restart_budget": self.restart_budget,
            "restarts": self.total_restarts,
            "draining": self._draining,
            "per_worker": [worker.snapshot() for worker in self.workers],
        }
        if include_workspaces and not self._draining:
            workspaces = self._collect("stats", timeout=timeout)
            for entry, workspace_stats in zip(payload["per_worker"], workspaces):
                entry["workspace"] = workspace_stats
        return payload

    def report(self, *, timeout: float = 10.0) -> dict[str, Any]:
        """Aggregated ``get_report``: merged designs plus per-worker reports."""
        reports = self._collect("report", timeout=timeout)
        merged_designs: dict[str, Any] = {}
        per_worker: dict[str, Any] = {}
        for worker, report in zip(self.workers, reports):
            if report is None:
                per_worker[str(worker.index)] = None
                continue
            per_worker[str(worker.index)] = report
            designs = report.get("designs")
            if isinstance(designs, Mapping):
                merged_designs.update(designs)
        return {"designs": merged_designs, "workers": per_worker}

    def _collect(self, kind: str, *, timeout: float) -> list[Optional[dict]]:
        controls: list[Optional[_Control]] = []
        for worker in self.workers:
            with self._lock:
                self._next_job_id += 1
                control = _Control(kind, self._next_job_id)
            try:
                worker.queue.put(control, timeout=1.0)
                controls.append(control)
            except queue.Full:
                controls.append(None)
        results: list[Optional[dict]] = []
        for control in controls:
            if control is None:
                results.append(None)
                continue
            try:
                results.append(control.future.result(timeout=timeout))
            except Exception:
                results.append(None)
        return results

    # -- lifecycle -------------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: finish queued jobs, EOF and join every worker.

        Idempotent.  Returns ``True`` when every dispatcher wound down in
        time.  New submits are rejected the moment draining starts.
        """
        with self._lock:
            if self._drained:
                return True
            first = not self._draining
            self._draining = True
        if first:
            for worker in self.workers:
                worker.queue.put(_EXIT)  # behind all queued jobs: FIFO drain
        deadline = None if timeout is None else (timeout / max(1, len(self.workers)))
        clean = True
        for worker in self.workers:
            worker.thread.join(timeout=deadline)
            if worker.thread.is_alive():
                clean = False
        if clean:
            with self._lock:
                self._drained = True
        return clean

    def close(self) -> None:
        self.drain(timeout=self.drain_join_timeout)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
