"""The per-process worker loop of the compile worker pool, and its framing.

One worker process owns one :class:`~repro.workspace.Workspace` (the warm
shard memory: its parse/evaluate/backend stage tiers and per-design memos
serve every design hashed onto this shard) wrapped in a ``workers=0``
:class:`~repro.server.service.CompileService`, and speaks a
**length-prefixed pickle** protocol over two inherited pipe file
descriptors -- jobs in, results out:

* frame    = ``!Q`` big-endian payload length + ``pickle`` payload
* parent -> worker: ``("job", job_id, request_dict)`` |
  ``("stats", token)`` | ``("report", token)`` | ``("ping", token)`` |
  EOF (close) = drain and exit
* worker -> parent: ``("result", job_id, envelope)`` |
  ``("stats"|"report", token, payload)`` | ``("pong", token, pid)``

The worker is strictly serial (one job at a time, FIFO), which is what
makes the pool protocol trivial: the parent's per-worker dispatcher thread
writes one frame and reads one frame; a short read means the worker died
mid-job.  All request semantics -- validation, did-you-mean errors,
structured :class:`~repro.errors.TydiError` envelopes -- come from the
same :meth:`CompileService.dispatch` code path the in-process server uses,
so pooled and threaded serving are differentially identical
(``tests/test_pool.py``).

Workers are forked *after* the parent warmed the stdlib parse (see
:func:`repro.server.pool.warm_stdlib`), so every worker starts with the
~200-line stdlib AST already in memory instead of paying the ~60ms parse
on its first job.
"""

from __future__ import annotations

import os
import pickle
import signal
import struct
import sys
from typing import Any, Mapping, Optional, Sequence

#: Frame header: one unsigned 64-bit big-endian payload length.
FRAME_HEADER = struct.Struct("!Q")

#: Sanity bound on one frame (a corrupt header must not trigger a
#: multi-gigabyte allocation; real envelopes are bounded by the NDJSON
#: protocol's 64 MiB line limit well before this).
MAX_FRAME_BYTES = 256 * 1024 * 1024


def write_frame(fd: int, obj: Any) -> None:
    """Write one length-prefixed pickle frame to a pipe fd."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise ValueError(f"frame of {len(payload)} bytes exceeds the pool bound")
    data = FRAME_HEADER.pack(len(payload)) + payload
    view = memoryview(data)
    while view:
        written = os.write(fd, view)
        view = view[written:]


def read_frame(fd: int) -> Optional[Any]:
    """Read one frame; ``None`` on EOF or a truncated frame (peer died)."""
    header = _read_exactly(fd, FRAME_HEADER.size)
    if header is None:
        return None
    (length,) = FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ValueError(f"frame header claims {length} bytes (corrupt stream?)")
    payload = _read_exactly(fd, length)
    if payload is None:
        return None
    return pickle.loads(payload)


def _read_exactly(fd: int, length: int) -> Optional[bytes]:
    chunks = []
    remaining = length
    while remaining:
        try:
            chunk = os.read(fd, remaining)
        except OSError:
            return None
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def worker_main(
    index: int,
    job_fd: int,
    result_fd: int,
    config: Mapping[str, Any],
    close_fds: Sequence[int] = (),
) -> None:
    """The worker process entry point: serve frames until EOF.

    ``config`` carries the workspace wiring (``cache_dir`` /
    ``max_cache_mb`` / ``options``) shared by every worker -- the on-disk
    cache tiers are multi-process safe (atomic writes), so workers sharing
    one ``cache_dir`` share cold artefacts while keeping their in-memory
    tiers private to their shard.

    ``close_fds`` lists pipe fds this fork inherited but must not hold:
    its own copies of the parent-side ends, and every *other* worker's
    pipe ends (a fork copies the whole fd table).  Closing them is what
    makes EOF semantics work -- the parent closing a job pipe must be the
    *last* open write end, or drain never reaches the worker; a crashed
    worker's result pipe must EOF in the parent, or crashes go undetected.
    """
    for fd in close_fds:
        try:
            os.close(fd)
        except OSError:
            pass  # already closed, or a stale snapshot entry: both fine
    # The parent owns lifecycle: Ctrl-C to the process group must not kill
    # workers mid-drain (the parent closes the job pipe instead).
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass

    from repro.server.service import CompileService
    from repro.workspace import Workspace

    # remote_cache travels as an endpoint string: the client (socket +
    # writer thread) must be created here, after the fork, never inherited.
    workspace = Workspace(
        cache_dir=config.get("cache_dir"),
        max_cache_mb=config.get("max_cache_mb"),
        remote_cache=config.get("remote_cache"),
        options=config.get("options"),
        label=f"worker-{index}",
    )
    service = CompileService(
        workspace=workspace, jobs=1, parse_jobs=config.get("parse_jobs")
    )
    try:
        while True:
            message = read_frame(job_fd)
            if message is None:
                break  # parent closed the pipe (drain) or vanished
            kind = message[0]
            if kind == "job":
                _, job_id, request = message
                envelope = service.dispatch(request)
                write_frame(result_fd, ("result", job_id, envelope))
            elif kind == "stats":
                write_frame(result_fd, ("stats", message[1], workspace.stats()))
            elif kind == "report":
                write_frame(result_fd, ("report", message[1], workspace.report()))
            elif kind == "ping":
                write_frame(result_fd, ("pong", message[1], os.getpid()))
            elif kind == "exit":
                break
            # Unknown kinds are skipped (a newer parent speaking to an
            # older worker fails loudly elsewhere; never crash the shard).
    except (BrokenPipeError, KeyboardInterrupt):  # pragma: no cover
        pass
    finally:
        service.close()
        try:
            os.close(result_fd)
        except OSError:  # pragma: no cover - already closed
            pass
    sys.exit(0)
