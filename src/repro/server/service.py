"""The transport-agnostic compile service: JSON requests onto one Workspace.

:class:`CompileService` is the asyncio core of the compile daemon.  It owns
exactly one :class:`~repro.workspace.Workspace` -- the shared warm memory
every client benefits from: the whole-result cache, the per-stage parse /
evaluate / backend tiers and the per-design memos all live in that single
session, so a design one client compiled is a cache hit for every other
client (and for the next `tydi-serve` run, when the workspace is built over
a ``cache_dir``).

Concurrency model
-----------------

Every workspace-touching request runs in a bounded
:class:`~concurrent.futures.ThreadPoolExecutor` via
``loop.run_in_executor`` -- the event loop itself never blocks, so slow
compiles never stall connection handling or quick requests.  Inside the
pool, the workspace's per-design locks do the scheduling: requests for
*different* designs compile fully in parallel (up to ``jobs`` pool
threads), while concurrent requests for the *same* design coalesce on its
lock -- the first computes, the rest are served the memo the moment the
lock frees.  ``jobs`` therefore bounds compile parallelism exactly like
``tydi-compile --jobs`` bounds the batch driver.

Requests and responses are plain dicts in the shape documented by
:mod:`repro.server.protocol`; transports only frame and shuttle them.
Failures never escape :meth:`handle` -- every exception becomes a
structured error envelope carrying the :class:`~repro.errors.TydiError`
stage and rendering.
"""

from __future__ import annotations

import asyncio
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Mapping, Optional

from repro.server import protocol
from repro.workspace import Workspace


def default_jobs() -> int:
    """Default compile-pool width: the CPU count, bounded to stay polite."""
    return max(1, min(8, os.cpu_count() or 1))


class CompileService:
    """Maps JSON requests onto one shared :class:`~repro.workspace.Workspace`.

    Parameters
    ----------
    workspace:
        The session to serve.  Omit it to have the service build one from
        ``cache_dir`` / ``max_cache_mb`` / ``options`` (the same trio
        ``tydi-compile`` exposes), so a served session and a CLI session
        share on-disk artefacts.
    jobs:
        Width of the compile thread pool (default: CPU count, capped at 8).
    """

    def __init__(
        self,
        workspace: Optional[Workspace] = None,
        *,
        jobs: Optional[int] = None,
        cache_dir: Optional[str] = None,
        max_cache_mb: Optional[float] = None,
        options: Optional[Mapping[str, object]] = None,
    ) -> None:
        if workspace is None:
            workspace = Workspace(
                cache_dir=cache_dir, max_cache_mb=max_cache_mb, options=options
            )
        elif cache_dir is not None or max_cache_mb is not None:
            raise ValueError(
                "pass either an existing workspace= or cache_dir=/max_cache_mb=, not both"
            )
        self.workspace = workspace
        self.jobs = jobs if jobs is not None else default_jobs()
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        self._executor = ThreadPoolExecutor(
            max_workers=self.jobs, thread_name_prefix="tydi-serve"
        )
        #: Set once a ``shutdown`` request was handled; transports watch it
        #: (thread-safe: the CLI's signal handler may also set it).
        self.shutdown_requested = threading.Event()
        self._counters_lock = threading.Lock()
        self._requests = 0
        self._errors = 0
        self._in_flight = 0
        self._max_in_flight = 0
        self._method_counts: dict[str, int] = {}
        self._closed = False

    # -- the request entry point ----------------------------------------------

    async def handle(self, message: Any) -> dict[str, Any]:
        """One decoded request document in, one response envelope out.

        Never raises: malformed envelopes, unknown methods, bad parameters
        and compile failures all come back as error envelopes.
        """
        try:
            request_id, method, params = protocol.parse_request(message)
        except Exception as exc:
            self._count(None, ok=False)
            return protocol.error_envelope(protocol.recover_request_id(message), exc)
        self._enter_request()
        try:
            handler = self._METHODS.get(method)
            if handler is None:
                raise protocol.unknown_method_error(method, self.methods())
            spec_params, in_executor = self._SIGNATURES[method]
            protocol.unknown_params_check(params, spec_params, method)
            if in_executor:
                loop = asyncio.get_running_loop()
                result = await loop.run_in_executor(
                    self._executor, lambda: handler(self, params)
                )
            else:
                result = handler(self, params)
        except Exception as exc:
            self._count(method, ok=False)
            return protocol.error_envelope(request_id, exc)
        finally:
            self._exit_request()
        self._count(method, ok=True)
        return protocol.success_envelope(request_id, result)

    def handle_sync(self, message: Any) -> dict[str, Any]:
        """Blocking :meth:`handle` for transports/tests without a loop."""
        return asyncio.run(self.handle(message))

    @classmethod
    def methods(cls) -> list[str]:
        """Every request method name, sorted (``ping`` reports these)."""
        return sorted(cls._METHODS)

    def close(self) -> None:
        """Release the compile pool (idempotent; pending compiles finish)."""
        if not self._closed:
            self._closed = True
            self._executor.shutdown(wait=True)

    # -- method handlers -------------------------------------------------------
    # Each takes the validated params dict and returns the JSON-ready result
    # payload; they run on compile-pool threads (except the pure ones) so
    # they are free to block on workspace locks.

    def _ping(self, params: Mapping[str, Any]) -> dict[str, Any]:
        import repro

        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "version": repro.__version__,
            "methods": self.methods(),
            "jobs": self.jobs,
        }

    def _open_design(self, params: Mapping[str, Any]) -> dict[str, Any]:
        name = protocol.require_param(params, "design", str, "open_design")
        files = params.get("files", {})
        if not isinstance(files, (Mapping, list)):
            from repro.errors import TydiServerError

            raise TydiServerError(
                f"open_design: 'files' must be a JSON object or array, "
                f"got {type(files).__name__}"
            )
        options = protocol.coerce_options(params.get("options"), "open_design")
        replace = bool(params.get("replace", True))
        self.workspace.add_design(name, files, options, replace=replace)
        return {
            "design": name,
            "files": sorted(self.workspace.files(name)),
            "fingerprint": self.workspace.fingerprint(name),
        }

    def _update_file(self, params: Mapping[str, Any]) -> dict[str, Any]:
        design = protocol.require_param(params, "design", str, "update_file")
        filename = protocol.require_param(params, "filename", str, "update_file")
        text = protocol.require_param(params, "text", str, "update_file")
        self.workspace.update_file(design, filename, text)
        return {
            "design": design,
            "filename": filename,
            "fingerprint": self.workspace.fingerprint(design),
            "fresh": self.workspace.is_fresh(design),
        }

    def _remove_file(self, params: Mapping[str, Any]) -> dict[str, Any]:
        design = protocol.require_param(params, "design", str, "remove_file")
        filename = protocol.require_param(params, "filename", str, "remove_file")
        self.workspace.remove_file(design, filename)
        return {
            "design": design,
            "filename": filename,
            "fingerprint": self.workspace.fingerprint(design),
        }

    def _remove_design(self, params: Mapping[str, Any]) -> dict[str, Any]:
        design = protocol.require_param(params, "design", str, "remove_design")
        self.workspace.remove_design(design)
        return {"design": design, "removed": True}

    def _get_ir(self, params: Mapping[str, Any]) -> dict[str, Any]:
        design = protocol.require_param(params, "design", str, "get_ir")
        ir = self.workspace.ir(design)
        return {
            "design": design,
            "ir": ir,
            "fingerprint": self.workspace.fingerprint(design),
        }

    def _get_outputs(self, params: Mapping[str, Any]) -> dict[str, Any]:
        design = protocol.require_param(params, "design", str, "get_outputs")
        target = protocol.require_param(params, "target", str, "get_outputs")
        files = self.workspace.outputs(design, target)
        return {"design": design, "target": target, "files": dict(files)}

    def _get_diagnostics(self, params: Mapping[str, Any]) -> dict[str, Any]:
        design = protocol.require_param(params, "design", str, "get_diagnostics")
        sink = self.workspace.diagnostics(design)
        return {
            "design": design,
            "diagnostics": [
                {
                    "severity": diag.severity,
                    "stage": diag.stage,
                    "message": diag.message,
                    "span": str(diag.span) if diag.span is not None else None,
                }
                for diag in sink
            ],
        }

    def _get_report(self, params: Mapping[str, Any]) -> dict[str, Any]:
        return dict(self.workspace.report())

    def _list_backends(self, params: Mapping[str, Any]) -> dict[str, Any]:
        from repro.backends import available_backends, backend_class

        return {
            "backends": [
                {"name": name, "description": backend_class(name).description}
                for name in available_backends()
            ]
        }

    def _stats(self, params: Mapping[str, Any]) -> dict[str, Any]:
        with self._counters_lock:
            server = {
                "requests": self._requests,
                "errors": self._errors,
                "in_flight": self._in_flight,
                "max_in_flight": self._max_in_flight,
                "methods": dict(sorted(self._method_counts.items())),
                "jobs": self.jobs,
            }
        return {"server": server, "workspace": self.workspace.stats()}

    def _shutdown(self, params: Mapping[str, Any]) -> dict[str, Any]:
        self.shutdown_requested.set()
        return {"stopping": True}

    # -- accounting ------------------------------------------------------------

    def _count(self, method: Optional[str], *, ok: bool) -> None:
        with self._counters_lock:
            self._requests += 1
            if not ok:
                self._errors += 1
            if method is not None:
                # Only known names get their own bucket: arbitrary strings
                # from misbehaving peers must not grow the dict (or the
                # stats payload) without bound in a long-lived daemon.
                key = method if method in self._METHODS else "<unknown>"
                self._method_counts[key] = self._method_counts.get(key, 0) + 1

    def _enter_request(self) -> None:
        with self._counters_lock:
            self._in_flight += 1
            self._max_in_flight = max(self._max_in_flight, self._in_flight)

    def _exit_request(self) -> None:
        with self._counters_lock:
            self._in_flight -= 1

    #: method name -> handler.  The parallel signature table records the
    #: allowed parameter names and whether the handler must run on a
    #: compile-pool thread (everything that can touch a workspace or design
    #: lock does; the pure introspection methods answer inline).
    _METHODS = {
        "ping": _ping,
        "open_design": _open_design,
        "update_file": _update_file,
        "remove_file": _remove_file,
        "remove_design": _remove_design,
        "get_ir": _get_ir,
        "get_outputs": _get_outputs,
        "get_diagnostics": _get_diagnostics,
        "get_report": _get_report,
        "list_backends": _list_backends,
        "stats": _stats,
        "shutdown": _shutdown,
    }

    _SIGNATURES: dict[str, tuple[tuple[str, ...], bool]] = {
        "ping": ((), False),
        "open_design": (("design", "files", "options", "replace"), True),
        "update_file": (("design", "filename", "text"), True),
        "remove_file": (("design", "filename"), True),
        "remove_design": (("design",), True),
        "get_ir": (("design",), True),
        "get_outputs": (("design", "target"), True),
        "get_diagnostics": (("design",), True),
        "get_report": ((), True),
        "list_backends": ((), False),
        "stats": ((), True),
        "shutdown": ((), False),
    }
