"""The transport-agnostic compile service: JSON requests onto warm compile state.

:class:`CompileService` is the core of the compile daemon.  It has two
execution modes behind one request surface:

* ``workers=0`` (default): one shared :class:`~repro.workspace.Workspace`
  -- the whole-result cache, the per-stage parse / evaluate / backend
  tiers and the per-design memos all live in one session -- with every
  workspace-touching request running in a bounded
  :class:`~concurrent.futures.ThreadPoolExecutor`.  Inside the pool the
  workspace's per-design locks do the scheduling: different designs
  compile in parallel (up to ``jobs`` threads, GIL permitting), same-
  design requests coalesce on the design lock.
* ``workers=N`` (N >= 1): a **multi-process**
  :class:`~repro.server.pool.WorkerPool` -- N forked workers, each owning
  the shard of designs that hashes to it, so pure-Python compile work
  escapes the GIL and each worker's in-memory caches stay hot for its
  shard.  Design-addressed methods route to the owning worker; ``ping`` /
  ``stats`` / ``list_backends`` are answered by the parent, with ``stats``
  aggregating per-worker counters, queue depths and restart totals.

Both modes share the drain lifecycle: a ``shutdown`` request marks the
service *draining* (new work is rejected with a structured
:class:`~repro.errors.TydiDrainingError` envelope), waits for every
in-flight request to complete -- so no response is ever dropped by the
transport winding down -- then drains the worker pool (if any) and only
then signals the transport to stop.

Requests and responses are plain dicts in the shape documented by
:mod:`repro.server.protocol`; transports only frame and shuttle them.
Failures never escape :meth:`handle` -- every exception becomes a
structured error envelope carrying the :class:`~repro.errors.TydiError`
stage and rendering.  Per-method latency histograms
(:mod:`repro.server.metrics`) are recorded around the full dispatch,
queueing included, and surfaced by ``stats``.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Mapping, Optional

from repro.errors import TydiDrainingError
from repro.server import protocol
from repro.server.metrics import MethodMetrics
from repro.server.pool import POOLED_METHODS, WorkerPool
from repro.workspace import Workspace


def default_jobs() -> int:
    """Default compile-pool width: the CPU count, bounded to stay polite."""
    return max(1, min(8, os.cpu_count() or 1))


class _Watch:
    """One ``watch_design`` subscription: a design name, an optional
    simulation plan (wire form), and the transport's delivery callback.

    ``last_sim`` remembers the previous simulation outcome (a canonical
    JSON string) so notifications can report *deltas*: the full report is
    pushed only when it changed since the last push to this watcher.
    """

    __slots__ = ("token", "design", "plan", "deliver", "last_sim")

    def __init__(self, token: int, design: str, plan: Optional[dict], deliver) -> None:
        self.token = token
        self.design = design
        self.plan = plan
        self.deliver = deliver
        self.last_sim: Optional[str] = None


class CompileService:
    """Maps JSON requests onto warm compile state (threaded or multi-process).

    Parameters
    ----------
    workspace:
        The session to serve (``workers=0`` only).  Omit it to have the
        service build one from ``cache_dir`` / ``max_cache_mb`` /
        ``remote_cache`` / ``options`` (the same knobs ``tydi-compile``
        exposes), so a served session and a CLI session share on-disk
        artefacts -- and, with a remote endpoint, the fleet-wide L2.
    jobs:
        Width of the compile thread pool (default: CPU count, capped at 8).
    workers:
        Forked compile worker processes.  ``0`` (default) keeps the
        in-process thread path; ``N >= 1`` builds a
        :class:`~repro.server.pool.WorkerPool` with design sharding --
        ``workspace=`` must then be omitted (each worker owns its own).
    drain_timeout:
        Upper bound on waiting for in-flight requests during shutdown.
    backlog / restart_budget:
        Pool tuning: bounded per-worker queue depth, and crash respawns
        allowed per worker (see :class:`~repro.server.pool.WorkerPool`).
    """

    def __init__(
        self,
        workspace: Optional[Workspace] = None,
        *,
        jobs: Optional[int] = None,
        workers: Optional[int] = None,
        cache_dir: Optional[str] = None,
        max_cache_mb: Optional[float] = None,
        remote_cache: Optional[str] = None,
        options: Optional[Mapping[str, object]] = None,
        parse_jobs: Optional[int] = None,
        drain_timeout: float = 30.0,
        backlog: int = 64,
        restart_budget: int = 3,
    ) -> None:
        self.workers = int(workers) if workers else 0
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.parse_jobs = parse_jobs
        if self.parse_jobs is not None and self.parse_jobs < 1:
            raise ValueError(f"parse_jobs must be >= 1, got {parse_jobs}")
        self.pool: Optional[WorkerPool] = None
        if self.workers:
            if workspace is not None:
                raise ValueError(
                    "workers >= 1 gives every worker its own workspace; "
                    "pass cache_dir=/options= instead of workspace="
                )
            self.pool = WorkerPool(
                self.workers,
                cache_dir=cache_dir,
                max_cache_mb=max_cache_mb,
                remote_cache=remote_cache,
                options=options,
                parse_jobs=parse_jobs,
                backlog=backlog,
                restart_budget=restart_budget,
            )
            self.workspace = None
        else:
            if workspace is None:
                workspace = Workspace(
                    cache_dir=cache_dir,
                    max_cache_mb=max_cache_mb,
                    remote_cache=remote_cache,
                    options=options,
                )
            elif cache_dir is not None or max_cache_mb is not None or remote_cache is not None:
                raise ValueError(
                    "pass either an existing workspace= or "
                    "cache_dir=/max_cache_mb=/remote_cache=, not both"
                )
            self.workspace = workspace
        self.jobs = jobs if jobs is not None else default_jobs()
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        self.drain_timeout = drain_timeout
        self._executor = ThreadPoolExecutor(
            max_workers=self.jobs, thread_name_prefix="tydi-serve"
        )
        #: Set once shutdown has fully drained; transports watch it
        #: (thread-safe: the CLI's signal handler may also set it).
        self.shutdown_requested = threading.Event()
        #: Set the moment a shutdown request is parsed: new work is
        #: rejected while in-flight requests finish.
        self.draining = threading.Event()
        self._drain_lock = threading.Lock()
        self._drain_result: Optional[bool] = None
        self.metrics = MethodMetrics(tuple(self._METHODS) + ("<unknown>",))
        self._counters_lock = threading.Lock()
        self._requests = 0
        self._errors = 0
        self._in_flight = 0
        self._max_in_flight = 0
        self._shutdowns_in_flight = 0
        self._method_counts: dict[str, int] = {}
        self._closed = False
        # watch_design subscriptions: token -> _Watch.  Registered by the
        # NDJSON transport (which owns the delivery callbacks) and notified
        # from _handle_parsed after each successful update_file.
        self._watch_lock = threading.Lock()
        self._watches: dict[int, _Watch] = {}
        self._next_watch_token = 0
        self._notify_tasks: set["asyncio.Task[None]"] = set()

    # -- the request entry points ----------------------------------------------

    async def handle(self, message: Any) -> dict[str, Any]:
        """One decoded request document in, one response envelope out.

        Never raises: malformed envelopes, unknown methods, bad parameters
        and compile failures all come back as error envelopes.
        """
        start = time.perf_counter()
        try:
            request_id, method, params = protocol.parse_request(message)
        except Exception as exc:
            self._count(None, ok=False)
            self.metrics.record(None, time.perf_counter() - start, ok=False)
            return protocol.error_envelope(protocol.recover_request_id(message), exc)
        envelope = await self._handle_parsed(request_id, method, params)
        ok = bool(envelope.get("ok"))
        self._count(method, ok=ok)
        self.metrics.record(method, time.perf_counter() - start, ok=ok)
        return envelope

    async def _handle_parsed(
        self, request_id: Any, method: str, params: dict[str, Any]
    ) -> dict[str, Any]:
        handler = self._METHODS.get(method)
        if handler is None:
            return protocol.error_envelope(
                request_id, protocol.unknown_method_error(method, self.methods())
            )
        try:
            protocol.unknown_params_check(params, self._SIGNATURES[method][0], method)
        except Exception as exc:
            return protocol.error_envelope(request_id, exc)
        if method == "shutdown":
            return await self._handle_shutdown(request_id)
        if self.draining.is_set() and method in self._DRAIN_REJECTED:
            return protocol.error_envelope(
                request_id,
                TydiDrainingError(
                    f"service is draining for shutdown; {method!r} rejected"
                ),
            )
        self._enter_request(method)
        try:
            if self.pool is not None and method in POOLED_METHODS:
                # The worker computes the full envelope (same dispatch code
                # as in-process serving) and already stamped the id.
                future = self.pool.submit(method, params, request_id)
                envelope = await asyncio.wrap_future(future)
            else:
                in_executor = self._SIGNATURES[method][1]
                if in_executor:
                    loop = asyncio.get_running_loop()
                    result = await loop.run_in_executor(
                        self._executor, lambda: handler(self, params)
                    )
                else:
                    result = handler(self, params)
                envelope = protocol.success_envelope(request_id, result)
        except Exception as exc:
            return protocol.error_envelope(request_id, exc)
        finally:
            self._exit_request(method)
        if method == "update_file" and envelope.get("ok"):
            self._schedule_watch_notify(params.get("design"))
        return envelope

    def handle_sync(self, message: Any) -> dict[str, Any]:
        """Blocking :meth:`handle` for transports/tests without a loop."""
        return asyncio.run(self.handle(message))

    def dispatch(self, message: Any) -> dict[str, Any]:
        """Synchronous inline :meth:`handle`: no executor, no pool routing.

        The execution primitive of the pool worker loop
        (:mod:`repro.server.worker`) -- one request document in, one
        envelope out, computed entirely on the calling thread, through the
        exact validation and handler code the async path uses.  Never
        raises.
        """
        try:
            request_id, method, params = protocol.parse_request(message)
        except Exception as exc:
            self._count(None, ok=False)
            return protocol.error_envelope(protocol.recover_request_id(message), exc)
        handler = self._METHODS.get(method)
        try:
            if handler is None:
                raise protocol.unknown_method_error(method, self.methods())
            protocol.unknown_params_check(params, self._SIGNATURES[method][0], method)
            result = handler(self, params)
        except Exception as exc:
            self._count(method, ok=False)
            return protocol.error_envelope(request_id, exc)
        self._count(method, ok=True)
        return protocol.success_envelope(request_id, result)

    @classmethod
    def methods(cls) -> list[str]:
        """Every request method name, sorted (``ping`` reports these)."""
        return sorted(cls._METHODS)

    def close(self) -> None:
        """Release workers and the compile pool (idempotent; pending work
        finishes -- the pool drains gracefully)."""
        if not self._closed:
            self._closed = True
            if self.pool is not None:
                self.pool.close()
            self._executor.shutdown(wait=True)

    def __enter__(self) -> "CompileService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- the drain path --------------------------------------------------------

    async def _handle_shutdown(self, request_id: Any) -> dict[str, Any]:
        """Drain, then stop: in-flight responses are never dropped.

        Sets :attr:`draining` immediately (new work is rejected), waits --
        off the event loop, and *not* on a compile-pool thread, so a full
        compile pool cannot deadlock the drain -- for every other
        in-flight request to complete, drains the worker pool, and only
        then sets :attr:`shutdown_requested` for the transport.
        """
        self._enter_request("shutdown")
        try:
            self.draining.set()
            loop = asyncio.get_running_loop()
            drained = await loop.run_in_executor(None, self._drain_blocking)
        finally:
            self._exit_request("shutdown")
        return protocol.success_envelope(
            request_id, {"stopping": True, "drained": bool(drained)}
        )

    def _drain_blocking(self) -> bool:
        with self._drain_lock:  # concurrent shutdowns share one drain
            if self._drain_result is None:
                deadline = time.monotonic() + self.drain_timeout
                drained = self._wait_for_idle(deadline)
                if self.pool is not None:
                    remaining = max(0.1, deadline - time.monotonic())
                    drained = self.pool.drain(timeout=remaining) and drained
                self._drain_result = drained
            result = self._drain_result
        self.shutdown_requested.set()
        return result

    def _wait_for_idle(self, deadline: float) -> bool:
        """Until every non-shutdown in-flight request has completed."""
        while True:
            with self._counters_lock:
                busy = self._in_flight - self._shutdowns_in_flight
            if busy <= 0:
                return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.005)

    # -- method handlers -------------------------------------------------------
    # Each takes the validated params dict and returns the JSON-ready result
    # payload; they run on compile-pool threads (except the pure ones) so
    # they are free to block on workspace locks.

    def _ping(self, params: Mapping[str, Any]) -> dict[str, Any]:
        import repro

        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "version": repro.__version__,
            "methods": self.methods(),
            "jobs": self.jobs,
            "workers": self.workers,
        }

    def _open_design(self, params: Mapping[str, Any]) -> dict[str, Any]:
        name = protocol.require_param(params, "design", str, "open_design")
        files = params.get("files", {})
        if not isinstance(files, (Mapping, list)):
            from repro.errors import TydiServerError

            raise TydiServerError(
                f"open_design: 'files' must be a JSON object or array, "
                f"got {type(files).__name__}"
            )
        options = protocol.coerce_options(params.get("options"), "open_design")
        replace = bool(params.get("replace", True))
        if self.parse_jobs and self.parse_jobs > 1:
            # --parse-jobs pre-warming on the server path: fan the opened
            # files' cold parses across a process pool so the design's
            # first compile finds the per-file AST tier warm.  Parse errors
            # are deliberately not raised here -- open_design stays lazy
            # and broken files surface through get_diagnostics as always.
            stages = getattr(self.workspace.cache, "stages", None)
            if stages is not None:
                try:
                    stages.preload_units(files, jobs=self.parse_jobs)
                except Exception:
                    pass
        self.workspace.add_design(name, files, options, replace=replace)
        return {
            "design": name,
            "files": sorted(self.workspace.files(name)),
            "fingerprint": self.workspace.fingerprint(name),
        }

    def _open_ir_design(self, params: Mapping[str, Any]) -> dict[str, Any]:
        """Open a design from one Tydi-IR interchange document.

        The served twin of :meth:`~repro.workspace.Workspace.add_ir_design`:
        the document text replaces Tydi-lang sources as the design's input,
        everything downstream (``get_outputs``, ``get_diagnostics``,
        ``simulate_design``) works unchanged.  In pool mode the request is
        routed to the owning shard and mirrored for crash replay just like
        ``open_design``.
        """
        name = protocol.require_param(params, "design", str, "open_ir_design")
        text = protocol.require_param(params, "text", str, "open_ir_design")
        options = protocol.coerce_options(params.get("options"), "open_ir_design")
        replace = bool(params.get("replace", True))
        self.workspace.add_ir_design(name, text, options, replace=replace)
        return {
            "design": name,
            "files": sorted(self.workspace.files(name)),
            "fingerprint": self.workspace.fingerprint(name),
        }

    def _update_file(self, params: Mapping[str, Any]) -> dict[str, Any]:
        design = protocol.require_param(params, "design", str, "update_file")
        filename = protocol.require_param(params, "filename", str, "update_file")
        text = protocol.require_param(params, "text", str, "update_file")
        self.workspace.update_file(design, filename, text)
        return {
            "design": design,
            "filename": filename,
            "fingerprint": self.workspace.fingerprint(design),
            "fresh": self.workspace.is_fresh(design),
        }

    def _remove_file(self, params: Mapping[str, Any]) -> dict[str, Any]:
        design = protocol.require_param(params, "design", str, "remove_file")
        filename = protocol.require_param(params, "filename", str, "remove_file")
        self.workspace.remove_file(design, filename)
        return {
            "design": design,
            "filename": filename,
            "fingerprint": self.workspace.fingerprint(design),
        }

    def _remove_design(self, params: Mapping[str, Any]) -> dict[str, Any]:
        design = protocol.require_param(params, "design", str, "remove_design")
        self.workspace.remove_design(design)
        return {"design": design, "removed": True}

    def _get_ir(self, params: Mapping[str, Any]) -> dict[str, Any]:
        design = protocol.require_param(params, "design", str, "get_ir")
        ir = self.workspace.ir(design)
        return {
            "design": design,
            "ir": ir,
            "fingerprint": self.workspace.fingerprint(design),
        }

    def _get_outputs(self, params: Mapping[str, Any]) -> dict[str, Any]:
        design = protocol.require_param(params, "design", str, "get_outputs")
        target = protocol.require_param(params, "target", str, "get_outputs")
        files = self.workspace.outputs(design, target)
        return {"design": design, "target": target, "files": dict(files)}

    def _get_diagnostics(self, params: Mapping[str, Any]) -> dict[str, Any]:
        design = protocol.require_param(params, "design", str, "get_diagnostics")
        sink = self.workspace.diagnostics(design)
        return {
            "design": design,
            "diagnostics": [
                {
                    "severity": diag.severity,
                    "stage": diag.stage,
                    "message": diag.message,
                    "span": str(diag.span) if diag.span is not None else None,
                }
                for diag in sink
            ],
        }

    def _simulate_design(self, params: Mapping[str, Any]) -> dict[str, Any]:
        design = protocol.require_param(params, "design", str, "simulate_design")
        plan = params.get("plan")
        if plan is not None and not isinstance(plan, Mapping):
            from repro.errors import TydiServerError

            raise TydiServerError(
                f"simulate_design: 'plan' must be a JSON object, "
                f"got {type(plan).__name__}"
            )
        from repro.sim.harness import SimulationPlan

        report = self.workspace.simulate(design, SimulationPlan.coerce(plan))
        return {
            "design": design,
            "fingerprint": self.workspace.fingerprint(design),
            "report": report.as_dict(),
        }

    def _watch_design(self, params: Mapping[str, Any]) -> dict[str, Any]:
        # Subscriptions need a connection to push event frames down; the
        # NDJSON transport intercepts this method and registers the watch
        # itself (see repro.server.transport).  Reaching this handler means
        # the request came over HTTP or a one-shot dispatch.
        from repro.errors import TydiServerError

        protocol.require_param(params, "design", str, "watch_design")
        raise TydiServerError(
            "watch_design requires a streaming NDJSON connection "
            "(the HTTP front and one-shot dispatch cannot push event frames)"
        )

    def _get_report(self, params: Mapping[str, Any]) -> dict[str, Any]:
        if self.pool is not None:
            return self.pool.report()
        return dict(self.workspace.report())

    def _list_backends(self, params: Mapping[str, Any]) -> dict[str, Any]:
        from repro.backends import available_backends, backend_class, option_schema

        return {
            "backends": [
                {
                    "name": name,
                    "description": backend_class(name).description,
                    "options": option_schema(backend_class(name)),
                }
                for name in available_backends()
            ]
        }

    def _stats(self, params: Mapping[str, Any]) -> dict[str, Any]:
        with self._counters_lock:
            server = {
                "requests": self._requests,
                "errors": self._errors,
                "in_flight": self._in_flight,
                "max_in_flight": self._max_in_flight,
                "methods": dict(sorted(self._method_counts.items())),
                "jobs": self.jobs,
                "workers": self.workers,
                "draining": self.draining.is_set(),
            }
        server["latency"] = self.metrics.as_dict()
        if self.pool is not None:
            pool_stats = self.pool.stats()
            return {
                "server": server,
                "pool": pool_stats,
                "workspace": _aggregate_worker_workspaces(pool_stats),
            }
        return {"server": server, "workspace": self.workspace.stats()}

    def _shutdown(self, params: Mapping[str, Any]) -> dict[str, Any]:
        # The inline/dispatch path (pool workers never receive shutdown;
        # the async path intercepts the method and drains instead).
        self.draining.set()
        if self.pool is not None:  # pragma: no cover - defensive
            self.pool.drain(timeout=self.drain_timeout)
        self.shutdown_requested.set()
        return {"stopping": True, "drained": True}

    # -- watch subscriptions ---------------------------------------------------

    def add_watch(self, design: str, deliver, plan: Optional[Mapping] = None) -> int:
        """Register one ``watch_design`` subscription.

        ``deliver`` is a thread-safe callable taking one JSON-ready event
        dict; it must never block -- the NDJSON transport hands in a
        bounded drop-oldest queue.  ``plan`` is the wire-form simulation
        plan (or ``None`` for the default plan).  Returns the watch token
        to pass to :meth:`remove_watch` when the connection goes away.
        """
        plan_dict = dict(plan) if isinstance(plan, Mapping) else None
        with self._watch_lock:
            self._next_watch_token += 1
            token = self._next_watch_token
            self._watches[token] = _Watch(token, design, plan_dict, deliver)
        return token

    def remove_watch(self, token: int) -> None:
        with self._watch_lock:
            self._watches.pop(token, None)

    def has_watches(self, design: object) -> bool:
        with self._watch_lock:
            return any(watch.design == design for watch in self._watches.values())

    def _schedule_watch_notify(self, design: object) -> None:
        """Fire-and-forget the post-mutation notification task.

        Runs off the mutation's own request path so an ``update_file``
        response is never delayed by the recompile + simulation behind its
        watchers' notifications.
        """
        if not isinstance(design, str) or self.draining.is_set():
            return
        if not self.has_watches(design):
            return
        task = asyncio.get_running_loop().create_task(self._notify_watches(design))
        self._notify_tasks.add(task)
        task.add_done_callback(self._notify_tasks.discard)

    async def _notify_watches(self, design: str) -> None:
        """Push one diagnostics + sim-delta event to every watcher of a design.

        Diagnostics and simulation reports are computed through the normal
        dispatch path, so pool mode routes to the owning shard and the
        ``sim:`` cache tier absorbs repeat plans; one simulation runs per
        *distinct* plan even when many watchers share it.  The pushed
        event always carries the diagnostics; the simulation report rides
        along only when it changed since the last push to that watcher
        (``sim_changed`` says which).
        """
        import json

        with self._watch_lock:
            watches = [w for w in self._watches.values() if w.design == design]
        if not watches or self.draining.is_set():
            return
        diag_env = await self._handle_parsed(None, "get_diagnostics", {"design": design})
        if diag_env.get("ok"):
            diagnostics = diag_env.get("result", {}).get("diagnostics", [])
        else:
            # A design that no longer compiles answers get_diagnostics with
            # an error envelope; fold it into the diagnostics shape so the
            # watcher still sees what broke.
            error = diag_env.get("error") or {}
            diagnostics = [
                {
                    "severity": "error",
                    "stage": error.get("stage"),
                    "message": error.get("message"),
                    "span": error.get("span"),
                }
            ]
        sims: dict[str, dict[str, Any]] = {}
        for watch in watches:
            plan_key = json.dumps(watch.plan, sort_keys=True)
            if plan_key not in sims:
                sim_params: dict[str, Any] = {"design": design}
                if watch.plan is not None:
                    sim_params["plan"] = watch.plan
                sims[plan_key] = await self._handle_parsed(
                    None, "simulate_design", sim_params
                )
            envelope = sims[plan_key]
            if envelope.get("ok"):
                sim = {"report": envelope["result"]["report"], "error": None}
                fingerprint = envelope["result"].get("fingerprint")
            else:
                sim = {"report": None, "error": envelope.get("error")}
                fingerprint = None
            marker = json.dumps(sim, sort_keys=True)
            changed = marker != watch.last_sim
            watch.last_sim = marker
            event: dict[str, Any] = {
                "event": "design_update",
                "watch": watch.token,
                "design": design,
                "fingerprint": fingerprint,
                "diagnostics": diagnostics,
                "sim_changed": changed,
            }
            if changed:
                event["sim"] = sim
            try:
                watch.deliver(event)
            except Exception:  # pragma: no cover - dead connection callback
                self.remove_watch(watch.token)

    # -- accounting ------------------------------------------------------------

    def _count(self, method: Optional[str], *, ok: bool) -> None:
        with self._counters_lock:
            self._requests += 1
            if not ok:
                self._errors += 1
            if method is not None:
                # Only known names get their own bucket: arbitrary strings
                # from misbehaving peers must not grow the dict (or the
                # stats payload) without bound in a long-lived daemon.
                key = method if method in self._METHODS else "<unknown>"
                self._method_counts[key] = self._method_counts.get(key, 0) + 1

    def _enter_request(self, method: Optional[str] = None) -> None:
        with self._counters_lock:
            self._in_flight += 1
            self._max_in_flight = max(self._max_in_flight, self._in_flight)
            if method == "shutdown":
                self._shutdowns_in_flight += 1

    def _exit_request(self, method: Optional[str] = None) -> None:
        with self._counters_lock:
            self._in_flight -= 1
            if method == "shutdown":
                self._shutdowns_in_flight -= 1

    #: method name -> handler.  The parallel signature table records the
    #: allowed parameter names and whether the handler must run on a
    #: compile-pool thread (everything that can touch a workspace or design
    #: lock does; the pure introspection methods answer inline).
    _METHODS = {
        "ping": _ping,
        "open_design": _open_design,
        "open_ir_design": _open_ir_design,
        "update_file": _update_file,
        "remove_file": _remove_file,
        "remove_design": _remove_design,
        "get_ir": _get_ir,
        "get_outputs": _get_outputs,
        "get_diagnostics": _get_diagnostics,
        "simulate_design": _simulate_design,
        "watch_design": _watch_design,
        "get_report": _get_report,
        "list_backends": _list_backends,
        "stats": _stats,
        "shutdown": _shutdown,
    }

    _SIGNATURES: dict[str, tuple[tuple[str, ...], bool]] = {
        "ping": ((), False),
        "open_design": (("design", "files", "options", "replace"), True),
        "open_ir_design": (("design", "text", "options", "replace"), True),
        "update_file": (("design", "filename", "text"), True),
        "remove_file": (("design", "filename"), True),
        "remove_design": (("design",), True),
        "get_ir": (("design",), True),
        "get_outputs": (("design", "target"), True),
        "get_diagnostics": (("design",), True),
        "simulate_design": (("design", "plan"), True),
        "watch_design": (("design", "plan"), False),
        "get_report": ((), True),
        "list_backends": ((), False),
        "stats": ((), True),
        "shutdown": ((), False),
    }

    #: Methods rejected once draining: everything that would start new
    #: compile work or mutate design state.  ``ping`` / ``stats`` /
    #: ``list_backends`` stay up so operators can observe the drain.
    _DRAIN_REJECTED = POOLED_METHODS | {"get_report", "watch_design"}


def _aggregate_worker_workspaces(pool_stats: Mapping[str, Any]) -> dict[str, Any]:
    """Sum per-worker workspace stats into one workspace-shaped summary.

    Lets pool-mode ``stats`` consumers keep reading
    ``stats["workspace"]["designs"]["fresh"]`` etc. exactly as in
    single-process mode; workers whose stats could not be collected are
    counted in ``workers_missing``.
    """
    designs = {"total": 0, "fresh": 0, "stale": 0, "error": 0}
    stage_totals: dict[str, int] = {}
    profile_totals: dict[str, dict[str, float]] = {}
    profiling_enabled = False
    missing = 0
    for entry in pool_stats.get("per_worker", ()):
        workspace = entry.get("workspace")
        if not isinstance(workspace, Mapping):
            missing += 1
            continue
        for key, value in (workspace.get("designs") or {}).items():
            if key in designs and isinstance(value, int):
                designs[key] += value
        for key, value in (workspace.get("stage_cache") or {}).items():
            if isinstance(value, int):
                stage_totals[key] = stage_totals.get(key, 0) + value
        profiling = workspace.get("profiling")
        if isinstance(profiling, Mapping):
            profiling_enabled = profiling_enabled or bool(profiling.get("enabled"))
            for stage, counters in (profiling.get("stages") or {}).items():
                if not isinstance(counters, Mapping):
                    continue
                totals = profile_totals.setdefault(
                    stage, {"count": 0, "wall_ms": 0.0, "cpu_ms": 0.0}
                )
                for key in totals:
                    value = counters.get(key)
                    if isinstance(value, (int, float)):
                        totals[key] = round(totals[key] + value, 3)
    summary: dict[str, Any] = {
        "designs": designs,
        "stage_cache": stage_totals or None,
        "workers_missing": missing,
    }
    if profiling_enabled or profile_totals:
        summary["profiling"] = {"enabled": profiling_enabled, "stages": profile_totals}
    return summary
