"""Asyncio transports of the compile service: NDJSON over TCP, plus HTTP.

One listening socket speaks both protocols -- the first line of a
connection decides:

* **NDJSON** (the native protocol): every line is one JSON request, every
  response one JSON line, many requests per connection.  The connection
  is **pipelined**: requests are handled concurrently and responses may
  return *out of request order* -- the echoed ``id`` pairs them -- so one
  slow cold compile never blocks the faster requests behind it.  A
  strictly request/response client (one request in flight, like
  :meth:`repro.server.client.CompileClient.request`) still observes
  perfectly ordered responses.  At most
  :data:`MAX_PIPELINE_REQUESTS` requests are in flight per connection;
  beyond that the server stops reading the socket (TCP backpressure).
* **HTTP/1.1** (the interop escape hatch): a ``POST`` whose body is the
  same JSON request document; the response is the JSON envelope with
  ``Content-Type: application/json``.  One request per connection
  (``Connection: close``), so ``curl`` works against a running daemon::

      curl -s http://127.0.0.1:4780/ -d '{"method": "ping"}'

Everything is stdlib ``asyncio`` -- no third-party HTTP framework; the
HTTP support is deliberately minimal (POST only, no keep-alive, no
chunked bodies) because the NDJSON protocol is the production path.

Shutdown is drain-first: the service's ``shutdown`` method completes only
after every in-flight request finished, so by the time the transport
winds down, every response has been written.  Idle connections parked in
a read are woken by an in-loop closing event rather than having their
sockets yanked mid-write.

:class:`ServerThread` runs the whole stack on a background thread's event
loop -- the harness the tests, the stress suite and the throughput
benchmark drive a real server through.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
from collections import deque
from typing import Any, Mapping, Optional

from repro.server import protocol
from repro.server.protocol import MAX_MESSAGE_BYTES, error_envelope
from repro.server.service import CompileService

#: In-flight request bound per NDJSON connection: past this the server
#: stops reading the socket, which surfaces to the peer as TCP
#: backpressure (the pool's bounded queues provide the structured-error
#: form of backpressure at the next layer down).
MAX_PIPELINE_REQUESTS = 64

#: Pending watch-event bound per NDJSON connection: a slow reader drops
#: the *oldest* undelivered events (each later frame carries a ``dropped``
#: count) instead of buffering without bound or stalling the notifier.
WATCH_QUEUE_DEPTH = 16


class _WatchState:
    """Per-connection ``watch_design`` state: tokens, queue, flusher.

    The service's notifier threads call :meth:`deliver` (thread-safe,
    never blocks); events land in a bounded drop-oldest queue on the
    event loop and a single flusher task writes them as NDJSON frames
    under the connection's write lock -- so event frames interleave with,
    but never tear, pipelined response frames.  Event frames carry an
    ``"event"`` key and ``"id": null``; clients pair responses by ``id``
    and buffer anything with an ``"event"`` key.
    """

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        self.loop = loop
        self.writer = writer
        self.write_lock = write_lock
        self.tokens: list[int] = []
        self.events: deque[dict[str, Any]] = deque()
        self.dropped = 0
        self.ready = asyncio.Event()
        self.flusher: Optional["asyncio.Task[None]"] = None

    def deliver(self, event: dict[str, Any]) -> None:
        """Queue one event from any thread (the service's notifier)."""
        self.loop.call_soon_threadsafe(self._push, event)

    def _push(self, event: dict[str, Any]) -> None:
        if len(self.events) >= WATCH_QUEUE_DEPTH:
            self.events.popleft()
            self.dropped += 1
        self.events.append(event)
        self.ready.set()

    def ensure_flusher(self) -> None:
        if self.flusher is None:
            self.flusher = self.loop.create_task(self._flush())

    async def _flush(self) -> None:
        while True:
            await self.ready.wait()
            self.ready.clear()
            while self.events:
                frame = dict(self.events.popleft())
                frame["id"] = None
                if self.dropped:
                    frame["dropped"] = self.dropped
                    self.dropped = 0
                try:
                    async with self.write_lock:
                        self.writer.write(_encode(frame))
                        await self.writer.drain()
                except (ConnectionError, RuntimeError):
                    return  # the peer went away; the read loop cleans up

    def close(self, service: CompileService) -> None:
        for token in self.tokens:
            service.remove_watch(token)
        self.tokens.clear()
        if self.flusher is not None:
            self.flusher.cancel()
            self.flusher = None


def _encode(envelope: dict[str, Any]) -> bytes:
    """One compact JSON line (the NDJSON frame; also the HTTP body).

    Responses beyond ``MAX_MESSAGE_BYTES`` are replaced with an error
    envelope: a peer reading with the documented line bound would only see
    a truncated, unparseable line otherwise.
    """
    payload = json.dumps(envelope, separators=(",", ":")).encode() + b"\n"
    if len(payload) > MAX_MESSAGE_BYTES:
        from repro.errors import TydiServerError

        oversized = error_envelope(
            envelope.get("id"),
            TydiServerError(
                f"response of {len(payload)} bytes exceeds the protocol bound "
                f"of {MAX_MESSAGE_BYTES} (split the design or query fewer outputs)"
            ),
        )
        payload = json.dumps(oversized, separators=(",", ":")).encode() + b"\n"
    return payload


class TydiServer:
    """The asyncio front of one :class:`~repro.server.service.CompileService`.

    ``port=0`` binds an ephemeral port; :attr:`address` reports the real
    one after :meth:`start`.  The server stops when the service's
    ``shutdown`` method has drained (or :meth:`stop` is called locally);
    in-flight responses are written before their connections close.
    """

    def __init__(
        self,
        service: CompileService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop: Optional[asyncio.Event] = None
        self._closing: Optional[asyncio.Event] = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._conn_tasks: set["asyncio.Task[None]"] = set()

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def start(self) -> tuple[str, int]:
        self._stop = asyncio.Event()
        self._closing = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.host,
            port=self.port,
            limit=MAX_MESSAGE_BYTES,
        )
        self.port = self.address[1]
        return self.address

    async def serve_until_shutdown(self) -> None:
        """Block until a shutdown is requested, then close down cleanly."""
        assert self._stop is not None, "call start() first"
        await self._stop.wait()
        if self._closing is not None:
            self._closing.set()  # wake connections parked in a read
        server, self._server = self._server, None
        if server is not None:
            server.close()
            # Give connection handlers time to flush in-flight responses
            # (the drain path means they are already computed); only then
            # force-close whatever is left.
            if self._conn_tasks:
                await asyncio.wait(set(self._conn_tasks), timeout=10.0)
            for writer in list(self._connections):
                with contextlib.suppress(Exception):
                    writer.close()
            await server.wait_closed()
        self.service.close()

    def stop(self) -> None:
        """Request shutdown from inside the loop (idempotent)."""
        self.service.shutdown_requested.set()
        if self._closing is not None:
            self._closing.set()
        if self._stop is not None:
            self._stop.set()

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._connections.add(writer)
        try:
            first = await reader.readline()
            if not first:
                return
            if _looks_like_http(first):
                await self._serve_http(first, reader, writer)
            else:
                await self._serve_ndjson(first, reader, writer)
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            ValueError,  # a line beyond MAX_MESSAGE_BYTES (StreamReader limit)
        ):
            pass  # a vanished or misframing peer is its own problem
        finally:
            self._connections.discard(writer)
            if task is not None:
                self._conn_tasks.discard(task)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()
            if self.service.shutdown_requested.is_set() and self._stop is not None:
                self._stop.set()

    async def _serve_ndjson(
        self,
        first_line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """The pipelined request loop of one NDJSON connection.

        Every request line becomes its own task; a per-connection write
        lock keeps response frames whole while letting them interleave in
        completion order.  The read loop races the next line against the
        server's closing event, so an idle connection never holds
        shutdown hostage and a closing connection still finishes writing
        what it already accepted.
        """
        assert self._closing is not None
        write_lock = asyncio.Lock()
        slots = asyncio.Semaphore(MAX_PIPELINE_REQUESTS)
        watch_state = _WatchState(asyncio.get_running_loop(), writer, write_lock)
        tasks: set["asyncio.Task[None]"] = set()
        line: Optional[bytes] = first_line
        error: Optional[BaseException] = None
        try:
            while line:
                stripped = line.strip()
                if stripped:
                    await slots.acquire()
                    response_task = asyncio.create_task(
                        self._respond_one(stripped, writer, write_lock, slots, watch_state)
                    )
                    tasks.add(response_task)
                    response_task.add_done_callback(tasks.discard)
                if self._closing.is_set() or self.service.shutdown_requested.is_set():
                    break
                line = await self._read_or_closing(reader)
        except (ConnectionError, asyncio.IncompleteReadError, ValueError) as exc:
            error = exc
        finally:
            if tasks:  # flush accepted work before the connection dies
                await asyncio.gather(*tasks, return_exceptions=True)
            watch_state.close(self.service)
        if error is not None:
            raise error

    async def _read_or_closing(self, reader: asyncio.StreamReader) -> Optional[bytes]:
        """The next request line, or ``None`` once the server is closing."""
        assert self._closing is not None
        read_task = asyncio.create_task(reader.readline())
        closing_task = asyncio.create_task(self._closing.wait())
        try:
            await asyncio.wait(
                {read_task, closing_task}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            for pending in (read_task, closing_task):
                if not pending.done():
                    pending.cancel()
                    with contextlib.suppress(asyncio.CancelledError):
                        await pending
        if read_task.cancelled():
            return None
        return read_task.result()  # may raise: handled by the caller

    async def _respond_one(
        self,
        payload: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        slots: asyncio.Semaphore,
        watch_state: Optional[_WatchState] = None,
    ) -> None:
        try:
            message: Any = None
            try:
                message = json.loads(payload)
            except ValueError:
                pass
            if (
                watch_state is not None
                and isinstance(message, Mapping)
                and message.get("method") == "watch_design"
            ):
                envelope = self._register_watch(message, watch_state)
            else:
                envelope = await self._handle_raw(payload)
            async with write_lock:
                writer.write(_encode(envelope))
                await writer.drain()
        except (ConnectionError, RuntimeError):
            pass  # the peer (or the transport) went away mid-response
        finally:
            slots.release()

    def _register_watch(
        self, message: Mapping[str, Any], watch_state: _WatchState
    ) -> dict[str, Any]:
        """Handle ``watch_design`` on a streaming connection.

        This is the transport-level twin of the service handler (which can
        only reject the method): the subscription is bound to *this*
        connection's event queue, and torn down when the connection
        closes.  Rejections during drain and parameter validation mirror
        the service's behaviour so both paths answer identically.
        """
        import time as _time

        start = _time.perf_counter()
        request_id = protocol.recover_request_id(message)
        try:
            request_id, _, params = protocol.parse_request(message)
            protocol.unknown_params_check(params, ("design", "plan"), "watch_design")
            design = protocol.require_param(params, "design", str, "watch_design")
            if self.service.draining.is_set():
                from repro.errors import TydiDrainingError

                raise TydiDrainingError(
                    "service is draining for shutdown; 'watch_design' rejected"
                )
            plan = params.get("plan")
            if plan is not None and not isinstance(plan, Mapping):
                from repro.errors import TydiServerError

                raise TydiServerError(
                    f"watch_design: 'plan' must be a JSON object, "
                    f"got {type(plan).__name__}"
                )
            from repro.sim.harness import SimulationPlan

            SimulationPlan.coerce(plan)  # reject malformed plans up front
            token = self.service.add_watch(design, watch_state.deliver, plan)
            watch_state.tokens.append(token)
            watch_state.ensure_flusher()
            envelope = protocol.success_envelope(
                request_id,
                {
                    "design": design,
                    "watching": True,
                    "watch": token,
                    "queue_depth": WATCH_QUEUE_DEPTH,
                },
            )
        except Exception as exc:
            envelope = error_envelope(request_id, exc)
        ok = bool(envelope.get("ok"))
        self.service._count("watch_design", ok=ok)
        self.service.metrics.record(
            "watch_design", _time.perf_counter() - start, ok=ok
        )
        return envelope

    async def _handle_raw(self, payload: bytes) -> dict[str, Any]:
        try:
            message = json.loads(payload)
        except ValueError as exc:
            from repro.errors import TydiServerError

            return error_envelope(None, TydiServerError(f"request is not valid JSON: {exc}"))
        return await self.service.handle(message)

    async def _serve_http(
        self,
        request_line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        from repro.errors import TydiServerError

        parts = request_line.decode("latin-1").split()
        method = parts[0].upper() if parts else ""
        content_length = 0
        while True:  # drain headers
            header = await reader.readline()
            if not header or header in (b"\r\n", b"\n"):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    content_length = -1
        if method != "POST":
            envelope = error_envelope(
                None, TydiServerError(f"HTTP method {method or '?'} not supported (use POST)")
            )
            await _write_http(writer, 405, envelope)
            return
        if content_length < 0 or content_length > MAX_MESSAGE_BYTES:
            envelope = error_envelope(
                None, TydiServerError("missing or unacceptable Content-Length")
            )
            await _write_http(writer, 400, envelope)
            return
        body = await reader.readexactly(content_length) if content_length else b""
        envelope = await self._handle_raw(body or b"null")
        status = 200 if envelope.get("ok") else 400
        if not envelope.get("ok") and envelope.get("error", {}).get("stage") != "server":
            # Compile failures are a *successful* protocol exchange: the
            # envelope is the answer.  Only protocol violations are 400s.
            status = 200
        await _write_http(writer, status, envelope)


async def _write_http(writer: asyncio.StreamWriter, status: int, envelope: dict[str, Any]) -> None:
    reasons = {200: "OK", 400: "Bad Request", 405: "Method Not Allowed"}
    body = _encode(envelope)
    head = (
        f"HTTP/1.1 {status} {reasons.get(status, 'OK')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n"
        f"\r\n"
    ).encode("latin-1")
    writer.write(head + body)
    await writer.drain()


def _looks_like_http(first_line: bytes) -> bool:
    """HTTP request lines end in ``HTTP/1.x``; JSON documents cannot."""
    text = first_line.strip()
    return text.endswith(b"HTTP/1.1") or text.endswith(b"HTTP/1.0")


async def serve(
    service: CompileService,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    ready: Optional["threading.Event"] = None,
    on_ready=None,
) -> None:
    """Start a :class:`TydiServer` and run it until shutdown is requested.

    ``on_ready(server)`` (if given) fires after binding -- the CLI prints
    the address there; ``ready`` (if given) is set at the same moment --
    :class:`ServerThread` blocks on it.
    """
    server = TydiServer(service, host=host, port=port)
    await server.start()

    # Bridge the service's thread-safe shutdown event into the loop: a
    # shutdown request arriving over a connection sets it in-loop, but the
    # CLI's signal handler (or ServerThread.stop) sets it from outside.
    loop = asyncio.get_running_loop()

    async def watch_shutdown() -> None:
        while not service.shutdown_requested.is_set():
            await asyncio.sleep(0.05)
        server.stop()

    watcher = loop.create_task(watch_shutdown())
    if on_ready is not None:
        on_ready(server)
    if ready is not None:
        ready.set()
    try:
        await server.serve_until_shutdown()
    finally:
        watcher.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await watcher


class ServerThread:
    """A live compile server on a background thread (tests and benchmarks).

    Usage::

        with ServerThread() as server:
            client = CompileClient(*server.address)
            ...

    Exiting the context requests shutdown and joins the thread, asserting
    the loop wound down cleanly.  ``service`` defaults to a fresh
    uncached-workspace service.
    """

    def __init__(
        self,
        service: Optional[CompileService] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service if service is not None else CompileService()
        self.host = host
        self.port = port
        self._ready = threading.Event()
        self._server_box: list[TydiServer] = []
        self._thread: Optional[threading.Thread] = None
        self._error: Optional[BaseException] = None

    @property
    def address(self) -> tuple[str, int]:
        if not self._server_box:
            raise RuntimeError("server thread is not running")
        return self.host, self._server_box[0].port

    def start(self) -> "ServerThread":
        def run() -> None:
            try:
                asyncio.run(
                    serve(
                        self.service,
                        host=self.host,
                        port=self.port,
                        ready=self._ready,
                        on_ready=self._server_box.append,
                    )
                )
            except BaseException as exc:  # surfaced by stop()/join
                self._error = exc
                self._ready.set()

        self._thread = threading.Thread(target=run, name="tydi-serve", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server thread did not become ready")
        if self._error is not None:
            raise RuntimeError(f"server thread failed to start: {self._error!r}")
        return self

    def stop(self, timeout: float = 30) -> None:
        self.service.shutdown_requested.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            if self._thread.is_alive():
                raise RuntimeError("server thread did not shut down in time")
            self._thread = None
        if self._error is not None:
            error, self._error = self._error, None
            raise RuntimeError(f"server thread raised: {error!r}")

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
