"""The synchronous client of the compile service.

:class:`CompileClient` speaks the NDJSON protocol of
:mod:`repro.server.transport` over one TCP connection: every call sends a
JSON request line and blocks for the matching response line.  Successful
responses return the ``result`` payload directly; error envelopes raise
:class:`~repro.server.protocol.RemoteCompileError`, which preserves the
server-side exception type and pipeline stage -- so remote callers handle
failures exactly as in-process ones do::

    with CompileClient(port=4780) as client:
        client.open_design("adder", files={"adder.td": source})
        try:
            print(client.get_ir("adder"))
        except RemoteCompileError as exc:
            print(f"[{exc.remote_stage}] {exc}")

One client instance serves one thread (requests are strictly
request/response on the shared socket); concurrent callers each open
their own -- connections are cheap and the server multiplexes them.
:meth:`CompileClient.request_batch` is the pipelined exception: it writes
a whole batch of request lines before reading any response, letting the
server overlap them (responses may return out of order; the echoed ``id``
re-pairs them), and returns the envelopes in request order.

:func:`http_post` is the one-shot HTTP sibling used for interop tests and
quick probes (``curl`` works too).
"""

from __future__ import annotations

import json
import socket
import time
from collections import deque
from typing import Any, Mapping, Optional

from repro.errors import TydiServerError
from repro.server.protocol import MAX_MESSAGE_BYTES, RemoteCompileError


class CompileClient:
    """A blocking NDJSON connection to one ``tydi-serve`` daemon."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 4780,
        *,
        timeout: float = 60.0,
        connect_retry_for: float = 0.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        #: Keep retrying a refused connect for this many seconds -- covers
        #: the race against a server still binding (CI smoke, ServerThread).
        self.connect_retry_for = connect_retry_for
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._next_id = 0
        #: Event frames (``watch_design`` pushes) read while waiting for a
        #: response; drained by :meth:`next_event` in arrival order.
        self._events: deque[dict[str, Any]] = deque()

    # -- connection lifecycle --------------------------------------------------

    def connect(self) -> "CompileClient":
        if self._sock is not None:
            return self
        deadline = time.monotonic() + self.connect_retry_for
        while True:
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
                break
            except OSError as exc:
                if time.monotonic() >= deadline:
                    raise TydiServerError(
                        f"cannot connect to tydi-serve at {self.host}:{self.port}: {exc}"
                    ) from exc
                time.sleep(0.05)
        self._file = self._sock.makefile("rwb")
        return self

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "CompileClient":
        return self.connect()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- the request primitive -------------------------------------------------

    def request(self, method: str, **params: Any) -> dict[str, Any]:
        """Send one request, block for its response, unwrap the envelope."""
        envelope = self.request_envelope(method, params)
        if envelope.get("ok"):
            result = envelope.get("result")
            if not isinstance(result, dict):
                raise TydiServerError(
                    f"{method}: server returned a {type(result).__name__} result "
                    f"payload, not an object (protocol mismatch?)"
                )
            return result
        raise RemoteCompileError(envelope.get("error") or {})

    def request_envelope(self, method: str, params: Mapping[str, Any]) -> dict[str, Any]:
        """Send one request and return the raw response envelope."""
        self.connect()
        self._next_id += 1
        request_id = self._next_id
        message: dict[str, Any] = {"id": request_id, "method": method}
        if params:
            message["params"] = dict(params)
        payload = json.dumps(message, separators=(",", ":")).encode() + b"\n"
        if len(payload) > MAX_MESSAGE_BYTES:
            raise TydiServerError(
                f"request of {len(payload)} bytes exceeds the protocol bound"
            )
        try:
            self._file.write(payload)
            self._file.flush()
            while True:
                envelope = self._read_envelope()
                # Watch events may interleave with the response on a
                # watching connection; buffer them for next_event().
                if isinstance(envelope, dict) and "event" in envelope:
                    self._events.append(envelope)
                    continue
                break
        except OSError as exc:
            self.close()
            raise TydiServerError(
                f"connection to {self.host}:{self.port} failed mid-request: {exc}"
            ) from exc
        if isinstance(envelope, dict) and envelope.get("id") not in (None, request_id):
            self.close()
            raise TydiServerError(
                f"response id {envelope.get('id')!r} does not match request {request_id}"
            )
        return envelope if isinstance(envelope, dict) else {"ok": False, "error": {}}

    def _read_envelope(self) -> Any:
        """Read and decode one NDJSON frame (response or event)."""
        line = self._file.readline(MAX_MESSAGE_BYTES)
        if not line:
            self.close()
            raise TydiServerError(
                f"server at {self.host}:{self.port} closed the connection"
            )
        if len(line) >= MAX_MESSAGE_BYTES and not line.endswith(b"\n"):
            self.close()
            raise TydiServerError(
                f"response exceeds the protocol bound of {MAX_MESSAGE_BYTES} bytes"
            )
        try:
            return json.loads(line)
        except ValueError as exc:
            self.close()
            raise TydiServerError(f"unreadable response from server: {exc}") from exc

    def request_batch(
        self, requests: "list[tuple[str, Mapping[str, Any]]]"
    ) -> list[dict[str, Any]]:
        """Pipeline a batch of requests on this connection.

        All request lines are written before any response is read, so the
        server works on them concurrently (a multi-worker server spreads
        them across shards).  Responses arrive in *completion* order; the
        echoed ``id`` re-pairs them, and the returned envelopes are in
        the original request order.  No envelope is unwrapped -- callers
        inspect ``ok`` per entry, since a batch can mix successes and
        failures.
        """
        self.connect()
        ids: list[int] = []
        lines: list[bytes] = []
        for method, params in requests:
            self._next_id += 1
            message: dict[str, Any] = {"id": self._next_id, "method": method}
            if params:
                message["params"] = dict(params)
            payload = json.dumps(message, separators=(",", ":")).encode() + b"\n"
            if len(payload) > MAX_MESSAGE_BYTES:
                raise TydiServerError(
                    f"request of {len(payload)} bytes exceeds the protocol bound"
                )
            ids.append(self._next_id)
            lines.append(payload)
        if not ids:
            return []
        by_id: dict[Any, dict[str, Any]] = {}
        try:
            self._file.write(b"".join(lines))
            self._file.flush()
            while len(by_id) < len(ids):
                envelope = self._read_envelope()
                if not isinstance(envelope, dict):
                    raise TydiServerError("batch response line is not a JSON object")
                if "event" in envelope:
                    self._events.append(envelope)
                    continue
                by_id[envelope.get("id")] = envelope
        except (OSError, TydiServerError):
            self.close()
            raise
        missing = [request_id for request_id in ids if request_id not in by_id]
        if missing:
            self.close()
            raise TydiServerError(
                f"batch responses missing for request id(s) {missing} "
                f"(got ids {sorted(k for k in by_id if k is not None)!r})"
            )
        return [by_id[request_id] for request_id in ids]

    # -- convenience methods (one per service method) --------------------------

    def ping(self) -> dict[str, Any]:
        return self.request("ping")

    def open_design(
        self,
        design: str,
        *,
        files: Mapping[str, str] | list | None = None,
        options: Optional[Mapping[str, Any]] = None,
        replace: bool = True,
    ) -> dict[str, Any]:
        params: dict[str, Any] = {"design": design, "replace": replace}
        if files is not None:
            params["files"] = files
        if options is not None:
            params["options"] = dict(options)
        return self.request("open_design", **params)

    def open_ir_design(
        self,
        design: str,
        text: str,
        *,
        options: Optional[Mapping[str, Any]] = None,
        replace: bool = True,
    ) -> dict[str, Any]:
        """Open a design from one Tydi-IR interchange document (``.tir``)."""
        params: dict[str, Any] = {"design": design, "text": text, "replace": replace}
        if options is not None:
            params["options"] = dict(options)
        return self.request("open_ir_design", **params)

    def update_file(self, design: str, filename: str, text: str) -> dict[str, Any]:
        return self.request("update_file", design=design, filename=filename, text=text)

    def remove_file(self, design: str, filename: str) -> dict[str, Any]:
        return self.request("remove_file", design=design, filename=filename)

    def remove_design(self, design: str) -> dict[str, Any]:
        return self.request("remove_design", design=design)

    def get_ir(self, design: str) -> str:
        return self.request("get_ir", design=design)["ir"]

    def get_outputs(self, design: str, target: str) -> dict[str, str]:
        return self.request("get_outputs", design=design, target=target)["files"]

    def get_diagnostics(self, design: str) -> list[dict[str, Any]]:
        return self.request("get_diagnostics", design=design)["diagnostics"]

    def simulate_design(
        self, design: str, plan: Optional[Mapping[str, Any]] = None
    ) -> dict[str, Any]:
        """Simulate one design; returns ``{design, fingerprint, report}``.

        ``plan`` is the wire form of a
        :class:`~repro.sim.harness.SimulationPlan` (any object with an
        ``as_dict()`` also works); ``None`` runs the default plan.
        """
        params: dict[str, Any] = {"design": design}
        if plan is not None:
            params["plan"] = dict(plan.as_dict() if hasattr(plan, "as_dict") else plan)
        return self.request("simulate_design", **params)

    def watch_design(
        self, design: str, plan: Optional[Mapping[str, Any]] = None
    ) -> dict[str, Any]:
        """Subscribe this connection to a design's update notifications.

        After each successful ``update_file`` on the design the server
        pushes an event frame (``{"event": "design_update", ...}``) with
        fresh diagnostics and -- when it changed -- the simulation report
        for ``plan``.  Read events with :meth:`next_event`.
        """
        params: dict[str, Any] = {"design": design}
        if plan is not None:
            params["plan"] = dict(plan.as_dict() if hasattr(plan, "as_dict") else plan)
        return self.request("watch_design", **params)

    def next_event(self, timeout: Optional[float] = None) -> Optional[dict[str, Any]]:
        """The next pushed event frame, or ``None`` after ``timeout``.

        Events buffered while pairing earlier responses are returned
        first; otherwise blocks reading the socket for up to ``timeout``
        seconds (``None``: the client's default timeout).
        """
        if self._events:
            return self._events.popleft()
        self.connect()
        previous = self._sock.gettimeout()
        self._sock.settimeout(timeout if timeout is not None else self.timeout)
        try:
            envelope = self._read_envelope()
        except TimeoutError:
            return None
        except OSError as exc:
            self.close()
            raise TydiServerError(
                f"connection to {self.host}:{self.port} failed reading events: {exc}"
            ) from exc
        finally:
            if self._sock is not None:
                self._sock.settimeout(previous)
        if isinstance(envelope, dict) and "event" in envelope:
            return envelope
        self.close()
        raise TydiServerError(
            "received a response frame while waiting for events "
            "(concurrent requests on a watching connection?)"
        )

    def get_report(self) -> dict[str, Any]:
        return self.request("get_report")

    def list_backends(self) -> list[dict[str, str]]:
        return self.request("list_backends")["backends"]

    def stats(self) -> dict[str, Any]:
        return self.request("stats")

    def shutdown(self) -> dict[str, Any]:
        return self.request("shutdown")


def http_post(
    host: str,
    port: int,
    message: Mapping[str, Any],
    *,
    timeout: float = 30.0,
    path: str = "/",
) -> dict[str, Any]:
    """POST one request document over HTTP/1.1 and return the envelope.

    The stdlib-only sibling of the NDJSON client for the HTTP front; the
    HTTP status is folded into the envelope (protocol violations are 4xx,
    but the envelope already says so via ``stage: "server"``).
    """
    body = json.dumps(dict(message)).encode()
    request = (
        f"POST {path} HTTP/1.1\r\n"
        f"Host: {host}:{port}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n"
        f"\r\n"
    ).encode("latin-1") + body
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(request)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    raw = b"".join(chunks)
    head, _, payload = raw.partition(b"\r\n\r\n")
    if not payload:
        raise TydiServerError("HTTP response carried no body")
    try:
        envelope = json.loads(payload)
    except ValueError as exc:
        raise TydiServerError(f"unreadable HTTP response body: {exc}") from exc
    if not isinstance(envelope, dict):
        raise TydiServerError("HTTP response body is not a JSON object")
    return envelope
