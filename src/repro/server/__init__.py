"""``repro.server``: the async compile service over one shared Workspace.

The long-lived daemon face of the toolchain: one
:class:`~repro.server.service.CompileService` wraps either one
:class:`~repro.workspace.Workspace` (the ``workers=0`` in-process thread
path) or a :class:`~repro.server.pool.WorkerPool` of forked worker
processes with designs sharded across them by stable name hash
(``workers=N``); an asyncio transport
(:class:`~repro.server.transport.TydiServer`) speaks pipelined
newline-delimited JSON over TCP plus a minimal HTTP/1.1 POST endpoint, and
:class:`~repro.server.client.CompileClient` is the synchronous client the
``tydi-serve request`` CLI and the test suites drive it with.

:mod:`repro.server.cachesvc` is the sibling daemon (``tydi-serve cache``):
the shared remote L2 cache every compile session pointed at it with
``--remote-cache`` shares (see :mod:`repro.pipeline.remote`).

See ``docs/server.md`` for the protocol reference and the worker-pool
architecture.
"""

from repro.server.cachesvc import CacheServer, CacheServerThread, CacheStore
from repro.server.client import CompileClient, http_post
from repro.server.metrics import LatencyHistogram, MethodMetrics
from repro.server.pool import POOLED_METHODS, WorkerPool, shard_for
from repro.server.protocol import PROTOCOL_VERSION, RemoteCompileError
from repro.server.service import CompileService
from repro.server.transport import MAX_PIPELINE_REQUESTS, ServerThread, TydiServer, serve

__all__ = [
    "CacheServer",
    "CacheServerThread",
    "CacheStore",
    "CompileClient",
    "CompileService",
    "LatencyHistogram",
    "MAX_PIPELINE_REQUESTS",
    "MethodMetrics",
    "POOLED_METHODS",
    "PROTOCOL_VERSION",
    "RemoteCompileError",
    "ServerThread",
    "TydiServer",
    "WorkerPool",
    "http_post",
    "serve",
    "shard_for",
]
