"""``repro.server``: the async compile service over one shared Workspace.

The long-lived daemon face of the toolchain: one
:class:`~repro.server.service.CompileService` wraps one
:class:`~repro.workspace.Workspace` (so every cache tier built by the
pipeline -- whole-result, per-file parse, evaluate snapshots, per-backend
units -- becomes shared warm memory serving many clients), an asyncio
transport (:class:`~repro.server.transport.TydiServer`) speaks
newline-delimited JSON over TCP plus a minimal HTTP/1.1 POST endpoint, and
:class:`~repro.server.client.CompileClient` is the synchronous client the
``tydi-serve request`` CLI and the test suites drive it with.

See ``docs/server.md`` for the protocol reference.
"""

from repro.server.client import CompileClient, http_post
from repro.server.protocol import PROTOCOL_VERSION, RemoteCompileError
from repro.server.service import CompileService
from repro.server.transport import ServerThread, TydiServer, serve

__all__ = [
    "CompileClient",
    "CompileService",
    "PROTOCOL_VERSION",
    "RemoteCompileError",
    "ServerThread",
    "TydiServer",
    "http_post",
    "serve",
]
