"""The shared remote cache server: ``tydi-serve cache`` / ``repro.server.cachesvc``.

The fleet-wide L2 of the content-addressed cache stack
(:mod:`repro.pipeline.remote` documents the wire format and the tiering).
One small stdlib-only daemon holds an in-memory, byte-budgeted LRU of
pickled cache entries keyed by namespaced fingerprint; every ``tydi-serve``
worker, ``tydi-compile`` run and ``--watch`` loop pointed at it with
``--remote-cache host:port`` shares one warm store -- the sccache/Bazel
remote-cache trick.

The server is deliberately dumb: it never unpickles a payload (entries are
opaque blobs; the *clients'* schema-versioned fingerprints guarantee that
incompatible entries are never even requested), it has no persistence (the
local disk tiers are the durable layer; a restarted cache server simply
starts cold and refills from write-behind traffic), and it has no
authentication (bind it to a trusted interface, as with ``tydi-serve``).

Threading model: one ``ThreadingTCPServer`` thread per connection,
persistent connections, all state behind one lock in :class:`CacheStore`.
Cache operations are dict lookups over already-received bytes, so the lock
is never held across I/O.
"""

from __future__ import annotations

import argparse
import json
import socket
import socketserver
import sys
import threading
from collections import OrderedDict
from typing import Optional

from repro.pipeline.remote import (
    DEFAULT_CACHE_PORT,
    MAX_ENTRY_BYTES,
    OP_GET,
    OP_PUT,
    OP_STATS,
    RESP_ERROR,
    RESP_HIT,
    RESP_MISS,
    RESP_OK,
    RESP_STATS,
    recv_frame,
    send_frame,
    unpack_put,
)

#: Default byte budget of the in-memory store.
DEFAULT_MAX_BYTES = 512 * 1024 * 1024


class CacheStore:
    """A thread-safe, byte-budgeted LRU of opaque blobs."""

    def __init__(
        self,
        max_bytes: int = DEFAULT_MAX_BYTES,
        *,
        max_entry_bytes: int = MAX_ENTRY_BYTES,
    ) -> None:
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        self.max_bytes = max_bytes
        self.max_entry_bytes = max_entry_bytes
        self._entries: OrderedDict[str, bytes] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.gets = 0
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.rejected = 0
        self.evictions = 0

    def get(self, key: str) -> Optional[bytes]:
        with self._lock:
            self.gets += 1
            blob = self._entries.get(key)
            if blob is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return blob

    def put(self, key: str, blob: bytes) -> bool:
        """Store one blob; ``False`` when rejected (entry over the bound)."""
        if len(blob) > self.max_entry_bytes:
            with self._lock:
                self.rejected += 1
            return False
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= len(old)
            self._entries[key] = blob
            self._bytes += len(blob)
            self.puts += 1
            # LRU-evict into budget; an entry bigger than the whole budget
            # evicts itself, leaving the store empty rather than over.
            while self._bytes > self.max_bytes and self._entries:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= len(evicted)
                self.evictions += 1
        return True

    def drop(self, key: str) -> bool:
        """Remove one entry (operator surface; also used by tests)."""
        with self._lock:
            blob = self._entries.pop(key, None)
            if blob is None:
                return False
            self._bytes -= len(blob)
            return True

    def keys(self) -> list[str]:
        """A point-in-time copy of the stored keys, LRU order first."""
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats_snapshot(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "gets": self.gets,
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "rejected": self.rejected,
                "evictions": self.evictions,
            }


class _CacheHandler(socketserver.BaseRequestHandler):
    """One persistent connection: framed requests until EOF."""

    def setup(self) -> None:
        self.server.track_connection(self.request)  # type: ignore[attr-defined]

    def finish(self) -> None:
        self.server.untrack_connection(self.request)  # type: ignore[attr-defined]

    def handle(self) -> None:  # pragma: no branch - loop structure
        store: CacheStore = self.server.store  # type: ignore[attr-defined]
        sock: socket.socket = self.request
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            while True:
                frame = recv_frame(sock)
                if frame is None:
                    return  # client hung up cleanly
                send_frame(sock, self._respond(store, frame))
        except (OSError, ValueError, ConnectionError):
            return  # torn connection / corrupt frame: drop the peer

    @staticmethod
    def _respond(store: CacheStore, frame: bytes) -> bytes:
        op = frame[:1]
        if op == OP_GET:
            blob = store.get(frame[1:].decode(errors="replace"))
            return RESP_MISS if blob is None else RESP_HIT + blob
        if op == OP_PUT:
            try:
                key, blob = unpack_put(frame)
            except Exception:
                return RESP_ERROR + b"malformed put"
            return RESP_OK if store.put(key, blob) else RESP_ERROR + b"entry rejected"
        if op == OP_STATS:
            return RESP_STATS + json.dumps(store.stats_snapshot()).encode()
        return RESP_ERROR + b"unknown op"


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._connections: set[socket.socket] = set()
        self._connections_lock = threading.Lock()

    def track_connection(self, sock: socket.socket) -> None:
        with self._connections_lock:
            self._connections.add(sock)

    def untrack_connection(self, sock: socket.socket) -> None:
        with self._connections_lock:
            self._connections.discard(sock)

    def close_connections(self) -> None:
        """Tear down every live persistent connection.

        ``shutdown`` only stops the accept loop; a *stopped* cache daemon
        must also stop answering clients already connected (what a real
        process kill does), so the mid-soak-kill semantics are testable
        in-process.
        """
        with self._connections_lock:
            victims = list(self._connections)
        for sock in victims:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass


class CacheServer:
    """A running cache server bound to one address.

    Usable directly (``serve_forever`` on the calling thread, for the CLI)
    or through :class:`CacheServerThread` for tests and benchmarks.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ) -> None:
        self.store = CacheStore(max_bytes)
        self._server = _TCPServer((host, port), _CacheHandler)
        self._server.store = self.store  # type: ignore[attr-defined]

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    @property
    def endpoint(self) -> str:
        host, port = self.address
        return f"{host}:{port}"

    def serve_forever(self) -> None:
        self._server.serve_forever(poll_interval=0.1)

    def shutdown(self) -> None:
        self._server.shutdown()
        self._server.close_connections()

    def close(self) -> None:
        self._server.server_close()


class CacheServerThread:
    """Context manager running a :class:`CacheServer` on a daemon thread."""

    def __init__(self, *, max_bytes: int = DEFAULT_MAX_BYTES, host: str = "127.0.0.1") -> None:
        self.server = CacheServer(host, 0, max_bytes=max_bytes)
        self._thread = threading.Thread(
            target=self.server.serve_forever, name="tydi-cachesvc", daemon=True
        )

    @property
    def endpoint(self) -> str:
        return self.server.endpoint

    @property
    def store(self) -> CacheStore:
        return self.server.store

    def __enter__(self) -> "CacheServerThread":
        self._thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def stop(self) -> None:
        self.server.shutdown()
        self._thread.join(timeout=10.0)
        self.server.close()


def main(argv: Optional[list[str]] = None) -> int:
    """``python -m repro.server.cachesvc`` -- run until SIGINT/SIGTERM."""
    parser = argparse.ArgumentParser(
        prog="tydi-cachesvc",
        description="Run the shared remote compilation-cache server.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port",
        type=int,
        default=DEFAULT_CACHE_PORT,
        help=f"TCP port (default: {DEFAULT_CACHE_PORT}; 0 for ephemeral)",
    )
    parser.add_argument(
        "--max-mb",
        type=float,
        default=DEFAULT_MAX_BYTES / (1024 * 1024),
        metavar="MB",
        help="in-memory store budget in megabytes (LRU-evicted; default: 512)",
    )
    args = parser.parse_args(argv)
    if args.max_mb < 0:
        parser.error("--max-mb must be >= 0")

    server = CacheServer(args.host, args.port, max_bytes=int(args.max_mb * 1024 * 1024))
    host, port = server.address
    print(f"tydi-cachesvc: listening on {host}:{port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        server.close()
    print("tydi-cachesvc: stopped", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
