"""Latency histograms and per-method counters for the compile service.

The ops surface a long-lived daemon needs: every request's wall-clock
latency lands in a :class:`LatencyHistogram` bucketed on a power-of-two
millisecond scale (sub-millisecond cache hits and multi-second cold
compiles share one axis without losing either end), and
:class:`MethodMetrics` keeps one histogram per request method plus
ok/error counts.  Everything is thread-safe and snapshots to plain JSON
for the ``stats`` endpoint -- no third-party metrics client, the same
stdlib-only discipline as the rest of :mod:`repro.server`.

Percentiles reported by :meth:`LatencyHistogram.as_dict` are upper-bound
estimates read off the bucket boundaries (the standard histogram-quantile
trade: bounded memory, ~2x resolution).  Exact ``min``/``max``/``mean``
are tracked alongside, so the estimate error is always visible.
"""

from __future__ import annotations

import threading
from typing import Any, Optional

#: Bucket upper bounds in milliseconds: powers of two from 1ms to ~65s,
#: plus a catch-all overflow bucket.  17 counters per histogram.
BUCKET_BOUNDS_MS: tuple[float, ...] = tuple(float(1 << i) for i in range(17))


class LatencyHistogram:
    """A fixed-bucket latency histogram (power-of-two millisecond scale)."""

    __slots__ = ("_lock", "_counts", "count", "total_s", "min_s", "max_s")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = [0] * (len(BUCKET_BOUNDS_MS) + 1)
        self.count = 0
        self.total_s = 0.0
        self.min_s: Optional[float] = None
        self.max_s: Optional[float] = None

    def record(self, seconds: float) -> None:
        ms = seconds * 1000.0
        index = 0
        for index, bound in enumerate(BUCKET_BOUNDS_MS):  # noqa: B007
            if ms <= bound:
                break
        else:
            index = len(BUCKET_BOUNDS_MS)
        with self._lock:
            self._counts[index] += 1
            self.count += 1
            self.total_s += seconds
            if self.min_s is None or seconds < self.min_s:
                self.min_s = seconds
            if self.max_s is None or seconds > self.max_s:
                self.max_s = seconds

    def _percentile_locked(self, fraction: float) -> Optional[float]:
        """Upper-bound estimate of one quantile, in milliseconds."""
        if self.count == 0:
            return None
        target = fraction * self.count
        running = 0
        for index, bucket_count in enumerate(self._counts):
            running += bucket_count
            if running >= target:
                if index < len(BUCKET_BOUNDS_MS):
                    return BUCKET_BOUNDS_MS[index]
                # Overflow bucket: the exact max is the best bound we have.
                return round((self.max_s or 0.0) * 1000.0, 3)
        return BUCKET_BOUNDS_MS[-1]

    def as_dict(self) -> dict[str, Any]:
        with self._lock:
            if self.count == 0:
                return {"count": 0}
            mean_ms = (self.total_s / self.count) * 1000.0
            return {
                "count": self.count,
                "mean_ms": round(mean_ms, 3),
                "min_ms": round((self.min_s or 0.0) * 1000.0, 3),
                "max_ms": round((self.max_s or 0.0) * 1000.0, 3),
                "p50_ms": self._percentile_locked(0.50),
                "p90_ms": self._percentile_locked(0.90),
                "p99_ms": self._percentile_locked(0.99),
                "buckets_ms": {
                    str(int(bound)): count
                    for bound, count in zip(BUCKET_BOUNDS_MS, self._counts)
                    if count
                },
                "overflow": self._counts[-1],
            }


class MethodMetrics:
    """Per-method latency histograms plus ok/error counts.

    Only known method names get their own series (the same unbounded-peer
    guard as the service's request counters); everything else lands in the
    ``<unknown>`` bucket.
    """

    def __init__(self, known_methods: tuple[str, ...] = ()) -> None:
        self._known = frozenset(known_methods)
        self._lock = threading.Lock()
        self._series: dict[str, LatencyHistogram] = {}
        self._ok: dict[str, int] = {}
        self._errors: dict[str, int] = {}

    def record(self, method: Optional[str], seconds: float, *, ok: bool) -> None:
        key = method if (method in self._known) else "<unknown>"
        with self._lock:
            histogram = self._series.get(key)
            if histogram is None:
                histogram = self._series[key] = LatencyHistogram()
            counter = self._ok if ok else self._errors
            counter[key] = counter.get(key, 0) + 1
        histogram.record(seconds)

    def as_dict(self) -> dict[str, Any]:
        with self._lock:
            series = dict(self._series)
            ok = dict(self._ok)
            errors = dict(self._errors)
        return {
            method: {
                "ok": ok.get(method, 0),
                "errors": errors.get(method, 0),
                "latency": histogram.as_dict(),
            }
            for method, histogram in sorted(series.items())
        }
