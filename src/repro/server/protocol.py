"""Wire protocol of the compile service: envelopes and error encoding.

One request/response shape serves both transports of :mod:`repro.server.
transport` (newline-delimited JSON over TCP, and the same JSON document as
the body of an HTTP/1.1 ``POST``):

Request::

    {"id": 7, "method": "get_ir", "params": {"design": "q19"}}

``id`` is optional and echoed back verbatim (clients use it to pair
responses on a pipelined connection); ``params`` defaults to ``{}``.

Success response::

    {"id": 7, "ok": true, "result": {"design": "q19", "ir": "...", ...}}

Error response::

    {"id": 7, "ok": false,
     "error": {"type": "TydiSyntaxError", "stage": "parse",
               "message": "...", "rendered": "file.td:3:7: ...",
               "span": "file.td:3:7"}}

The ``error`` object is a structured :class:`~repro.errors.TydiError`: the
concrete exception class name, its pipeline ``stage`` tag, the raw message
and the location-annotated rendering -- everything a remote caller needs to
report the failure exactly as the in-process toolchain would.  Non-Tydi
exceptions are reported with ``stage: "internal"``; protocol violations
(malformed envelope, unknown method, bad parameters) use ``stage:
"server"`` via :class:`~repro.errors.TydiServerError`.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro.errors import TydiError, TydiServerError, did_you_mean

#: Bump on incompatible envelope changes; ``ping`` reports it so clients can
#: detect a mismatched server before issuing real requests.
PROTOCOL_VERSION = 1

#: Hard bound on one serialized request/response line (NDJSON framing reads
#: whole lines into memory; 64 MiB comfortably holds any TPC-H design yet
#: stops a malicious or broken peer from ballooning the server).
MAX_MESSAGE_BYTES = 64 * 1024 * 1024


class RemoteCompileError(TydiServerError):
    """A structured error envelope received from the server.

    Raised by :class:`repro.server.client.CompileClient` when a response
    carries ``ok: false``.  ``remote_type`` and ``remote_stage`` preserve
    the server-side exception identity (e.g. ``TydiSyntaxError`` /
    ``parse``) so callers can branch on *which stage* rejected the design
    without string-matching the message; ``envelope`` is the raw error
    object for anything else.
    """

    def __init__(self, error: Mapping[str, Any]) -> None:
        self.envelope = dict(error)
        self.remote_type = str(error.get("type") or "TydiError")
        self.remote_stage = str(error.get("stage") or "general")
        rendered = str(error.get("rendered") or error.get("message") or "remote error")
        super().__init__(rendered)
        # Report the *remote* stage (parse, drc, ...), not this class's
        # "server" tag: the caller cares which pipeline stage failed.
        self.stage = self.remote_stage


def encode_error(exc: BaseException) -> dict[str, Any]:
    """The structured error object for one raised exception."""
    if isinstance(exc, TydiError):
        return {
            "type": type(exc).__name__,
            "stage": exc.stage,
            "message": exc.message,
            "rendered": exc.render(),
            "span": str(exc.span) if exc.span is not None else None,
        }
    return {
        "type": type(exc).__name__,
        "stage": "internal",
        "message": str(exc),
        "rendered": f"{type(exc).__name__}: {exc}",
        "span": None,
    }


def success_envelope(request_id: Any, result: Mapping[str, Any]) -> dict[str, Any]:
    return {"id": request_id, "ok": True, "result": dict(result)}


def error_envelope(request_id: Any, exc: BaseException) -> dict[str, Any]:
    return {"id": request_id, "ok": False, "error": encode_error(exc)}


def parse_request(message: Any) -> tuple[Any, str, dict[str, Any]]:
    """Validate one decoded request document into ``(id, method, params)``.

    Raises :class:`~repro.errors.TydiServerError` (stage ``server``) on any
    malformed shape; the caller turns that into an error envelope carrying
    whatever ``id`` could still be recovered.
    """
    if not isinstance(message, Mapping):
        raise TydiServerError(
            f"request must be a JSON object, got {type(message).__name__}"
        )
    method = message.get("method")
    if not isinstance(method, str) or not method:
        raise TydiServerError("request is missing the 'method' string")
    params = message.get("params", {})
    if not isinstance(params, Mapping):
        raise TydiServerError(
            f"'params' must be a JSON object, got {type(params).__name__}"
        )
    return message.get("id"), method, dict(params)


def recover_request_id(message: Any) -> Any:
    """The ``id`` of a request too malformed to fully parse (best effort)."""
    if isinstance(message, Mapping):
        return message.get("id")
    return None


def require_param(params: Mapping[str, Any], name: str, kind: type, method: str) -> Any:
    """One required, type-checked request parameter (server-stage errors)."""
    if name not in params:
        raise TydiServerError(f"{method}: missing required parameter {name!r}")
    value = params[name]
    if not isinstance(value, kind):
        raise TydiServerError(
            f"{method}: parameter {name!r} must be {kind.__name__}, "
            f"got {type(value).__name__}"
        )
    return value


def unknown_method_error(method: str, known: list[str]) -> TydiServerError:
    return TydiServerError(
        f"unknown method {method!r}{did_you_mean(method, known)} "
        f"(methods: {', '.join(known)})"
    )


def unknown_params_check(
    params: Mapping[str, Any], allowed: tuple[str, ...], method: str
) -> None:
    """Reject unexpected parameter names (typos fail loudly, not silently)."""
    for name in params:
        if name not in allowed:
            raise TydiServerError(
                f"{method}: unknown parameter {name!r}"
                f"{did_you_mean(name, allowed)}"
                + (f" (parameters: {', '.join(allowed)})" if allowed else " (no parameters)")
            )


def coerce_options(value: Any, method: str) -> Optional[dict[str, Any]]:
    """Validate an ``options`` parameter shape (content is validated by
    :meth:`repro.lang.compile.CompileOptions.from_kwargs` downstream).

    JSON has no tuples, so list-valued fields (``targets``, ``top_args``)
    arrive as lists -- ``CompileOptions`` normalises them.  ``backend_options``
    mappings pass through :func:`repro.lang.compile.normalize_backend_options`
    the same way.
    """
    if value is None:
        return None
    if not isinstance(value, Mapping):
        raise TydiServerError(
            f"{method}: 'options' must be a JSON object, got {type(value).__name__}"
        )
    return dict(value)
