"""Command-line interface: ``tydi-serve``.

The daemon face of the compile service (:mod:`repro.server`):

.. code-block:: console

    $ tydi-serve serve --port 4780 --jobs 4 --cache-dir .tydi-cache &
    tydi-serve: listening on 127.0.0.1:4780 (jobs=4)

    $ tydi-serve request open_design --port 4780 \\
          --param design=adder --file adder.td
    $ tydi-serve request get_ir --port 4780 --param design=adder
    $ tydi-serve shutdown --port 4780

``serve`` runs one :class:`~repro.server.service.CompileService` over one
shared :class:`~repro.workspace.Workspace` until a client sends
``shutdown`` (or the process receives SIGINT/SIGTERM).  ``request`` sends
one request and prints the raw response envelope as JSON -- the scripting
primitive the CI smoke test builds on; ``--param key=value`` values parse
as JSON when they can (so ``--param replace=true`` is a boolean) and fall
back to plain strings, ``--file path.td`` attaches source files to an
``open_design``.  ``shutdown`` is sugar for ``request shutdown``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import signal
import sys
from typing import Any


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tydi-serve",
        description="Run or talk to the Tydi-lang compile service.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the compile daemon until shutdown")
    _add_endpoint_args(serve)
    serve.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="compile thread-pool width (default: CPU count, capped at 8)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="fork N compile worker processes and shard designs across them "
        "by stable name hash (0, the default: compile in-process on the "
        "--jobs thread pool)",
    )
    serve.add_argument(
        "--parse-jobs",
        type=int,
        default=None,
        metavar="N",
        help="pre-warm the per-file AST cache on open_design by parsing "
        "cold files across N worker processes (default: off; the first "
        "compile parses serially through the cache as before)",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-addressed compilation cache directory shared with tydi-compile",
    )
    serve.add_argument(
        "--max-cache-mb",
        type=float,
        default=None,
        metavar="MB",
        help="bound the on-disk cache to this many megabytes (requires --cache-dir)",
    )
    serve.add_argument(
        "--remote-cache",
        default=None,
        metavar="HOST:PORT",
        help="shared remote L2 cache endpoint (a tydi-serve cache daemon); "
        "consulted after memory and disk miss, with write-behind upload; "
        "pool workers each dial the same endpoint",
    )
    serve.add_argument(
        "--profile-stages",
        action="store_true",
        help="record per-stage wall/CPU timings in this daemon (and its "
        "pool workers); exposed under the stats endpoint's "
        "workspace.profiling block",
    )

    cache = sub.add_parser(
        "cache", help="run the shared remote cache daemon until SIGINT"
    )
    cache.add_argument("--host", default="127.0.0.1", help="bind address")
    cache.add_argument(
        "--port",
        type=int,
        default=None,
        help="TCP port (default: 4781; 0 for an ephemeral port)",
    )
    cache.add_argument(
        "--max-mb",
        type=float,
        default=None,
        metavar="MB",
        help="in-memory store budget in megabytes (LRU-evicted; default: 512)",
    )

    request = sub.add_parser("request", help="send one request, print the JSON envelope")
    request.add_argument("method", help="request method (e.g. ping, get_ir, stats)")
    _add_endpoint_args(request)
    request.add_argument(
        "--param",
        action="append",
        dest="params",
        default=None,
        metavar="KEY=VALUE",
        help="one request parameter; VALUE parses as JSON when it can "
        "(--param replace=true), else as a plain string; repeatable",
    )
    request.add_argument(
        "--json",
        dest="params_json",
        default=None,
        metavar="PARAMS",
        help="the whole params object as one JSON document (merged under --param)",
    )
    request.add_argument(
        "--file",
        action="append",
        dest="files",
        default=None,
        metavar="PATH",
        help="attach a source file as files[PATH] (for open_design); repeatable",
    )
    request.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="request timeout (default: 60)",
    )
    for command in (request,):
        command.add_argument(
            "--retry-for",
            type=float,
            default=5.0,
            metavar="SECONDS",
            help="keep retrying a refused connection for this long -- covers "
            "the race against a daemon still binding (default: 5)",
        )

    shutdown = sub.add_parser("shutdown", help="ask a running daemon to stop")
    _add_endpoint_args(shutdown)
    shutdown.add_argument(
        "--retry-for",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="connect retry window (default: 0 -- a dead daemon fails fast)",
    )
    return parser


def _add_endpoint_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1", help="bind/connect address")
    parser.add_argument(
        "--port",
        type=int,
        default=4780,
        help="TCP port (default: 4780; serve accepts 0 for an ephemeral port)",
    )


def _run_serve(args: argparse.Namespace) -> int:
    from repro.errors import TydiError
    from repro.server.service import CompileService
    from repro.server.transport import serve

    if args.profile_stages:
        import os

        from repro.profiling import ENV_VAR, enable_profiling

        # The env var (read at import time) makes forked/spawned pool
        # workers profile too; enable_profiling() covers this process.
        os.environ[ENV_VAR] = "1"
        enable_profiling()

    try:
        service = CompileService(
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            max_cache_mb=args.max_cache_mb,
            remote_cache=args.remote_cache,
            workers=args.workers,
            parse_jobs=args.parse_jobs,
        )
    except (TydiError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    def announce(server) -> None:
        host, port = server.address
        mode = f"workers={args.workers}" if args.workers else f"jobs={service.jobs}"
        print(f"tydi-serve: listening on {host}:{port} ({mode})", flush=True)

    async def main() -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, service.shutdown_requested.set)
            except (NotImplementedError, RuntimeError, ValueError):
                # Non-Unix loop, or not the main thread (tests): Ctrl-C
                # still lands as KeyboardInterrupt.
                pass
        await serve(service, host=args.host, port=args.port, on_ready=announce)

    try:
        asyncio.run(main())
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    print("tydi-serve: stopped", flush=True)
    return 0


def _parse_param_value(text: str) -> Any:
    try:
        return json.loads(text)
    except ValueError:
        return text


def _collect_params(args: argparse.Namespace) -> dict[str, Any]:
    params: dict[str, Any] = {}
    if args.params_json:
        try:
            document = json.loads(args.params_json)
        except ValueError as exc:
            raise SystemExit(f"error: --json is not valid JSON: {exc}")
        if not isinstance(document, dict):
            raise SystemExit("error: --json must be a JSON object")
        params.update(document)
    for spec in args.params or ():
        key, sep, value = spec.partition("=")
        if not sep or not key:
            raise SystemExit(f"error: --param expects KEY=VALUE, got {spec!r}")
        params[key] = _parse_param_value(value)
    if args.files:
        files = dict(params.get("files") or {})
        for path_text in args.files:
            path = pathlib.Path(path_text)
            try:
                files[str(path)] = path.read_text()
            except OSError as exc:
                raise SystemExit(f"error: cannot read {path}: {exc.strerror or exc}")
        params["files"] = files
    return params


def _run_request(args: argparse.Namespace, method: str, params: dict[str, Any]) -> int:
    from repro.errors import TydiServerError
    from repro.server.client import CompileClient

    timeout = getattr(args, "timeout", 60.0)
    retry_for = getattr(args, "retry_for", 0.0)
    try:
        with CompileClient(
            args.host, args.port, timeout=timeout, connect_retry_for=retry_for
        ) as client:
            envelope = client.request_envelope(method, params)
    except TydiServerError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(envelope, indent=2, sort_keys=True))
    return 0 if envelope.get("ok") else 1


def _run_cache(args: argparse.Namespace) -> int:
    from repro.server.cachesvc import main as cachesvc_main

    forwarded = ["--host", args.host]
    if args.port is not None:
        forwarded += ["--port", str(args.port)]
    if args.max_mb is not None:
        forwarded += ["--max-mb", str(args.max_mb)]
    return cachesvc_main(forwarded)


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "cache":
        return _run_cache(args)
    if args.command == "shutdown":
        return _run_request(args, "shutdown", {})
    return _run_request(args, args.method, _collect_params(args))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
