"""Pluggable output backends for the Tydi-IR -> artefact boundary.

The paper's Figure 1 pipeline ends at one hard-coded target ("Tydi IR ->
backend -> VHDL"); the companion IR paper frames Tydi-IR as a composable
artefact consumed by *multiple* independent backends.  This package makes
that boundary pluggable:

* :mod:`repro.backends.base` -- the :class:`Backend` protocol (name,
  frozen options dataclass, ``emit(project) -> {filename: text}`` with
  per-implementation ``emit_unit`` granularity) and
  :func:`implementation_fingerprint`, the content address the
  backend-output cache keys units by.
* :mod:`repro.backends.registry` -- name -> backend lookup with
  ``repro.backends`` entry-point discovery for third-party emitters.
* Built-ins: ``vhdl`` (:mod:`repro.backends.vhdl`), ``verilog``
  (:mod:`repro.backends.verilog`), ``ir`` (:mod:`repro.backends.ir_text`),
  ``tydi-ir`` (:mod:`repro.backends.tydi_ir`) and ``dot``
  (:mod:`repro.backends.dot`).

The compile pipeline threads targets through every layer: ``compile_sources
(..., targets=("vhdl", "dot"))`` runs a backend stage whose
per-implementation outputs the :class:`~repro.pipeline.stages.StageCache`
memoises, ``CompileJob.targets`` carries them through the batch and
incremental drivers, and the CLI exposes ``--target`` / ``--list-backends``.
See ``docs/backends.md``.
"""

from repro.backends.base import Backend, BackendOptions, implementation_fingerprint
from repro.backends.options import (
    coerce_option_value,
    option_schema,
    options_for_backend,
    parse_backend_opt_specs,
)
from repro.backends.registry import (
    ENTRY_POINT_GROUP,
    available_backends,
    backend_class,
    get_backend,
    iter_backends,
    register_backend,
    unregister_backend,
)

# Importing the built-in modules registers them.
from repro.backends.dot import DotBackend, DotBackendOptions
from repro.backends.ir_text import IrTextBackend, IrTextBackendOptions
from repro.backends.tydi_ir import TydiIrBackend, TydiIrBackendOptions
from repro.backends.verilog import VerilogBackendOptions, VerilogFilesBackend
from repro.backends.vhdl import VhdlBackendOptions, VhdlFilesBackend

__all__ = [
    "Backend",
    "BackendOptions",
    "DotBackend",
    "DotBackendOptions",
    "ENTRY_POINT_GROUP",
    "IrTextBackend",
    "IrTextBackendOptions",
    "TydiIrBackend",
    "TydiIrBackendOptions",
    "VerilogBackendOptions",
    "VerilogFilesBackend",
    "VhdlBackendOptions",
    "VhdlFilesBackend",
    "available_backends",
    "backend_class",
    "coerce_option_value",
    "get_backend",
    "implementation_fingerprint",
    "iter_backends",
    "option_schema",
    "options_for_backend",
    "parse_backend_opt_specs",
    "register_backend",
    "unregister_backend",
]
