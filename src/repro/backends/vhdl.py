"""The registered ``vhdl`` backend: Tydi-IR to VHDL, one file per unit.

Wraps the bespoke emission engine (:class:`repro.vhdl.backend.VhdlBackend`)
in the :class:`~repro.backends.base.Backend` protocol:

* shared file: the ``<project>_pkg.vhd`` declarations package,
* per-implementation unit: ``<impl>.vhd`` (entity + architecture),

assembled by the default sorted merge -- which is exactly what the legacy
``generate_vhdl(project)`` shim returns.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backends.base import Backend, BackendOptions
from repro.backends.registry import register_backend
from repro.errors import TydiBackendError
from repro.ir.model import Implementation, Project


@dataclass(frozen=True)
class VhdlBackendOptions(BackendOptions):
    """Options of the ``vhdl`` backend (none yet; placeholder for e.g. a
    VHDL-standard selector, kept so option plumbing is exercised)."""


@register_backend
class VhdlFilesBackend(Backend):
    """Emit one VHDL file per implementation plus the project package."""

    name = "vhdl"
    description = "VHDL entities/architectures, one file per implementation"
    options_type = VhdlBackendOptions

    def emit_shared(self, project: Project) -> dict[str, str]:
        if not project.implementations:
            raise TydiBackendError("cannot generate VHDL for an empty project")
        from repro.vhdl.backend import VhdlBackend
        from repro.vhdl.signals import vhdl_identifier

        return {f"{vhdl_identifier(project.name)}_pkg.vhd": VhdlBackend(project).package_file()}

    def emit_unit(self, project: Project, implementation: Implementation) -> dict[str, str]:
        from repro.vhdl.backend import VhdlBackend

        return {
            f"{implementation.name}.vhd": VhdlBackend(project).implementation_file(implementation)
        }
