"""The registered ``verilog`` backend: Tydi-IR to Verilog, one file per unit.

Wraps the Verilog emission engine (:class:`repro.verilog.backend.
VerilogBackend`) in the :class:`~repro.backends.base.Backend` protocol with
the same decomposition as the ``vhdl`` backend:

* shared file: the ``<project>_defs.vh`` documentation header,
* per-implementation unit: ``<impl>.v`` (module with ready/valid port
  groups),

assembled by the default sorted merge -- which is exactly what the
``generate_verilog(project)`` shim returns.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backends.base import Backend, BackendOptions
from repro.backends.registry import register_backend
from repro.errors import TydiBackendError
from repro.ir.model import Implementation, Project


@dataclass(frozen=True)
class VerilogBackendOptions(BackendOptions):
    """Options of the ``verilog`` backend (none yet; placeholder for e.g. a
    SystemVerilog-mode switch, kept so option plumbing is exercised)."""


@register_backend
class VerilogFilesBackend(Backend):
    """Emit one Verilog module per implementation plus the defs header."""

    name = "verilog"
    description = "Verilog modules with ready/valid stream groups, one file per implementation"
    options_type = VerilogBackendOptions

    def emit_shared(self, project: Project) -> dict[str, str]:
        if not project.implementations:
            raise TydiBackendError("cannot generate Verilog for an empty project")
        from repro.verilog.backend import VerilogBackend
        from repro.vhdl.signals import vhdl_identifier

        return {
            f"{vhdl_identifier(project.name)}_defs.vh": VerilogBackend(project).defs_file()
        }

    def emit_unit(self, project: Project, implementation: Implementation) -> dict[str, str]:
        from repro.verilog.backend import VerilogBackend

        return {
            f"{implementation.name}.v": VerilogBackend(project).implementation_file(
                implementation
            )
        }
