"""The registered ``ir`` backend: textual Tydi-IR emission.

The legacy path (:func:`repro.ir.emit.emit_project`) renders the whole
project in one pass.  This backend produces the *same bytes* from cacheable
pieces: every implementation section is a per-implementation unit (one
pseudo-file), and :meth:`~IrTextBackend.assemble` interleaves the shared
prelude (header, named type declarations, streamlets), the unit sections in
project order, and the ``top`` trailer with the exact separators
``emit_project`` uses.  The differential suite proves the equality over
fuzzed designs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.backends.base import Backend, BackendOptions
from repro.backends.registry import register_backend
from repro.ir.model import Implementation, Project


def _unit_filename(implementation_name: str) -> str:
    return f"impl/{implementation_name}.tir-frag"


@dataclass(frozen=True)
class IrTextBackendOptions(BackendOptions):
    """Options of the ``ir`` backend (none yet)."""


@register_backend
class IrTextBackend(Backend):
    """Emit the project as one ``<project>.tir`` textual Tydi-IR file."""

    name = "ir"
    description = "textual Tydi-IR, the inspectable Figure-1 intermediate artefact"
    options_type = IrTextBackendOptions

    def emit_unit(self, project: Project, implementation: Implementation) -> dict[str, str]:
        from repro.ir.emit import emit_implementation

        return {_unit_filename(implementation.name): emit_implementation(implementation)}

    def assemble(
        self,
        project: Project,
        shared: Mapping[str, str],
        units: Mapping[str, Mapping[str, str]],
    ) -> dict[str, str]:
        from repro.ir.emit import (
            emit_streamlet,
            emit_type_declaration,
            named_type_declarations,
        )

        sections: list[str] = [f"// Tydi-IR for project {project.name}"]
        for logical_type in named_type_declarations(project).values():
            sections.append(emit_type_declaration(logical_type))
        for streamlet in project.streamlets.values():
            sections.append(emit_streamlet(streamlet))
        for implementation_name in project.implementations:
            sections.append(units[implementation_name][_unit_filename(implementation_name)])
        if project.top:
            sections.append(f"top {project.top};")
        return {f"{project.name}.tir": "\n\n".join(sections) + "\n"}
