"""Backend registry: name -> :class:`~repro.backends.base.Backend` lookup.

Built-in backends register themselves at import time through
:func:`register_backend`; third-party packages can join the registry
without touching this repository by declaring an entry point in the
``repro.backends`` group::

    [project.entry-points."repro.backends"]
    verilog = "my_pkg.verilog:VerilogBackend"

Entry points are resolved lazily on the first lookup that misses the
in-process table, so an installed plugin shows up in
``tydi-compile --list-backends`` with no configuration.  Lookup failures
raise :class:`~repro.errors.TydiBackendError` naming the available
backends, which is also what the CLI prints for an unknown ``--target``.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.backends.base import Backend, BackendOptions
from repro.errors import TydiBackendError

#: Entry-point group third-party backends register under.
ENTRY_POINT_GROUP = "repro.backends"

_REGISTRY: dict[str, type[Backend]] = {}
_ENTRY_POINTS_LOADED = False


def register_backend(backend_class: type[Backend]) -> type[Backend]:
    """Register a backend class under its ``name`` (usable as a decorator).

    Re-registering the *same* class is a no-op; a different class under an
    already-taken name is an error -- silently shadowing an emitter would
    make cached outputs ambiguous.
    """
    name = backend_class.name
    if not name:
        raise TydiBackendError(f"backend class {backend_class.__name__} has no name")
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not backend_class:
        raise TydiBackendError(
            f"backend name {name!r} is already registered to {existing.__name__}"
        )
    _REGISTRY[name] = backend_class
    return backend_class


def unregister_backend(name: str) -> None:
    """Remove a backend from the registry (test isolation helper)."""
    _REGISTRY.pop(name, None)


def _load_entry_points() -> None:
    """Fold ``repro.backends`` entry points into the registry, once."""
    global _ENTRY_POINTS_LOADED
    if _ENTRY_POINTS_LOADED:
        return
    _ENTRY_POINTS_LOADED = True
    try:
        from importlib.metadata import entry_points
    except ImportError:  # pragma: no cover - stdlib on every supported version
        return
    try:
        discovered = entry_points(group=ENTRY_POINT_GROUP)
    except Exception:  # pragma: no cover - malformed installed metadata
        return
    for entry in discovered:
        if entry.name in _REGISTRY:
            continue  # built-ins (and earlier plugins) win
        try:
            loaded = entry.load()
        except Exception:  # pragma: no cover - a broken plugin must not
            continue  # take down every other backend
        if isinstance(loaded, type) and issubclass(loaded, Backend):
            _REGISTRY.setdefault(entry.name, loaded)


def backend_class(name: str) -> type[Backend]:
    """The registered backend class for ``name``."""
    cls = _REGISTRY.get(name)
    if cls is None:
        _load_entry_points()
        cls = _REGISTRY.get(name)
    if cls is None:
        known = ", ".join(available_backends()) or "none"
        raise TydiBackendError(f"unknown backend {name!r} (available: {known})")
    return cls


def get_backend(name: str, options: Optional[BackendOptions] = None) -> Backend:
    """Instantiate the backend registered under ``name``."""
    return backend_class(name)(options)


def available_backends() -> list[str]:
    """Sorted names of every registered backend (entry points included)."""
    _load_entry_points()
    return sorted(_REGISTRY)


def iter_backends() -> Iterator[type[Backend]]:
    """Registered backend classes in name order."""
    for name in available_backends():
        yield _REGISTRY[name]
