"""The registered ``dot`` backend: a Graphviz netlist of the design.

Renders every implementation as a cluster -- streamlet instances as boxes,
the implementation's own ports as ovals, connections as edges (dashed when
inserted by sugaring) -- producing one ``<project>.dot`` document that
``dot -Tsvg`` turns into a browsable netlist::

    tydi-compile --target dot q19.td | dot -Tsvg > q19.svg

The bottleneck/deadlock analyses use the ``highlight`` option to paint the
components their reports point at (:meth:`repro.sim.bottleneck.
BottleneckReport.to_dot`), which is the graph a designer actually wants
next to a congestion ranking.

Each cluster is one per-implementation unit, so a warm backend-output
cache re-renders only the implementations an edit touched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.backends.base import Backend, BackendOptions
from repro.backends.registry import register_backend
from repro.ir.model import Implementation, Project

#: Fill colour of highlighted nodes (congested / deadlocked components).
_HIGHLIGHT_COLOR = "#f4a6a6"


def _quote(text: str) -> str:
    """A DOT double-quoted string literal (newlines become label breaks)."""
    escaped = text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    return '"' + escaped + '"'


def _unit_filename(implementation_name: str) -> str:
    return f"cluster/{implementation_name}.dot-frag"


@dataclass(frozen=True)
class DotBackendOptions(BackendOptions):
    """Options of the ``dot`` backend.

    rankdir:
        Graph layout direction (``LR`` reads like a dataflow pipeline).
    highlight:
        Instance or implementation names to fill (the sim reports pass the
        components they rank here).
    show_types:
        Label edges with the source port's logical type.
    """

    rankdir: str = "LR"
    highlight: tuple[str, ...] = ()
    show_types: bool = True


def render_highlighted(project: Project, endpoints) -> str:
    """The project netlist with the named components painted.

    The shared tail of the sim-report consumers
    (:meth:`repro.sim.bottleneck.BottleneckReport.to_dot`,
    :meth:`repro.sim.deadlock.DeadlockReport.to_dot`): each endpoint --
    a component path or an ``instance.port`` string -- is normalised to
    its component name (the sim's synthetic ``top`` scope is dropped),
    deduplicated preserving order, and passed as the ``highlight`` option.
    """
    from repro.backends.registry import get_backend

    highlight: list[str] = []
    for endpoint in endpoints:
        component = endpoint.split(".")[0]
        if component and component != "top" and component not in highlight:
            highlight.append(component)
    backend = get_backend("dot", DotBackendOptions(highlight=tuple(highlight)))
    return "".join(backend.emit(project).values())


@register_backend
class DotBackend(Backend):
    """Emit the project as one Graphviz ``digraph`` netlist."""

    name = "dot"
    description = "Graphviz netlist of streamlet instances and connections"
    options_type = DotBackendOptions

    def _is_highlighted(self, *names: str) -> bool:
        return any(name in self.options.highlight for name in names)

    def _node_attrs(self, label: str, shape: str, *names: str) -> str:
        attrs = [f"label={_quote(label)}", f"shape={shape}"]
        if self._is_highlighted(*names):
            attrs.append("style=filled")
            attrs.append(f"fillcolor={_quote(_HIGHLIGHT_COLOR)}")
        return ", ".join(attrs)

    def emit_unit(self, project: Project, implementation: Implementation) -> dict[str, str]:
        streamlet = project.streamlet_of(implementation)
        prefix = implementation.name
        lines = [
            f"  subgraph {_quote(f'cluster_{prefix}')} {{",
            f"    label={_quote(f'{implementation.name} : {streamlet.name}')};",
        ]
        if implementation.external:
            from repro.stdlib.components import primitive_kind

            kind = primitive_kind(implementation) or "blackbox"
            attrs = self._node_attrs(
                f"{implementation.name}\n(external {kind})",
                "component",
                implementation.name,
                streamlet.name,
            )
            lines.append(f"    {_quote(prefix)} [{attrs}];")
        else:
            for port in streamlet.ports:
                attrs = self._node_attrs(
                    f"{port.name} {port.direction}", "oval", f"{prefix}.{port.name}"
                )
                lines.append(f"    {_quote(f'{prefix}.port.{port.name}')} [{attrs}];")
            for instance in implementation.instances:
                inner_impl = project.implementation(instance.implementation)
                inner_streamlet = project.streamlet_of(inner_impl)
                attrs = self._node_attrs(
                    f"{instance.name}\n{inner_streamlet.name}",
                    "box",
                    instance.name,
                    instance.implementation,
                    f"{prefix}.{instance.name}",
                )
                lines.append(f"    {_quote(f'{prefix}.{instance.name}')} [{attrs}];")
            for connection in implementation.connections:
                source_id = (
                    f"{prefix}.{connection.source.instance}"
                    if connection.source.instance
                    else f"{prefix}.port.{connection.source.port}"
                )
                sink_id = (
                    f"{prefix}.{connection.sink.instance}"
                    if connection.sink.instance
                    else f"{prefix}.port.{connection.sink.port}"
                )
                attrs = [
                    f"taillabel={_quote(connection.source.port)}",
                    f"headlabel={_quote(connection.sink.port)}",
                ]
                if self.options.show_types:
                    source_port = project.resolve_port(implementation, connection.source)
                    attrs.append(f"label={_quote(source_port.logical_type.to_tydi())}")
                if connection.synthesized:
                    attrs.append("style=dashed")
                lines.append(f"    {_quote(source_id)} -> {_quote(sink_id)} [{', '.join(attrs)}];")
        lines.append("  }")
        return {_unit_filename(implementation.name): "\n".join(lines)}

    def assemble(
        self,
        project: Project,
        shared: Mapping[str, str],
        units: Mapping[str, Mapping[str, str]],
    ) -> dict[str, str]:
        lines = [
            f"digraph {_quote(project.name)} {{",
            f"  rankdir={_quote(self.options.rankdir)};",
            "  labelloc=\"t\";",
            f"  label={_quote(f'Tydi netlist: {project.name}')};",
            "  node [fontsize=10, fontname=\"Helvetica\"];",
            "  edge [fontsize=8, fontname=\"Helvetica\"];",
        ]
        for implementation_name in project.implementations:
            lines.append(units[implementation_name][_unit_filename(implementation_name)])
        lines.append("}")
        return {f"{project.name}.dot": "\n".join(lines) + "\n"}
