"""The backend protocol: how one Tydi-IR project becomes one output set.

The paper's Figure 1 ends at a single hard-coded target ("Tydi IR ->
backend -> VHDL"), but the IR is explicitly a *composable* artefact: any
number of independent emitters can consume the same
:class:`~repro.ir.model.Project`.  This module defines the contract they
share:

* a :class:`Backend` turns a project into ``{filename: text}``,
* emission is decomposed into **per-implementation units**
  (:meth:`Backend.emit_unit`) plus **project-level shared files**
  (:meth:`Backend.emit_shared`), joined by :meth:`Backend.assemble` --
  which is what makes backend output cacheable at implementation
  granularity (see :meth:`repro.pipeline.stages.StageCache.emit_backend`),
* every backend carries a frozen options dataclass
  (:class:`BackendOptions`) whose :meth:`~BackendOptions.token`
  participates in cache keys, and
* :func:`implementation_fingerprint` provides the stable content address
  of everything one implementation's unit output may depend on.

Backends must be **pure**: the same project and options always produce the
same files (the property the hypothesis suite in
``tests/test_backend_properties.py`` asserts for every registered backend).
"""

from __future__ import annotations

import dataclasses
import hashlib
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import ClassVar, Mapping, Optional

from repro.errors import TydiBackendError
from repro.ir.model import Implementation, Port, Project, Streamlet


@dataclass(frozen=True)
class BackendOptions:
    """Base options dataclass; backends subclass it with their own fields.

    Options are frozen so one instance can serve as (part of) a cache key:
    :meth:`token` renders every field deterministically and participates in
    the per-implementation backend-output fingerprint.
    """

    def token(self) -> str:
        """Stable, order-independent rendering of all option fields."""
        fields = dataclasses.asdict(self)
        inner = ",".join(f"{name}={fields[name]!r}" for name in sorted(fields))
        return f"{type(self).__name__}({inner})"


class Backend(ABC):
    """One registered output target of the toolchain.

    Subclasses define :attr:`name` (the ``--target`` spelling), a short
    :attr:`description` for ``--list-backends``, and the per-implementation
    :meth:`emit_unit`; project-level files and custom composition are
    optional overrides.  The composition law

    ``emit(project) == assemble(project, emit_shared(project),
    {name: emit_unit(project, impl) for every implementation})``

    is fixed (``emit`` is implemented exactly that way), which is what lets
    the per-stage cache substitute memoised unit outputs without changing
    the assembled result.
    """

    #: Registry name (the ``--target`` value).
    name: ClassVar[str] = ""
    #: One-line description shown by ``tydi-compile --list-backends``.
    description: ClassVar[str] = ""
    #: The options dataclass this backend accepts.
    options_type: ClassVar[type] = BackendOptions

    def __init__(self, options: Optional[BackendOptions] = None) -> None:
        if options is None:
            options = self.options_type()
        if not isinstance(options, self.options_type):
            raise TydiBackendError(
                f"backend {self.name!r} expects {self.options_type.__name__} options, "
                f"got {type(options).__name__}"
            )
        self.options = options

    # -- the three composition pieces -----------------------------------------

    def emit_shared(self, project: Project) -> dict[str, str]:
        """Project-level files not attributable to one implementation."""
        return {}

    @abstractmethod
    def emit_unit(self, project: Project, implementation: Implementation) -> dict[str, str]:
        """The output files contributed by one implementation.

        The returned texts may depend only on the implementation's emission
        subgraph -- the implementation itself, its streamlet, and the
        streamlets/implementations of its direct instances -- everything
        covered by :func:`implementation_fingerprint`.  Depending on any
        other project state would make cached unit outputs stale.
        """

    def assemble(
        self,
        project: Project,
        shared: Mapping[str, str],
        units: Mapping[str, Mapping[str, str]],
    ) -> dict[str, str]:
        """Join shared files and per-implementation units into the output set.

        The default merges everything and returns the files sorted by name
        (deterministic regardless of dict insertion history); backends that
        interleave unit fragments into one document override this.
        """
        files: dict[str, str] = dict(shared)
        for impl_name in project.implementations:
            for filename, text in units[impl_name].items():
                if filename in files:
                    raise TydiBackendError(
                        f"backend {self.name!r} emitted duplicate file {filename!r} "
                        f"(implementation {impl_name!r})"
                    )
                files[filename] = text
        return dict(sorted(files.items()))

    # -- the public entry point ------------------------------------------------

    def emit(self, project: Project) -> dict[str, str]:
        """Emit the whole project: shared files + every implementation unit."""
        units = {
            name: self.emit_unit(project, implementation)
            for name, implementation in project.implementations.items()
        }
        return self.assemble(project, self.emit_shared(project), units)


# ---------------------------------------------------------------------------
# Implementation fingerprinting: the cache identity of one unit's inputs.
# ---------------------------------------------------------------------------


def _port_token(port: Port) -> str:
    attrs = ",".join(f"{key}={port.attributes[key]!r}" for key in sorted(port.attributes))
    return (
        f"{port.name}:{port.logical_type.to_tydi()}:{port.direction}"
        f":{port.clock_domain.name}:{attrs}"
    )


def _streamlet_token(streamlet: Streamlet) -> str:
    ports = ";".join(_port_token(port) for port in streamlet.ports)
    return f"streamlet {streamlet.name} doc={streamlet.documentation!r} ports[{ports}]"


def _metadata_token(metadata: Mapping[str, object]) -> str:
    return ",".join(f"{key}={metadata[key]!r}" for key in sorted(metadata))


def implementation_fingerprint(project: Project, implementation: Implementation) -> str:
    """Stable content address of one implementation's emission subgraph.

    Covers everything a backend's :meth:`~Backend.emit_unit` may read: the
    implementation (structure, documentation, metadata -- primitive kinds
    live there), its streamlet signature, each instantiated inner
    implementation with *its* streamlet signature (port maps and DOT labels
    need them), and every connection.  ``Implementation.simulation`` is
    deliberately excluded: behaviour specs drive the simulator, never
    emission.

    Two implementations with equal fingerprints produce byte-identical unit
    output under any backend, which is what keys the per-implementation
    backend-output cache.
    """
    parts = [
        f"impl {implementation.name} of {implementation.streamlet}",
        f"external={implementation.external}",
        f"doc={implementation.documentation!r}",
        f"meta={_metadata_token(implementation.metadata)}",
        _streamlet_token(project.streamlet_of(implementation)),
    ]
    for instance in implementation.instances:
        inner_impl = project.implementation(instance.implementation)
        parts.append(
            f"instance {instance.name}({instance.implementation}) "
            f"external={inner_impl.external} "
            f"meta={_metadata_token(inner_impl.metadata)} "
            f"imeta={_metadata_token(instance.metadata)} "
            + _streamlet_token(project.streamlet_of(inner_impl))
        )
    for connection in implementation.connections:
        conn_type = connection.logical_type.to_tydi() if connection.logical_type else "-"
        parts.append(
            f"conn {connection.source}=>{connection.sink} type={conn_type} "
            f"name={connection.name!r} structural={connection.structural} "
            f"synthesized={connection.synthesized}"
        )
    hasher = hashlib.sha256()
    hasher.update(b"tydi-impl-fingerprint-v1")
    for part in parts:
        hasher.update(b"\x00")
        hasher.update(part.encode())
    return hasher.hexdigest()
