"""The registered ``tydi-ir`` backend: canonical interchange emission.

Unlike the ``ir`` backend (a human-oriented report with abbreviated type
references), this backend emits the *complete* interchange form of
:mod:`repro.interchange` -- the document :func:`repro.interchange.parse.
load_ir` parses back into an identical :class:`~repro.ir.model.Project`.

It follows the same composition law as every other backend: each
implementation block is a per-implementation unit (cacheable at
implementation granularity), and :meth:`~TydiIrBackend.assemble`
interleaves the prelude, the streamlet blocks, the unit blocks in project
order and the ``top`` trailer with the exact separators
:func:`repro.interchange.emit.emit_document` uses -- the differential suite
asserts the two paths byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.backends.base import Backend, BackendOptions
from repro.backends.registry import register_backend
from repro.ir.model import Implementation, Project


def _unit_filename(implementation_name: str) -> str:
    return f"impl/{implementation_name}.tydi-ir-frag"


@dataclass(frozen=True)
class TydiIrBackendOptions(BackendOptions):
    """Options of the ``tydi-ir`` backend (none yet; the format version is
    part of the document, not an option)."""


@register_backend
class TydiIrBackend(Backend):
    """Emit the project as one ``<project>.tir`` interchange document."""

    name = "tydi-ir"
    description = "canonical Tydi-IR interchange document, re-ingestable via load_ir"
    options_type = TydiIrBackendOptions

    def emit_unit(self, project: Project, implementation: Implementation) -> dict[str, str]:
        from repro.interchange.emit import emit_implementation_block

        return {_unit_filename(implementation.name): emit_implementation_block(implementation)}

    def assemble(
        self,
        project: Project,
        shared: Mapping[str, str],
        units: Mapping[str, Mapping[str, str]],
    ) -> dict[str, str]:
        from repro.interchange.emit import document_prelude, emit_streamlet_block

        sections: list[str] = [document_prelude(project)]
        for streamlet in project.streamlets.values():
            sections.append(emit_streamlet_block(streamlet))
        for implementation_name in project.implementations:
            sections.append(units[implementation_name][_unit_filename(implementation_name)])
        if project.top:
            sections.append(f"top {project.top};")
        return {f"{project.name}.tir": "\n\n".join(sections) + "\n"}
