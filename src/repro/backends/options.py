"""Building backend options dataclasses from untyped key/value input.

Backends declare their knobs as frozen dataclasses
(:class:`~repro.backends.base.BackendOptions` subclasses), but two callers
hold only strings or loose mappings:

* the CLI's repeatable ``--backend-opt name.key=value`` flag
  (:func:`parse_backend_opt_specs` turns the specs into a nested mapping),
* :class:`repro.lang.compile.CompileOptions`, whose ``backend_options``
  field accepts plain ``{"dot": {"rankdir": "TB"}}`` mappings
  (:func:`options_for_backend` turns one of them into the backend's real
  options instance).

Both reject unknown keys with a did-you-mean suggestion
(:class:`~repro.errors.TydiBackendError`) instead of failing later with an
opaque ``TypeError`` from the dataclass constructor, and string values are
coerced to the declared field's type (``bool``/``int``/``float``/tuple),
so ``--backend-opt dot.show_types=false`` does what it says.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence

from repro.errors import TydiBackendError, did_you_mean

_TRUE_WORDS = frozenset({"1", "true", "yes", "on"})
_FALSE_WORDS = frozenset({"0", "false", "no", "off"})


def _coerce_scalar(raw: str, template: object, *, context: str):
    """Coerce one string to the type of ``template`` (a field default)."""
    if isinstance(template, bool):
        word = raw.strip().lower()
        if word in _TRUE_WORDS:
            return True
        if word in _FALSE_WORDS:
            return False
        raise TydiBackendError(f"{context}: expected a boolean, got {raw!r}")
    if isinstance(template, int):
        try:
            return int(raw)
        except ValueError as exc:
            raise TydiBackendError(f"{context}: expected an integer, got {raw!r}") from exc
    if isinstance(template, float):
        try:
            return float(raw)
        except ValueError as exc:
            raise TydiBackendError(f"{context}: expected a number, got {raw!r}") from exc
    return raw


def coerce_option_value(raw: object, field: dataclasses.Field, *, context: str):
    """Coerce a raw (usually string) value to the type of one options field.

    Non-string values pass through untouched -- programmatic callers already
    hold typed values and the dataclass constructor is the authority.  For
    strings the field's *default value* supplies the target type (backend
    options are all-defaults dataclasses by design): booleans accept
    ``true/false/1/0/yes/no/on/off``, tuples split on commas (the empty
    string is the empty tuple) with elements coerced to the type of the
    default's first element.
    """
    if not isinstance(raw, str):
        return raw
    if field.default is dataclasses.MISSING and field.default_factory is dataclasses.MISSING:
        return raw
    default = (
        field.default
        if field.default is not dataclasses.MISSING
        else field.default_factory()  # type: ignore[misc]
    )
    if isinstance(default, tuple):
        if not raw:
            return ()
        element_template = default[0] if default else ""
        return tuple(
            _coerce_scalar(part.strip(), element_template, context=context)
            for part in raw.split(",")
        )
    return _coerce_scalar(raw, default, context=context)


def options_for_backend(backend_cls, values: Mapping[str, object]):
    """Build ``backend_cls.options_type`` from a loose ``{key: value}`` map.

    Unknown keys raise :class:`~repro.errors.TydiBackendError` naming the
    backend, the valid keys and a did-you-mean suggestion; string values are
    coerced via :func:`coerce_option_value`.
    """
    options_type = backend_cls.options_type
    fields = {field.name: field for field in dataclasses.fields(options_type)}
    resolved: dict[str, object] = {}
    for key, value in values.items():
        field = fields.get(key)
        if field is None:
            known = ", ".join(sorted(fields)) or "none"
            raise TydiBackendError(
                f"backend {backend_cls.name!r} has no option {key!r}"
                f"{did_you_mean(key, list(fields))} (valid options: {known})"
            )
        context = f"backend option {backend_cls.name}.{key}"
        resolved[key] = coerce_option_value(value, field, context=context)
    return options_type(**resolved)


def option_schema(backend_cls) -> list[dict[str, object]]:
    """Describe a backend's option knobs as JSON-ready ``{name, type, default}``.

    The introspection behind ``--list-backends`` and the served
    ``list_backends`` method: one entry per field of the backend's frozen
    options dataclass, in declaration order.  ``type`` is the name of the
    default value's runtime type (backend options are all-defaults
    dataclasses, so the default *is* the type authority -- the same rule
    :func:`coerce_option_value` applies to string input); ``default`` is
    the default value itself, with tuples rendered as lists so the entry
    survives a JSON round trip unchanged.
    """
    schema: list[dict[str, object]] = []
    for field in dataclasses.fields(backend_cls.options_type):
        default = (
            field.default
            if field.default is not dataclasses.MISSING
            else field.default_factory()  # type: ignore[misc]
        )
        schema.append(
            {
                "name": field.name,
                "type": type(default).__name__,
                "default": list(default) if isinstance(default, tuple) else default,
            }
        )
    return schema


def parse_backend_opt_specs(specs: Sequence[str]) -> dict[str, dict[str, str]]:
    """Parse repeatable ``name.key=value`` specs into ``{name: {key: value}}``.

    The CLI's ``--backend-opt`` grammar: everything before the first ``.`` is
    the backend name, everything between it and the first ``=`` is the option
    key, the rest is the raw value (which may itself contain ``=`` or ``.``).
    A repeated ``name.key`` keeps the last value, matching the usual
    last-flag-wins CLI convention.  Backend names and keys are validated by
    the caller (:func:`options_for_backend`), not here.
    """
    parsed: dict[str, dict[str, str]] = {}
    for spec in specs:
        head, eq, value = spec.partition("=")
        name, dot, key = head.partition(".")
        if not eq or not dot or not name or not key:
            raise TydiBackendError(
                f"malformed backend option {spec!r}: expected name.key=value "
                f"(e.g. dot.rankdir=TB)"
            )
        parsed.setdefault(name, {})[key] = value
    return parsed
