"""The ``Workspace``: one durable compiler session owning sources, options,
caches and artefact queries.

The paper's Figure-3 pipeline is batch-oriented -- sources in, artefacts
out -- but every long-lived consumer of a compiler (an editor, a build
service, a watch loop) holds the *same* project across many small edits and
asks for artefacts repeatedly.  A :class:`Workspace` is that session object,
in the query-style shape of persistent-project toolchains (the Tydi-lang
compiler manual structures the toolchain as a project the tools query;
Hardcaml exposes the design as a durable host-language object simulation
and emission are queries over):

* it owns a default :class:`~repro.lang.compile.CompileOptions` and the
  cache stack (a :class:`~repro.pipeline.cache.CompilationCache` with its
  per-stage :class:`~repro.pipeline.stages.StageCache`, built internally
  from one ``cache_dir=`` / ``max_cache_mb=`` pair),
* it holds a named set of **designs**, each a ``{filename: source_text}``
  store plus options, mutated at file granularity --
  :meth:`~Workspace.add_design`, :meth:`~Workspace.update_file`,
  :meth:`~Workspace.remove_file`, :meth:`~Workspace.remove_design`,
* artefacts are lazy, memoised **queries** -- :meth:`~Workspace.result`,
  :meth:`~Workspace.ir`, :meth:`~Workspace.outputs`,
  :meth:`~Workspace.diagnostics`, :meth:`~Workspace.report` -- computed on
  first demand and invalidated by content fingerprint, so an
  ``update_file`` that re-writes identical text invalidates nothing and a
  one-file edit recompiles through the warm stage cache (re-parsing only
  that file),
* :meth:`~Workspace.compile_all` brings every design up to date through
  the concurrent job engine (serial / thread / process executors with
  per-design error isolation), subsuming the PR-1 driver objects --
  :class:`~repro.pipeline.batch.BatchCompiler` and
  :class:`~repro.pipeline.incremental.IncrementalCompiler` are now thin,
  deprecation-warned adapters over a workspace.

Thread-safety contract: every query takes a per-design lock, so concurrent
queries (including against the same design) are safe; mutation methods take
the same lock, so a mutator and a query serialise per design while queries
on *different* designs run fully in parallel.  ``compile_all`` snapshots
the dirty set, compiles it outside the locks, and folds results back only
where the design's fingerprint still matches -- a design edited mid-build
simply stays stale.  See ``docs/workspace.md``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Optional, Sequence

from repro.errors import TydiWorkspaceError
from repro.lang.compile import (
    CompileOptions,
    normalize_sources,
    run_pipeline,
)

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.lang.compile import CompilationResult
    from repro.pipeline.batch import BatchResult, CompileJob

#: Sentinel distinguishing "no cache argument" (build one) from an explicit
#: ``cache=None`` (run with no cache at all -- the compile_sources shim).
_AUTO_CACHE = object()


@dataclass
class BuildReport:
    """What one :meth:`Workspace.compile_all` round did.

    Also the shape of :class:`repro.pipeline.incremental.IncrementalReport`
    (which is an alias of this class), so incremental-driver callers keep
    their field names.
    """

    compiled: list[str] = field(default_factory=list)
    reused: list[str] = field(default_factory=list)
    removed: list[str] = field(default_factory=list)
    failed: dict[str, str] = field(default_factory=dict)
    results: dict[str, "CompilationResult"] = field(default_factory=dict)
    #: Per recompiled design: the filenames whose content fingerprints
    #: differ from the previous successful build (new designs list every
    #: file; an option-only change legitimately lists none).
    changed_files: dict[str, list[str]] = field(default_factory=dict)
    #: Per recompiled design: the filenames carried over unchanged (their
    #: parse artefacts are served from the stage cache, not re-parsed).
    unchanged_files: dict[str, list[str]] = field(default_factory=dict)
    #: The underlying engine outcome for the dirty subset (per-design
    #: timing, cache provenance, executor/worker accounting).
    batch: Optional["BatchResult"] = None

    @property
    def ok(self) -> bool:
        return not self.failed

    def summary(self) -> str:
        return (
            f"{len(self.compiled)} recompiled, {len(self.reused)} reused, "
            f"{len(self.removed)} removed, {len(self.failed)} failed"
        )

    def file_summary(self) -> str:
        changed = sum(len(v) for v in self.changed_files.values())
        unchanged = sum(len(v) for v in self.unchanged_files.values())
        return f"{changed} file(s) re-parsed, {unchanged} file(s) reused"


class _Design:
    """One named design of the session: files, options, memoised artefacts."""

    __slots__ = (
        "name",
        "files",
        "options",
        "kind",
        "lock",
        "memo_key",
        "memo_result",
        "memo_error",
        "extra_outputs",
        "sim_reports",
        "built_file_keys",
    )

    def __init__(
        self,
        name: str,
        files: dict[str, str],
        options: CompileOptions,
        *,
        kind: str = "lang",
    ) -> None:
        self.name = name
        self.files = files  # filename -> source text, insertion-ordered
        self.options = options
        #: Frontend of this design: ``"lang"`` (Tydi-lang sources through
        #: parse+evaluate) or ``"ir"`` (one Tydi-IR interchange document
        #: through the ingest frontend, :mod:`repro.interchange`).
        self.kind = kind
        self.lock = threading.RLock()
        #: Fingerprint the memo below belongs to (None: never computed).
        self.memo_key: Optional[str] = None
        self.memo_result: Optional["CompilationResult"] = None
        self.memo_error: Optional[BaseException] = None
        #: Lazily-emitted backend outputs beyond ``options.targets``,
        #: keyed by backend name; cleared whenever the memo turns over.
        self.extra_outputs: dict[str, dict[str, str]] = {}
        #: Memoised simulation reports keyed by plan fingerprint, valid for
        #: the current ``memo_key``; cleared whenever the memo turns over.
        self.sim_reports: dict[str, object] = {}
        #: Per-file fingerprints of the last *successful* build (None until
        #: one succeeds); drives the changed/unchanged file reporting.
        self.built_file_keys: Optional[dict[str, str]] = None

    def normalized_sources(self) -> tuple[tuple[str, str], ...]:
        return tuple((text, filename) for filename, text in self.files.items())

    def fingerprint(self) -> str:
        fingerprint = self.options.fingerprint(self.normalized_sources())
        if self.kind != "lang":
            # Salt non-lang kinds: the same bytes as a Tydi-lang source and
            # as an interchange document are different artefacts and must
            # never share a memo/cache identity.
            import hashlib

            return hashlib.sha256(
                f"kind={self.kind}\x00{fingerprint}".encode()
            ).hexdigest()
        return fingerprint

    def file_keys(self) -> dict[str, str]:
        from repro.pipeline.stages import file_fingerprint

        return {
            filename: file_fingerprint(text, filename)
            for filename, text in self.files.items()
        }

    def drop_memo(self) -> None:
        self.memo_key = None
        self.memo_result = None
        self.memo_error = None
        self.extra_outputs.clear()
        self.sim_reports.clear()


class Workspace:
    """A long-lived compile session: designs in, memoised artefact queries out.

    Parameters
    ----------
    cache:
        The result cache to compile through.  Omit it (the default) to have
        the workspace build its own cache stack; pass an existing
        :class:`~repro.pipeline.cache.CompilationCache` (or any duck-typed
        result cache) to share one across sessions; pass ``None`` to run
        with no cache at all (every stale query recompiles from scratch --
        the session memo still serves repeated queries).
    cache_dir / max_cache_mb:
        When the workspace builds its own cache: the on-disk store location
        and its size budget in megabytes (LRU-evicted).  Only valid without
        an explicit ``cache``; ``max_cache_mb`` requires ``cache_dir``.
    remote_cache:
        When the workspace builds its own cache: the shared remote L2 tier
        -- a ``host:port`` endpoint string (see :mod:`repro.pipeline.
        remote`) or an existing :class:`~repro.pipeline.remote.
        RemoteCacheClient`.  Consulted after memory and disk miss; a dead
        remote degrades to local-only.  Only valid without an explicit
        ``cache`` (attach the client to that cache yourself instead).
    options:
        Default :class:`~repro.lang.compile.CompileOptions` (or mapping)
        for designs added without their own.
    executor / jobs:
        Defaults for :meth:`compile_all` (``"serial"`` / ``"thread"`` /
        ``"process"``, and the worker count).
    label:
        Optional human-readable name for this session, echoed by
        :meth:`stats` and :meth:`report` when set.  The worker pool labels
        each worker's workspace (``worker-0``, ``worker-1``, ...) so
        aggregated stats stay attributable to their shard.
    """

    def __init__(
        self,
        *,
        cache=_AUTO_CACHE,
        cache_dir=None,
        max_cache_mb: Optional[float] = None,
        remote_cache=None,
        options: CompileOptions | Mapping[str, object] | None = None,
        executor: str = "thread",
        jobs: Optional[int] = None,
        label: Optional[str] = None,
    ) -> None:
        from repro.pipeline.batch import EXECUTORS

        if executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
        if cache is not _AUTO_CACHE and (
            cache_dir is not None or max_cache_mb is not None or remote_cache is not None
        ):
            raise TydiWorkspaceError(
                "pass either an existing cache= or "
                "cache_dir=/max_cache_mb=/remote_cache=, not both"
            )
        if cache is _AUTO_CACHE:
            from repro.pipeline.cache import CompilationCache

            max_disk_bytes = None
            if max_cache_mb is not None:
                if max_cache_mb < 0:
                    raise TydiWorkspaceError("max_cache_mb must be >= 0")
                if cache_dir is None:
                    raise TydiWorkspaceError("max_cache_mb requires cache_dir")
                max_disk_bytes = int(max_cache_mb * 1024 * 1024)
            cache = CompilationCache(
                cache_dir=cache_dir,
                max_disk_bytes=max_disk_bytes,
                remote=remote_cache,
            )
        self.cache = cache
        self.default_options = CompileOptions.coerce(options)
        self.executor = executor
        self.jobs = jobs
        self.label = label
        self._designs: dict[str, _Design] = {}
        self._lock = threading.Lock()

    # -- the design store ------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._designs

    def __len__(self) -> int:
        with self._lock:
            return len(self._designs)

    @property
    def design_names(self) -> list[str]:
        """Names of every design, in insertion (then last-replaced) order."""
        with self._lock:
            return list(self._designs)

    def _design(self, name: str) -> _Design:
        with self._lock:
            design = self._designs.get(name)
        if design is None:
            known = ", ".join(self.design_names) or "none"
            raise TydiWorkspaceError(f"no design named {name!r} (designs: {known})")
        return design

    def add_design(
        self,
        name: str,
        files: Sequence[tuple[str, str]] | Sequence[str] | Mapping[str, str] = (),
        options: CompileOptions | Mapping[str, object] | None = None,
        *,
        replace: bool = False,
    ) -> None:
        """Register (or with ``replace``, wholesale-update) a named design.

        ``files`` takes any shape :func:`~repro.lang.compile.
        normalize_sources` accepts.  ``options`` defaults to the workspace's
        ``default_options``.  Replacing keeps the design's memoised
        artefacts when the replacement is content-identical (the fingerprint
        decides, not object identity), and moves the design to the end of
        the compile order.
        """
        if not isinstance(name, str) or not name:
            raise TydiWorkspaceError(f"design name must be a non-empty string, got {name!r}")
        normalized = normalize_sources(files)
        resolved = (
            self.default_options if options is None else CompileOptions.coerce(options)
        )
        file_map = {filename: text for text, filename in normalized}
        with self._lock:
            existing = self._designs.get(name)
            if existing is not None and not replace:
                raise TydiWorkspaceError(
                    f"design {name!r} already exists (pass replace=True to update it)"
                )
            if existing is None:
                self._designs[name] = _Design(name, file_map, resolved)
                return
            with existing.lock:
                existing.files = file_map
                existing.options = resolved
                existing.kind = "lang"
            # Move the replaced design to the end: compile_all order then
            # mirrors the caller's latest job order (what the incremental
            # adapter relies on for report ordering).
            self._designs[name] = self._designs.pop(name)

    def add_ir_design(
        self,
        name: str,
        text: str,
        options: CompileOptions | Mapping[str, object] | None = None,
        *,
        replace: bool = False,
        filename: Optional[str] = None,
    ) -> None:
        """Register a design whose frontend is one Tydi-IR interchange document.

        The document (e.g. a ``tydi-ir`` backend emission, see
        :mod:`repro.interchange`) is stored as the design's single file
        (``filename``, default ``<name>.tir``; the CLI passes the real
        path so ingest diagnostics name it) and compiled through the
        ingest pipeline instead of parse+evaluate; every downstream query
        -- :meth:`result`, :meth:`outputs`, :meth:`simulate`,
        :meth:`report` -- then behaves exactly as for a Tydi-lang design.
        ``update_file`` on the stored filename swaps the document; the
        evaluate-only options (``top`` / ``include_stdlib`` / ...) are
        ignored, as the document itself carries the project name and top
        declaration.
        """
        if not isinstance(name, str) or not name:
            raise TydiWorkspaceError(f"design name must be a non-empty string, got {name!r}")
        if not isinstance(text, str):
            raise TydiWorkspaceError(
                f"add_ir_design expects the document as a string, got {type(text).__name__}"
            )
        resolved = (
            self.default_options if options is None else CompileOptions.coerce(options)
        )
        file_map = {filename or f"{name}.tir": text}
        with self._lock:
            existing = self._designs.get(name)
            if existing is not None and not replace:
                raise TydiWorkspaceError(
                    f"design {name!r} already exists (pass replace=True to update it)"
                )
            if existing is None:
                self._designs[name] = _Design(name, file_map, resolved, kind="ir")
                return
            with existing.lock:
                existing.files = file_map
                existing.options = resolved
                existing.kind = "ir"
            self._designs[name] = self._designs.pop(name)

    def add_job(self, job: "CompileJob", *, replace: bool = False) -> None:
        """Register a :class:`~repro.pipeline.batch.CompileJob` as a design."""
        self.add_design(job.name, job.sources, job.compile_options(), replace=replace)

    def remove_design(self, name: str) -> None:
        with self._lock:
            if self._designs.pop(name, None) is None:
                known = ", ".join(self._designs) or "none"
                raise TydiWorkspaceError(f"no design named {name!r} (designs: {known})")

    def update_file(self, design: str, filename: str, text: str) -> None:
        """Set one file's source text (adding the file if it is new).

        Re-writing identical text is a no-op for invalidation: queries are
        keyed by content fingerprint, so only a real change makes the
        design's memoised artefacts stale.
        """
        if not isinstance(text, str) or not isinstance(filename, str):
            raise TydiWorkspaceError(
                f"update_file expects string filename and text, got "
                f"({type(filename).__name__}, {type(text).__name__})"
            )
        entry = self._design(design)
        with entry.lock:
            entry.files[filename] = text

    def remove_file(self, design: str, filename: str) -> None:
        entry = self._design(design)
        with entry.lock:
            if filename not in entry.files:
                known = ", ".join(entry.files) or "none"
                raise TydiWorkspaceError(
                    f"design {design!r} has no file {filename!r} (files: {known})"
                )
            del entry.files[filename]

    def files(self, design: str) -> dict[str, str]:
        """A copy of one design's ``{filename: source_text}`` store."""
        entry = self._design(design)
        with entry.lock:
            return dict(entry.files)

    def options_for(self, design: str) -> CompileOptions:
        return self._design(design).options

    def set_options(
        self, design: str, options: CompileOptions | Mapping[str, object]
    ) -> None:
        """Replace one design's compile options (queries become stale)."""
        entry = self._design(design)
        resolved = CompileOptions.coerce(options)
        with entry.lock:
            entry.options = resolved

    def fingerprint(self, design: str) -> str:
        """The design's current content address (sources + options)."""
        entry = self._design(design)
        with entry.lock:
            return entry.fingerprint()

    def is_fresh(self, design: str) -> bool:
        """Whether the design's memoised artefacts match its current content."""
        entry = self._design(design)
        with entry.lock:
            return entry.memo_key == entry.fingerprint() and entry.memo_error is None

    # -- queries ---------------------------------------------------------------

    def result(self, name: str) -> "CompilationResult":
        """The design's :class:`~repro.lang.compile.CompilationResult`.

        Computed on first demand, memoised until the design's fingerprint
        moves.  A failing compilation raises (and the failure itself is
        memoised: re-querying an unchanged broken design re-raises without
        recompiling -- the frontend is deterministic, so the outcome could
        not differ).  Treat the returned result as immutable; it may be
        shared with the cache and with other queries.
        """
        entry = self._design(name)
        with entry.lock:
            key = entry.fingerprint()
            if entry.memo_key == key:
                if entry.memo_error is not None:
                    raise entry.memo_error
                assert entry.memo_result is not None
                return entry.memo_result
            try:
                result = self._compute(entry)
            except Exception as exc:
                entry.memo_key = key
                entry.memo_result = None
                # Memoise the exception *without* its traceback: the frames
                # pin every stage's locals (source texts, ASTs) in memory
                # for as long as the design stays broken, and re-raising
                # rebuilds a fresh traceback anyway.
                exc.__traceback__ = None
                entry.memo_error = exc
                entry.extra_outputs.clear()
                entry.sim_reports.clear()
                entry.built_file_keys = None
                raise
            self._fold_success(entry, key, result)
            return result

    def ir(self, name: str) -> str:
        """The design's textual Tydi-IR."""
        return self.result(name).ir_text()

    def diagnostics(self, name: str):
        """The design's :class:`~repro.errors.DiagnosticSink`."""
        return self.result(name).diagnostics

    def outputs(self, name: str, target: str) -> dict[str, str]:
        """One backend's emitted ``{filename: text}`` for the design.

        Targets named in the design's options are served from the compiled
        result; any *other* registered backend is emitted lazily on first
        demand (through the per-implementation backend-output cache when
        the workspace owns a stage cache) and memoised until the design
        changes.  The design's ``backend_options`` apply either way.
        """
        entry = self._design(name)
        result = self.result(name)  # takes/releases the design lock
        with entry.lock:
            if target in result.outputs:
                return result.outputs[target]
            cached = entry.extra_outputs.get(target)
            if cached is not None:
                return cached
            from repro.backends import get_backend

            backend = get_backend(target, entry.options.backend_options_for(target))
            stage_cache = getattr(self.cache, "stages", None)
            if stage_cache is not None:
                files = stage_cache.emit_backend(result.project, backend)
                stage_cache.enforce_disk_budget()
            else:
                files = backend.emit(result.project)
            entry.extra_outputs[target] = files
            return files

    def simulate(self, name: str, plan=None):
        """The design's :class:`~repro.sim.harness.SimulationReport` under
        one :class:`~repro.sim.harness.SimulationPlan`.

        A lazy memoised query like :meth:`ir`/:meth:`outputs`: computed on
        first demand per (design content, plan) pair, memoised until the
        design's fingerprint moves, and -- when the workspace owns a stage
        cache -- served through the ``sim:`` cache tier (memory -> disk ->
        remote L2, keyed on evaluate fingerprint + plan fingerprint), so a
        repeat simulation of an unchanged design is a cache hit fleet-wide.

        ``plan`` is a :class:`~repro.sim.harness.SimulationPlan`, a mapping
        of its fields, or ``None`` for the default plan.  Compilation
        failures raise exactly like :meth:`result`; simulation failures
        (missing behaviours, budget exhaustion) raise a structured
        :class:`~repro.errors.TydiSimulationError` and are never memoised.
        """
        from repro.sim.harness import SimulationPlan, run_simulation

        plan = SimulationPlan.coerce(plan)
        entry = self._design(name)
        result = self.result(name)  # takes/releases the design lock
        with entry.lock:
            plan_fp = plan.fingerprint()
            cached = entry.sim_reports.get(plan_fp)
            if cached is not None:
                return cached
            stage_cache = getattr(self.cache, "stages", None)
            if stage_cache is not None:
                key = stage_cache.sim_key(
                    entry.normalized_sources(), entry.options.as_dict(), plan
                )
                report = stage_cache.cached_simulation(
                    key, lambda: run_simulation(result.project, plan)
                )
                stage_cache.enforce_disk_budget()
            else:
                report = run_simulation(result.project, plan)
            entry.sim_reports[plan_fp] = report
            return report

    def cached_result(self, name: str) -> Optional["CompilationResult"]:
        """The memoised result if it is fresh and successful, else ``None``.

        Never compiles -- the non-raising peek behind
        ``IncrementalCompiler.result_for`` and status reporting.
        """
        with self._lock:
            entry = self._designs.get(name)
        if entry is None:
            return None
        with entry.lock:
            if entry.memo_key == entry.fingerprint() and entry.memo_error is None:
                return entry.memo_result
        return None

    def report(self) -> dict[str, object]:
        """A JSON-ready snapshot of the session: designs, freshness, caches."""
        designs: dict[str, object] = {}
        for name in self.design_names:
            with self._lock:
                entry = self._designs.get(name)
            if entry is None:
                continue
            with entry.lock:
                fresh = entry.memo_key == entry.fingerprint()
                if not fresh:
                    status = "stale"
                elif entry.memo_error is not None:
                    status = "error"
                else:
                    status = "fresh"
                designs[name] = {
                    "files": len(entry.files),
                    "status": status,
                    "kind": entry.kind,
                    "targets": list(entry.options.targets),
                }
        cache_stats, stage_stats = self._cache_snapshots()
        snapshot: dict[str, object] = {
            "designs": designs,
            "cache": cache_stats,
            "stage_cache": stage_stats,
        }
        if self.label is not None:
            snapshot["label"] = self.label
        return snapshot

    def stats(self) -> dict[str, object]:
        """A JSON-ready counters snapshot: design freshness + cache tiers.

        The lighter-weight sibling of :meth:`report` behind the compile
        service's ``stats`` endpoint: per-status design counts instead of
        the per-design listing, and every cache counter read through the
        owning cache's locked ``stats_snapshot()`` so concurrent compiles
        can never be observed as a torn counter set.
        """
        counts = {"total": 0, "fresh": 0, "stale": 0, "error": 0}
        for name in self.design_names:
            with self._lock:
                entry = self._designs.get(name)
            if entry is None:
                continue
            with entry.lock:
                counts["total"] += 1
                if entry.memo_key != entry.fingerprint():
                    counts["stale"] += 1
                elif entry.memo_error is not None:
                    counts["error"] += 1
                else:
                    counts["fresh"] += 1
        cache_stats, stage_stats = self._cache_snapshots()
        snapshot: dict[str, object] = {
            "designs": counts,
            "cache": cache_stats,
            "stage_cache": stage_stats,
        }
        from repro.profiling import PROFILER

        if PROFILER.enabled:
            # Per-stage wall/CPU timers (opt-in via TYDI_PROFILE_STAGES or
            # --profile-stages); rides the stats plumbing unchanged through
            # the compile service's ``stats`` endpoint.
            snapshot["profiling"] = PROFILER.snapshot()
        if self.label is not None:
            snapshot["label"] = self.label
        return snapshot

    def _cache_snapshots(self) -> tuple[Optional[dict], Optional[dict]]:
        """Locked counter snapshots of the cache stack (each may be None).

        Prefers the cache's ``stats_snapshot()`` (counters copied under the
        cache's own lock -- never torn); duck-typed caches without one fall
        back to their raw ``stats.as_dict()``.
        """
        cache_stats = None
        if self.cache is not None:
            snapshot = getattr(self.cache, "stats_snapshot", None)
            if snapshot is not None:
                cache_stats = snapshot()
            else:
                stats = getattr(self.cache, "stats", None)
                cache_stats = stats.as_dict() if stats is not None else None
        stage_stats = None
        stage_cache = getattr(self.cache, "stages", None)
        if stage_cache is not None:
            snapshot = getattr(stage_cache, "stats_snapshot", None)
            if snapshot is not None:
                stage_stats = snapshot()
            else:
                stats = getattr(stage_cache, "stats", None)
                stage_stats = stats.as_dict() if stats is not None else None
        return cache_stats, stage_stats

    def invalidate(self, name: Optional[str] = None) -> None:
        """Drop memoised artefacts (one design, or all of them).

        The cache stack is untouched -- re-queries still hit warm stage
        artefacts; this only forces the session to re-consult it.
        """
        if name is not None:
            entry = self._design(name)  # unknown names still raise
            with entry.lock:
                entry.drop_memo()
            return
        for design_name in self.design_names:
            with self._lock:
                entry = self._designs.get(design_name)
            if entry is None:
                continue  # removed concurrently: nothing left to invalidate
            with entry.lock:
                entry.drop_memo()

    # -- bulk compilation ------------------------------------------------------

    def compile_all(
        self,
        *,
        executor: Optional[str] = None,
        jobs: Optional[int] = None,
    ) -> BuildReport:
        """Bring every design's memo up to date; failures are isolated.

        Fresh designs are *reused* (their memoised result is handed back
        untouched); stale or failed ones are compiled through the shared
        job engine (:func:`repro.pipeline.batch.run_jobs`) -- concurrently
        for ``executor="thread"``/``"process"`` -- and their memos updated.
        A design that fails records an entry in :attr:`BuildReport.failed`
        instead of raising, and is retried by the next ``compile_all``.
        """
        from repro.pipeline.batch import run_jobs

        report = BuildReport()
        with self._lock:
            designs = list(self._designs.values())

        dirty: list[tuple[_Design, "CompileJob", str]] = []
        ir_outcomes: list["JobResult"] = []
        for entry in designs:
            with entry.lock:
                key = entry.fingerprint()
                if entry.memo_key == key and entry.memo_error is None:
                    report.reused.append(entry.name)
                    report.results[entry.name] = entry.memo_result
                    continue
                current = entry.file_keys()
                previous = entry.built_file_keys or {}
                report.changed_files[entry.name] = [
                    filename
                    for filename, fkey in current.items()
                    if previous.get(filename) != fkey
                ]
                report.unchanged_files[entry.name] = [
                    filename
                    for filename, fkey in current.items()
                    if previous.get(filename) == fkey
                ]
                if entry.kind == "ir":
                    # IR designs compile inline (through the memoised ingest
                    # tier) with the same per-design error isolation; the
                    # job engine's CompileJob shape is Tydi-lang-only.
                    ir_outcomes.append(self._compile_ir_inline(entry, key, report))
                    continue
                dirty.append((entry, self._job_for(entry), key))

        report.batch = run_jobs(
            [job for _, job, _ in dirty],
            cache=self.cache,
            executor=executor or self.executor,
            max_workers=jobs if jobs is not None else self.jobs,
        )
        # Batch consumers (tydi-compile --batch, the CI soak) read
        # report.batch.results; the inline IR compiles ride along as
        # synthetic job results so an all---from-ir batch is not invisible.
        report.batch.results.extend(ir_outcomes)
        for (entry, _job, key), outcome in zip(dirty, report.batch.results):
            with entry.lock:
                still_current = entry.fingerprint() == key
                if outcome.ok:
                    report.compiled.append(entry.name)
                    report.results[entry.name] = outcome.result
                    if still_current:
                        self._fold_success(entry, key, outcome.result)
                else:
                    report.failed[entry.name] = outcome.error or "unknown error"
                    if still_current:
                        # Forget the previous build entirely: result queries
                        # must not serve an artefact that no longer matches
                        # the sources, and the next round retries.
                        entry.drop_memo()
                        entry.built_file_keys = None
        return report

    # -- internals -------------------------------------------------------------

    def _compile_ir_inline(
        self, entry: _Design, key: str, report: BuildReport
    ) -> "JobResult":
        """Compile one dirty IR design during ``compile_all`` (lock held).

        Folds the outcome into the report *and* returns a synthetic
        :class:`~repro.pipeline.batch.JobResult` (placeholder job, real
        timing) for the report's batch view.
        """
        import time as _time

        from repro.errors import TydiError
        from repro.pipeline.batch import CompileJob, JobResult

        placeholder = CompileJob(name=entry.name, sources=())
        start = _time.perf_counter()
        try:
            result = self._compute(entry)
        except TydiError as exc:
            report.failed[entry.name] = exc.render()
            entry.drop_memo()
            entry.built_file_keys = None
            return JobResult(
                job=placeholder,
                error=exc.render(),
                error_stage=exc.stage,
                error_type=type(exc).__name__,
                elapsed=_time.perf_counter() - start,
            )
        report.compiled.append(entry.name)
        report.results[entry.name] = result
        self._fold_success(entry, key, result)
        return JobResult(
            job=placeholder, result=result, elapsed=_time.perf_counter() - start
        )

    def _fold_success(self, entry: _Design, key: str, result: "CompilationResult") -> None:
        """Install a successful build as the design's memo (lock held)."""
        entry.memo_key = key
        entry.memo_result = result
        entry.memo_error = None
        entry.extra_outputs.clear()
        entry.sim_reports.clear()
        entry.built_file_keys = entry.file_keys()

    def _job_for(self, entry: _Design) -> "CompileJob":
        from repro.pipeline.batch import CompileJob

        options = entry.options
        return CompileJob(
            name=entry.name,
            sources=entry.normalized_sources(),
            top=options.top,
            top_args=options.top_args,
            include_stdlib=options.include_stdlib,
            sugaring=options.sugaring,
            run_drc=options.run_drc,
            strict_drc=options.strict_drc,
            project_name=options.project_name,
            targets=options.targets,
            backend_options=options.backend_options,
        )

    def _compute(self, entry: _Design) -> "CompilationResult":
        """One design's compile through the cache stack (design lock held).

        Mirrors exactly what the engine's ``_execute_job`` does for
        ``compile_all``, so single-design queries and bulk builds produce
        the same artefacts through the same tiers: whole-result cache
        first, then the staged pipeline (when the cache carries one), then
        the monolithic reference pipeline.
        """
        if entry.kind == "ir":
            return self._compute_ir(entry)
        normalized = entry.normalized_sources()
        options_dict = entry.options.as_dict()
        cache = self.cache
        if cache is not None:
            cache_key = cache.key_for(normalized, options_dict)
            hit = cache.get(cache_key)
            if hit is not None:
                return hit
            stage_cache = getattr(cache, "stages", None)
            if stage_cache is not None:
                result = stage_cache.compile(normalized, options_dict)
                cache.put(cache_key, result)
                return result
        result = run_pipeline(normalized, entry.options)
        if cache is not None:
            cache.put(cache_key, result)
        return result

    def _compute_ir(self, entry: _Design) -> "CompilationResult":
        """One IR design's compile through the ingest pipeline (lock held).

        Goes through the stage cache's memoised ingest tier when the
        workspace owns one (:meth:`repro.pipeline.stages.StageCache.
        compile_ir`); the whole-result cache is deliberately bypassed --
        the ingest snapshot plus the backend-unit tier already cover
        everything reusable, and the session memo serves repeat queries.
        """
        if not entry.files:
            raise TydiWorkspaceError(
                f"IR design {entry.name!r} has no document (was its file removed?)"
            )
        filename, text = next(iter(entry.files.items()))
        options_dict = entry.options.as_dict()
        stage_cache = getattr(self.cache, "stages", None) if self.cache is not None else None
        if stage_cache is not None:
            return stage_cache.compile_ir(text, options_dict, filename=filename)
        from repro.interchange.pipeline import compile_ir_document

        return compile_ir_document(text, entry.options, filename=filename)
