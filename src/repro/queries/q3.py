"""TPC-H Query 3 (shipping priority) in Tydi-lang.

Query 3 joins customer, orders and lineitem, keeps the BUILDING market
segment with the order/ship date window, and sums the discounted revenue per
order.  As in the paper, nested query evaluation and materialised joins are
out of scope for the streaming accelerator: the Fletcher reader streams the
*join-aligned* projection (one row per lineitem with its order and customer
attributes), and the hardware applies the predicates and the keyed
aggregation.  DESIGN.md documents the substitution.
"""

from __future__ import annotations

from typing import Mapping

from repro.arrow.dataset import Table
from repro.arrow.schema import ArrowField, ArrowSchema
from repro.arrow.tpch import golden_q3, joined_table_for
from repro.queries.base import TpchQuery
from repro.sim.engine import SimulationTrace

SQL = """
select
    l_orderkey,
    sum(l_extendedprice * (1 - l_discount)) as revenue,
    o_orderdate,
    o_shippriority
from
    customer,
    orders,
    lineitem
where
    c_mktsegment = 'BUILDING'
    and c_custkey = o_custkey
    and l_orderkey = o_orderkey
    and o_orderdate < date '1995-03-15'
    and l_shipdate > date '1995-03-15'
group by
    l_orderkey,
    o_orderdate,
    o_shippriority
order by
    revenue desc,
    o_orderdate;
"""

#: The join-aligned projection streamed by the Fletcher reader.
JOINED_SCHEMA = ArrowSchema(
    name="customer_orders_lineitem",
    fields=(
        ArrowField("l_orderkey", "int64"),
        ArrowField("l_extendedprice", "decimal"),
        ArrowField("l_discount", "decimal"),
        ArrowField("l_shipdate", "date"),
        ArrowField("o_orderdate", "date"),
        ArrowField("o_shippriority", "int32"),
        ArrowField("c_mktsegment", "utf8"),
    ),
)

QUERY_SOURCE = """
package q3;

// TPC-H Query 3: shipping priority (revenue per order in the BUILDING segment).

const date_1995_03_15 = 1169;

type q3_result = Stream(Bit(128), d=1);

streamlet q3_s {
    revenue_by_order: q3_result out,
}

impl q3_i of q3_s {
    instance data(customer_orders_lineitem_reader_i),

    // c_mktsegment = 'BUILDING'
    instance cmp_segment(compare_const_eq_i<type tpch_char, "BUILDING">),
    data.c_mktsegment => cmp_segment.input,

    // o_orderdate < 1995-03-15
    instance order_cutoff(const_int_generator_i<type tpch_date, date_1995_03_15>),
    instance cmp_orderdate(compare_lt_i<type tpch_date>),
    data.o_orderdate => cmp_orderdate.lhs,
    order_cutoff.output => cmp_orderdate.rhs,

    // l_shipdate > 1995-03-15
    instance ship_cutoff(const_int_generator_i<type tpch_date, date_1995_03_15>),
    instance cmp_shipdate(compare_gt_i<type tpch_date>),
    data.l_shipdate => cmp_shipdate.lhs,
    ship_cutoff.output => cmp_shipdate.rhs,

    // keep = conjunction of the three predicates
    instance keep(and_i<3>),
    cmp_segment.result => keep.input[0],
    cmp_orderdate.result => keep.input[1],
    cmp_shipdate.result => keep.input[2],

    // revenue term: l_extendedprice * (1 - l_discount)
    instance one(const_float_generator_i<type tpch_decimal, 1.0>),
    instance one_minus_disc(subtractor_i<type tpch_decimal, type tpch_decimal>),
    one.output => one_minus_disc.lhs,
    data.l_discount => one_minus_disc.rhs,
    instance disc_price(multiplier_i<type tpch_decimal, type tpch_decimal>),
    data.l_extendedprice => disc_price.lhs,
    one_minus_disc.output => disc_price.rhs,

    // filter the group key and the revenue term with the shared keep signal
    instance key_filter(filter_i<type tpch_int>),
    data.l_orderkey => key_filter.input,
    keep.output => key_filter.keep,
    instance revenue_filter(filter_i<type tpch_decimal>),
    disc_price.output => revenue_filter.input,
    keep.output => revenue_filter.keep,

    // revenue per order
    instance agg_revenue(group_sum_i<type tpch_int, type tpch_decimal, type q3_result>),
    key_filter.output => agg_revenue.key,
    revenue_filter.output => agg_revenue.value,
    agg_revenue.output => revenue_by_order,
}

top q3_i;
"""


def _datasets(tables: Mapping[str, Table]) -> dict[str, Table]:
    return {"customer_orders_lineitem": joined_table_for("q3", tables)}


def _extract(trace: SimulationTrace) -> dict[int, float]:
    return {int(key): float(value) for key, value in trace.output_values("revenue_by_order")}


QUERY = TpchQuery(
    name="q3",
    title="TPC-H 3",
    sql=SQL,
    query_source=QUERY_SOURCE,
    schemas=[JOINED_SCHEMA],
    top="q3_i",
    dataset_builder=_datasets,
    golden=golden_q3,
    extract_result=_extract,
)
