"""Hand-written Tydi-lang designs for the TPC-H queries evaluated in the paper.

Each query module exposes a :class:`repro.queries.base.TpchQuery` object
(named ``QUERY``) bundling:

* the raw SQL text (for the "Raw SQL query" LoC column of Table IV),
* the Tydi-lang *query logic* source (the LoCq column),
* the Arrow schemas whose Fletcher readers the design instantiates
  (the LoCf column comes from the generated interface),
* compile / VHDL-generation helpers (LoCvhdl and the Rq/Ra ratios),
* simulation + golden-result helpers for functional validation.

``ALL_QUERIES`` lists them in the order of Table IV, including the
non-sugared variant of query 1.
"""

from repro.queries.base import TpchQuery, QueryLoc
from repro.queries import q1, q3, q5, q6, q19

#: Queries in the row order of Table IV.
ALL_QUERIES: list[TpchQuery] = [
    q1.QUERY_NO_SUGAR,
    q1.QUERY,
    q3.QUERY,
    q5.QUERY,
    q6.QUERY,
    q19.QUERY,
]

#: Queries by name (sugared variants only).
QUERIES: dict[str, TpchQuery] = {
    "q1": q1.QUERY,
    "q1_no_sugar": q1.QUERY_NO_SUGAR,
    "q3": q3.QUERY,
    "q5": q5.QUERY,
    "q6": q6.QUERY,
    "q19": q19.QUERY,
}


def compile_all(
    queries=None,
    *,
    cache=None,
    executor: str = "thread",
    max_workers=None,
    strict: bool = True,
):
    """Compile the TPC-H suite through a throwaway workspace session.

    Returns ``{query_name: CompilationResult}`` in suite order and memoises
    each result on its :class:`TpchQuery` (so later ``query.compile()`` /
    ``query.simulate()`` calls reuse the batch output).  With ``strict`` the
    first failing design raises :class:`repro.pipeline.
    BatchCompilationError`; otherwise failures are silently absent from the
    returned mapping.
    """
    from repro.workspace import Workspace

    queries = list(ALL_QUERIES if queries is None else queries)
    workspace = Workspace(cache=cache)
    for query in queries:
        workspace.add_job(query.compile_job())
    outcome = workspace.compile_all(executor=executor, jobs=max_workers).batch
    if strict:
        outcome.raise_if_failed()
    results = outcome.result_map()
    for query in queries:
        if query.name in results:
            query._compiled = results[query.name]
    return {query.name: results[query.name] for query in queries if query.name in results}


__all__ = ["TpchQuery", "QueryLoc", "ALL_QUERIES", "QUERIES", "compile_all"]
