"""TPC-H Query 19 (discounted revenue) in Tydi-lang.

Query 19 is the paper's worked example (Section VI): three OR-ed clauses,
each combining a brand equality, a container-membership test, a quantity
window and a size window, on top of shared ship-mode / ship-instruction /
join-key predicates.  Because the three clauses have the same structure, the
design stores the per-clause constants in arrays and expands the clause
hardware with the generative ``for`` syntax -- exactly the pattern the paper
uses to motivate arrays and ``for`` (four container comparators feeding a
4-input ``or``).
"""

from __future__ import annotations

from typing import Mapping

from repro.arrow.dataset import Table
from repro.arrow.schema import ArrowField, ArrowSchema
from repro.arrow.tpch import golden_q19, joined_table_for
from repro.queries.base import TpchQuery
from repro.sim.engine import SimulationTrace

SQL = """
select
    sum(l_extendedprice * (1 - l_discount)) as revenue
from
    lineitem,
    part
where
    (
        p_partkey = l_partkey
        and p_brand = 'Brand#12'
        and p_container in ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')
        and l_quantity >= 1 and l_quantity <= 1 + 10
        and p_size between 1 and 5
        and l_shipmode in ('AIR', 'AIR REG')
        and l_shipinstruct = 'DELIVER IN PERSON'
    )
    or
    (
        p_partkey = l_partkey
        and p_brand = 'Brand#23'
        and p_container in ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK')
        and l_quantity >= 10 and l_quantity <= 10 + 10
        and p_size between 1 and 10
        and l_shipmode in ('AIR', 'AIR REG')
        and l_shipinstruct = 'DELIVER IN PERSON'
    )
    or
    (
        p_partkey = l_partkey
        and p_brand = 'Brand#34'
        and p_container in ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG')
        and l_quantity >= 20 and l_quantity <= 20 + 10
        and p_size between 1 and 15
        and l_shipmode in ('AIR', 'AIR REG')
        and l_shipinstruct = 'DELIVER IN PERSON'
    );
"""

JOINED_SCHEMA = ArrowSchema(
    name="lineitem_part",
    fields=(
        ArrowField("l_partkey", "int64"),
        ArrowField("l_quantity", "decimal"),
        ArrowField("l_extendedprice", "decimal"),
        ArrowField("l_discount", "decimal"),
        ArrowField("l_shipmode", "utf8"),
        ArrowField("l_shipinstruct", "utf8"),
        ArrowField("p_partkey", "int64"),
        ArrowField("p_brand", "utf8"),
        ArrowField("p_size", "int32"),
        ArrowField("p_container", "utf8"),
    ),
)

QUERY_SOURCE = """
package q19;

// TPC-H Query 19: discounted revenue over three OR-ed brand/container clauses.
// The three clauses share one structure, so their constants live in arrays
// and the clause hardware is expanded with the generative `for` syntax.

const clause_count = 3;
const brands = ["Brand#12", "Brand#23", "Brand#34"];
const quantity_low = [1.0, 10.0, 20.0];
const size_high = [5, 10, 15];
const containers = [
    ["SM CASE", "SM BOX", "SM PACK", "SM PKG"],
    ["MED BAG", "MED BOX", "MED PKG", "MED PACK"],
    ["LG CASE", "LG BOX", "LG PACK", "LG PKG"]
];

streamlet q19_s {
    revenue: tpch_decimal out,
}

impl q19_i of q19_s {
    instance data(lineitem_part_reader_i),

    // ---- predicates shared by all three clauses ----
    // join key: p_partkey = l_partkey
    instance cmp_partkey(compare_eq_i<type tpch_int>),
    data.l_partkey => cmp_partkey.lhs,
    data.p_partkey => cmp_partkey.rhs,
    // l_shipmode in ('AIR', 'AIR REG')
    instance cmp_air(compare_const_eq_i<type tpch_char, "AIR">),
    data.l_shipmode => cmp_air.input,
    instance cmp_air_reg(compare_const_eq_i<type tpch_char, "AIR REG">),
    data.l_shipmode => cmp_air_reg.input,
    instance shipmode_or(or_i<2>),
    cmp_air.result => shipmode_or.input[0],
    cmp_air_reg.result => shipmode_or.input[1],
    // l_shipinstruct = 'DELIVER IN PERSON'
    instance cmp_instruct(compare_const_eq_i<type tpch_char, "DELIVER IN PERSON">),
    data.l_shipinstruct => cmp_instruct.input,
    // shared = join key && ship mode && ship instruction
    instance shared_and(and_i<3>),
    cmp_partkey.result => shared_and.input[0],
    shipmode_or.output => shared_and.input[1],
    cmp_instruct.result => shared_and.input[2],

    // ---- the three structurally identical clauses ----
    instance clause_or(or_i<clause_count>),
    for i in 0->clause_count {
        // p_brand = brands[i]
        instance cmp_brand(compare_const_eq_i<type tpch_char, brands[i]>),
        data.p_brand => cmp_brand.input,
        // p_container in containers[i]
        instance container_or(or_i<4>),
        for j in 0->4 {
            instance cmp_container(compare_const_eq_i<type tpch_char, containers[i][j]>),
            data.p_container => cmp_container.input,
            cmp_container.result => container_or.input[j],
        }
        // quantity_low[i] <= l_quantity <= quantity_low[i] + 10
        instance qty_lo(const_float_generator_i<type tpch_decimal, quantity_low[i]>),
        instance cmp_qty_lo(compare_ge_i<type tpch_decimal>),
        data.l_quantity => cmp_qty_lo.lhs,
        qty_lo.output => cmp_qty_lo.rhs,
        instance qty_hi(const_float_generator_i<type tpch_decimal, quantity_low[i] + 10.0>),
        instance cmp_qty_hi(compare_le_i<type tpch_decimal>),
        data.l_quantity => cmp_qty_hi.lhs,
        qty_hi.output => cmp_qty_hi.rhs,
        // 1 <= p_size <= size_high[i]
        instance size_lo(const_int_generator_i<type tpch_int32, 1>),
        instance cmp_size_lo(compare_ge_i<type tpch_int32>),
        data.p_size => cmp_size_lo.lhs,
        size_lo.output => cmp_size_lo.rhs,
        instance size_hi(const_int_generator_i<type tpch_int32, size_high[i]>),
        instance cmp_size_hi(compare_le_i<type tpch_int32>),
        data.p_size => cmp_size_hi.lhs,
        size_hi.output => cmp_size_hi.rhs,
        // clause = conjunction of the clause-local and shared predicates
        instance clause_and(and_i<7>),
        cmp_brand.result => clause_and.input[0],
        container_or.output => clause_and.input[1],
        cmp_qty_lo.result => clause_and.input[2],
        cmp_qty_hi.result => clause_and.input[3],
        cmp_size_lo.result => clause_and.input[4],
        cmp_size_hi.result => clause_and.input[5],
        shared_and.output => clause_and.input[6],
        clause_and.output => clause_or.input[i],
    }

    // ---- revenue = sum(l_extendedprice * (1 - l_discount)) over kept rows ----
    instance one(const_float_generator_i<type tpch_decimal, 1.0>),
    instance one_minus_disc(subtractor_i<type tpch_decimal, type tpch_decimal>),
    one.output => one_minus_disc.lhs,
    data.l_discount => one_minus_disc.rhs,
    instance disc_price(multiplier_i<type tpch_decimal, type tpch_decimal>),
    data.l_extendedprice => disc_price.lhs,
    one_minus_disc.output => disc_price.rhs,
    instance keep_filter(filter_i<type tpch_decimal>),
    disc_price.output => keep_filter.input,
    clause_or.output => keep_filter.keep,
    instance revenue_sum(sum_i<type tpch_decimal, type tpch_decimal>),
    keep_filter.output => revenue_sum.input,
    revenue_sum.output => revenue,
}

top q19_i;
"""


def _datasets(tables: Mapping[str, Table]) -> dict[str, Table]:
    return {"lineitem_part": joined_table_for("q19", tables)}


def _extract(trace: SimulationTrace) -> float:
    values = trace.output_values("revenue")
    return float(values[-1]) if values else 0.0


QUERY = TpchQuery(
    name="q19",
    title="TPC-H 19",
    sql=SQL,
    query_source=QUERY_SOURCE,
    schemas=[JOINED_SCHEMA],
    top="q19_i",
    dataset_builder=_datasets,
    golden=golden_q19,
    extract_result=_extract,
)
