"""TPC-H Query 1 (pricing summary report) in Tydi-lang.

Query 1 groups the lineitem table by ``(l_returnflag, l_linestatus)`` and
computes per-group aggregates over all rows shipped before a cutoff date.
The hardware design uses:

* a constant-vs-column comparator for the ship-date cutoff,
* a ``combine2`` component building the composite group key,
* a subtract/multiply pair computing the discounted price,
* one ``filter`` per aggregated measure (all sharing the same keep signal),
* keyed ``group_sum`` / ``group_count`` aggregators.

Like the paper, we provide two variants: the normal (sugared) design where
duplicators and voiders are inserted automatically, and a non-sugared variant
where every fan-out duplicator and every voider for the reader's unused
columns is written out by hand.  The LoC difference between the two is the
"design effort saved by sugaring" row of Table IV.

The aggregate set is reduced with respect to full TPC-H Q1 (sum_qty,
sum_base_price, sum_disc_price, count_order); DESIGN.md documents this
simplification.
"""

from __future__ import annotations

from typing import Mapping

from repro.arrow.dataset import Table
from repro.arrow.tpch import LINEITEM_SCHEMA, golden_q1
from repro.queries.base import TpchQuery
from repro.sim.engine import SimulationTrace

SQL = """
select
    l_returnflag,
    l_linestatus,
    sum(l_quantity) as sum_qty,
    sum(l_extendedprice) as sum_base_price,
    sum(l_extendedprice * (1 - l_discount)) as sum_disc_price,
    count(*) as count_order
from
    lineitem
where
    l_shipdate <= date '1998-12-01' - interval '90' day
group by
    l_returnflag,
    l_linestatus
order by
    l_returnflag,
    l_linestatus;
"""

_COMMON_HEADER = """
package q1;

// TPC-H Query 1: pricing summary report (reduced aggregate set).

const date_1998_09_02 = 2436;

// composite group key (l_returnflag, l_linestatus) and aggregate result types
type q1_key = Stream(Bit(16), d=1);
type q1_result = Stream(Bit(128), d=1);

streamlet q1_s {
    sum_qty: q1_result out,
    sum_base_price: q1_result out,
    sum_disc_price: q1_result out,
    count_order: q1_result out,
}
"""

QUERY_SOURCE = (
    _COMMON_HEADER
    + """
impl q1_i of q1_s {
    instance lineitem(lineitem_reader_i),

    // where l_shipdate <= 1998-09-02
    instance cutoff(const_int_generator_i<type tpch_date, date_1998_09_02>),
    instance cmp_cutoff(compare_le_i<type tpch_date>),
    lineitem.l_shipdate => cmp_cutoff.lhs,
    cutoff.output => cmp_cutoff.rhs,

    // group key: (l_returnflag, l_linestatus)
    instance group_key(combine2_i<type tpch_char, type tpch_char, type q1_key>),
    lineitem.l_returnflag => group_key.in0,
    lineitem.l_linestatus => group_key.in1,

    // discounted price: l_extendedprice * (1 - l_discount)
    instance one(const_float_generator_i<type tpch_decimal, 1.0>),
    instance one_minus_disc(subtractor_i<type tpch_decimal, type tpch_decimal>),
    one.output => one_minus_disc.lhs,
    lineitem.l_discount => one_minus_disc.rhs,
    instance disc_price(multiplier_i<type tpch_decimal, type tpch_decimal>),
    lineitem.l_extendedprice => disc_price.lhs,
    one_minus_disc.output => disc_price.rhs,

    // keep only rows before the cutoff (key and measures share the keep signal)
    instance key_filter(filter_i<type q1_key>),
    group_key.output => key_filter.input,
    cmp_cutoff.result => key_filter.keep,
    instance qty_filter(filter_i<type tpch_decimal>),
    lineitem.l_quantity => qty_filter.input,
    cmp_cutoff.result => qty_filter.keep,
    instance base_price_filter(filter_i<type tpch_decimal>),
    lineitem.l_extendedprice => base_price_filter.input,
    cmp_cutoff.result => base_price_filter.keep,
    instance disc_price_filter(filter_i<type tpch_decimal>),
    disc_price.output => disc_price_filter.input,
    cmp_cutoff.result => disc_price_filter.keep,

    // grouped aggregates
    instance agg_sum_qty(group_sum_i<type q1_key, type tpch_decimal, type q1_result>),
    key_filter.output => agg_sum_qty.key,
    qty_filter.output => agg_sum_qty.value,
    instance agg_sum_base(group_sum_i<type q1_key, type tpch_decimal, type q1_result>),
    key_filter.output => agg_sum_base.key,
    base_price_filter.output => agg_sum_base.value,
    instance agg_sum_disc(group_sum_i<type q1_key, type tpch_decimal, type q1_result>),
    key_filter.output => agg_sum_disc.key,
    disc_price_filter.output => agg_sum_disc.value,
    instance agg_count(group_count_i<type q1_key, type tpch_decimal, type q1_result>),
    key_filter.output => agg_count.key,
    qty_filter.output => agg_count.value,

    agg_sum_qty.output => sum_qty,
    agg_sum_base.output => sum_base_price,
    agg_sum_disc.output => sum_disc_price,
    agg_count.output => count_order,
}

top q1_i;
"""
)

#: The same design with every duplicator and voider written out by hand
#: (sugaring disabled), mirroring the "TPC-H 1 (without sugaring)" row.
QUERY_SOURCE_NO_SUGAR = (
    _COMMON_HEADER
    + """
impl q1_i of q1_s {
    instance lineitem(lineitem_reader_i),

    // ---- explicit voiders for the reader columns this query never uses ----
    instance void_orderkey(voider_i<type tpch_int>),
    lineitem.l_orderkey => void_orderkey.input,
    instance void_partkey(voider_i<type tpch_int>),
    lineitem.l_partkey => void_partkey.input,
    instance void_suppkey(voider_i<type tpch_int>),
    lineitem.l_suppkey => void_suppkey.input,
    instance void_tax(voider_i<type tpch_decimal>),
    lineitem.l_tax => void_tax.input,
    instance void_commitdate(voider_i<type tpch_date>),
    lineitem.l_commitdate => void_commitdate.input,
    instance void_receiptdate(voider_i<type tpch_date>),
    lineitem.l_receiptdate => void_receiptdate.input,
    instance void_shipinstruct(voider_i<type tpch_char>),
    lineitem.l_shipinstruct => void_shipinstruct.input,
    instance void_shipmode(voider_i<type tpch_char>),
    lineitem.l_shipmode => void_shipmode.input,

    // ---- explicit duplicator for l_extendedprice (two consumers) ----
    instance dup_extendedprice(duplicator_i<type tpch_decimal, 2>),
    lineitem.l_extendedprice => dup_extendedprice.input,

    // where l_shipdate <= 1998-09-02
    instance cutoff(const_int_generator_i<type tpch_date, date_1998_09_02>),
    instance cmp_cutoff(compare_le_i<type tpch_date>),
    lineitem.l_shipdate => cmp_cutoff.lhs,
    cutoff.output => cmp_cutoff.rhs,

    // ---- explicit duplicator for the keep signal (four consumers) ----
    instance dup_keep(duplicator_i<type std_bool, 4>),
    cmp_cutoff.result => dup_keep.input,

    // group key: (l_returnflag, l_linestatus)
    instance group_key(combine2_i<type tpch_char, type tpch_char, type q1_key>),
    lineitem.l_returnflag => group_key.in0,
    lineitem.l_linestatus => group_key.in1,

    // discounted price: l_extendedprice * (1 - l_discount)
    instance one(const_float_generator_i<type tpch_decimal, 1.0>),
    instance one_minus_disc(subtractor_i<type tpch_decimal, type tpch_decimal>),
    one.output => one_minus_disc.lhs,
    lineitem.l_discount => one_minus_disc.rhs,
    instance disc_price(multiplier_i<type tpch_decimal, type tpch_decimal>),
    dup_extendedprice.output[0] => disc_price.lhs,
    one_minus_disc.output => disc_price.rhs,

    // keep only rows before the cutoff
    instance key_filter(filter_i<type q1_key>),
    group_key.output => key_filter.input,
    dup_keep.output[0] => key_filter.keep,
    instance qty_filter(filter_i<type tpch_decimal>),
    lineitem.l_quantity => qty_filter.input,
    dup_keep.output[1] => qty_filter.keep,
    instance base_price_filter(filter_i<type tpch_decimal>),
    dup_extendedprice.output[1] => base_price_filter.input,
    dup_keep.output[2] => base_price_filter.keep,
    instance disc_price_filter(filter_i<type tpch_decimal>),
    disc_price.output => disc_price_filter.input,
    dup_keep.output[3] => disc_price_filter.keep,

    // ---- explicit duplicators for the filtered key and quantity streams ----
    instance dup_key(duplicator_i<type q1_key, 4>),
    key_filter.output => dup_key.input,
    instance dup_qty(duplicator_i<type tpch_decimal, 2>),
    qty_filter.output => dup_qty.input,

    // grouped aggregates
    instance agg_sum_qty(group_sum_i<type q1_key, type tpch_decimal, type q1_result>),
    dup_key.output[0] => agg_sum_qty.key,
    dup_qty.output[0] => agg_sum_qty.value,
    instance agg_sum_base(group_sum_i<type q1_key, type tpch_decimal, type q1_result>),
    dup_key.output[1] => agg_sum_base.key,
    base_price_filter.output => agg_sum_base.value,
    instance agg_sum_disc(group_sum_i<type q1_key, type tpch_decimal, type q1_result>),
    dup_key.output[2] => agg_sum_disc.key,
    disc_price_filter.output => agg_sum_disc.value,
    instance agg_count(group_count_i<type q1_key, type tpch_decimal, type q1_result>),
    dup_key.output[3] => agg_count.key,
    dup_qty.output[1] => agg_count.value,

    agg_sum_qty.output => sum_qty,
    agg_sum_base.output => sum_base_price,
    agg_sum_disc.output => sum_disc_price,
    agg_count.output => count_order,
}

top q1_i;
"""
)


def _datasets(tables: Mapping[str, Table]) -> dict[str, Table]:
    return {"lineitem": tables["lineitem"]}


def _extract(trace: SimulationTrace) -> dict[tuple[str, str], dict[str, float]]:
    """Recombine the four grouped output streams into the golden_q1 shape."""
    results: dict[tuple[str, str], dict[str, float]] = {}
    port_to_measure = {
        "sum_qty": "sum_qty",
        "sum_base_price": "sum_base_price",
        "sum_disc_price": "sum_disc_price",
        "count_order": "count_order",
    }
    for port, measure in port_to_measure.items():
        for key, value in trace.output_values(port):
            group = results.setdefault(tuple(key), {})
            group[measure] = int(value) if measure == "count_order" else float(value)
    return results


QUERY = TpchQuery(
    name="q1",
    title="TPC-H 1",
    sql=SQL,
    query_source=QUERY_SOURCE,
    schemas=[LINEITEM_SCHEMA],
    top="q1_i",
    dataset_builder=_datasets,
    golden=golden_q1,
    extract_result=_extract,
)

QUERY_NO_SUGAR = TpchQuery(
    name="q1_no_sugar",
    title="TPC-H 1 (without sugaring)",
    sql=SQL,
    query_source=QUERY_SOURCE_NO_SUGAR,
    schemas=[LINEITEM_SCHEMA],
    top="q1_i",
    dataset_builder=_datasets,
    golden=golden_q1,
    extract_result=_extract,
    sugaring=False,
)
