"""TPC-H Query 6 (forecasting revenue change) in Tydi-lang.

The simplest of the evaluated queries: a conjunction of range predicates over
``lineitem`` followed by a single summed product.  Five comparators feed a
five-input ``and``; the product ``l_extendedprice * l_discount`` is filtered
by the combined keep signal and reduced by a ``sum`` accumulator.

The reader's unused columns are terminated by sugaring-inserted voiders and
the multiply-used ``l_discount`` / ``l_shipdate`` columns are fanned out by
sugaring-inserted duplicators -- this query is the clearest illustration of
Section IV-D.
"""

from __future__ import annotations

from typing import Mapping

from repro.arrow.dataset import Table
from repro.arrow.tpch import LINEITEM_SCHEMA, golden_q6
from repro.queries.base import TpchQuery
from repro.sim.engine import SimulationTrace

SQL = """
select
    sum(l_extendedprice * l_discount) as revenue
from
    lineitem
where
    l_shipdate >= date '1994-01-01'
    and l_shipdate < date '1994-01-01' + interval '1' year
    and l_discount between 0.05 and 0.07
    and l_quantity < 24;
"""

QUERY_SOURCE = """
package q6;

// TPC-H Query 6: forecasting revenue change.
// revenue = sum(l_extendedprice * l_discount) over 1994 shipments with a
// discount between 0.05 and 0.07 and a quantity below 24.

const date_1994_01_01 = 731;
const date_1995_01_01 = 1096;

streamlet q6_s {
    revenue: tpch_decimal out,
}

impl q6_i of q6_s {
    // the Fletcher-generated reader streams the lineitem columns
    instance lineitem(lineitem_reader_i),

    // condition: l_shipdate >= 1994-01-01
    instance date_from(const_int_generator_i<type tpch_date, date_1994_01_01>),
    instance cmp_date_from(compare_ge_i<type tpch_date>),
    lineitem.l_shipdate => cmp_date_from.lhs,
    date_from.output => cmp_date_from.rhs,

    // condition: l_shipdate < 1995-01-01
    instance date_to(const_int_generator_i<type tpch_date, date_1995_01_01>),
    instance cmp_date_to(compare_lt_i<type tpch_date>),
    lineitem.l_shipdate => cmp_date_to.lhs,
    date_to.output => cmp_date_to.rhs,

    // condition: l_discount >= 0.05
    instance disc_min(const_float_generator_i<type tpch_decimal, 0.05>),
    instance cmp_disc_min(compare_ge_i<type tpch_decimal>),
    lineitem.l_discount => cmp_disc_min.lhs,
    disc_min.output => cmp_disc_min.rhs,

    // condition: l_discount <= 0.07
    instance disc_max(const_float_generator_i<type tpch_decimal, 0.07>),
    instance cmp_disc_max(compare_le_i<type tpch_decimal>),
    lineitem.l_discount => cmp_disc_max.lhs,
    disc_max.output => cmp_disc_max.rhs,

    // condition: l_quantity < 24
    instance qty_max(const_float_generator_i<type tpch_decimal, 24.0>),
    instance cmp_qty(compare_lt_i<type tpch_decimal>),
    lineitem.l_quantity => cmp_qty.lhs,
    qty_max.output => cmp_qty.rhs,

    // keep = conjunction of the five predicates
    instance keep(and_i<5>),
    cmp_date_from.result => keep.input[0],
    cmp_date_to.result => keep.input[1],
    cmp_disc_min.result => keep.input[2],
    cmp_disc_max.result => keep.input[3],
    cmp_qty.result => keep.input[4],

    // revenue term: l_extendedprice * l_discount
    instance revenue_term(multiplier_i<type tpch_decimal, type tpch_decimal>),
    lineitem.l_extendedprice => revenue_term.lhs,
    lineitem.l_discount => revenue_term.rhs,

    // filter the kept terms and reduce them to a single sum
    instance keep_filter(filter_i<type tpch_decimal>),
    revenue_term.output => keep_filter.input,
    keep.output => keep_filter.keep,
    instance revenue_sum(sum_i<type tpch_decimal, type tpch_decimal>),
    keep_filter.output => revenue_sum.input,
    revenue_sum.output => revenue,
}

top q6_i;
"""


def _datasets(tables: Mapping[str, Table]) -> dict[str, Table]:
    return {"lineitem": tables["lineitem"]}


def _extract(trace: SimulationTrace) -> float:
    values = trace.output_values("revenue")
    return float(values[-1]) if values else 0.0


QUERY = TpchQuery(
    name="q6",
    title="TPC-H 6",
    sql=SQL,
    query_source=QUERY_SOURCE,
    schemas=[LINEITEM_SCHEMA],
    top="q6_i",
    dataset_builder=_datasets,
    golden=golden_q6,
    extract_result=_extract,
)
