"""Common machinery shared by the TPC-H query designs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

from repro.arrow.dataset import Table
from repro.arrow.fletcher import fletcher_interface_source, reader_behaviors
from repro.arrow.schema import ArrowSchema
from repro.lang.compile import CompilationResult, compile_sources
from repro.sim.engine import SimulationTrace, Simulator
from repro.stdlib.source import stdlib_loc
from repro.utils.text import count_loc
from repro.vhdl.backend import VhdlBackend


@dataclass
class QueryLoc:
    """The line-of-code breakdown of one Table-IV row."""

    query: str
    raw_sql: int
    query_logic: int  # LoCq
    fletcher: int  # LoCf
    stdlib: int  # LoCs
    total_tydi: int  # LoCa = LoCq + LoCf + LoCs
    vhdl: int  # LoCvhdl
    ratio_query: float  # Rq = LoCvhdl / LoCq
    ratio_total: float  # Ra = LoCvhdl / LoCa

    def as_row(self) -> list[str]:
        return [
            self.query,
            str(self.raw_sql),
            str(self.query_logic),
            str(self.total_tydi),
            str(self.vhdl),
            f"{self.ratio_query:.2f}",
            f"{self.ratio_total:.2f}",
        ]


@dataclass
class TpchQuery:
    """One evaluated TPC-H query: sources, datasets and validation hooks."""

    name: str
    title: str
    sql: str
    query_source: str
    schemas: list[ArrowSchema]
    top: str
    #: Build the per-table datasets the reader behaviours stream (the key must
    #: match the schema/table name); receives the base TPC-H tables.
    dataset_builder: Callable[[Mapping[str, Table]], dict[str, Table]]
    #: Compute the golden (reference) result from the base TPC-H tables.
    golden: Callable[[Mapping[str, Table]], object]
    #: Turn a finished simulation trace into the same shape as ``golden``.
    extract_result: Callable[[SimulationTrace], object]
    #: Whether the design relies on automatic duplicator/voider insertion.
    sugaring: bool = True
    _compiled: Optional[CompilationResult] = field(default=None, repr=False)

    # -- compilation --------------------------------------------------------------

    def sources(self) -> list[tuple[str, str]]:
        """The Fletcher interface plus the query logic (stdlib is implicit)."""
        return [
            (fletcher_interface_source(self.schemas), f"{self.name}_fletcher.td"),
            (self.query_source, f"{self.name}.td"),
        ]

    def compile(self, *, force: bool = False, cache=None) -> CompilationResult:
        """Compile the full design (stdlib + Fletcher interface + query logic).

        ``cache`` is an optional :class:`repro.pipeline.CompilationCache`;
        the per-query memo (``_compiled``) sits in front of it.  ``force``
        guarantees a real recompilation, so it bypasses both the memo and
        the cache.
        """
        if self._compiled is None or force:
            self._compiled = compile_sources(
                self.sources(),
                top=self.top,
                include_stdlib=True,
                sugaring=self.sugaring,
                project_name=self.name,
                cache=None if force else cache,
            )
        return self._compiled

    def compile_job(self):
        """This query as a :class:`repro.pipeline.CompileJob` for batch runs."""
        from repro.pipeline import CompileJob

        return CompileJob(
            name=self.name,
            sources=tuple(self.sources()),
            top=self.top,
            include_stdlib=True,
            sugaring=self.sugaring,
            project_name=self.name,
        )

    def generate_vhdl(self) -> dict[str, str]:
        return VhdlBackend(self.compile().project).generate()

    # -- line-of-code accounting ---------------------------------------------------

    def loc(self) -> QueryLoc:
        """Compute this query's Table-IV row."""
        query_logic = count_loc(self.query_source, language="tydi")
        fletcher = count_loc(fletcher_interface_source(self.schemas), language="tydi")
        stdlib = stdlib_loc()
        vhdl = VhdlBackend(self.compile().project).total_loc()
        total = query_logic + fletcher + stdlib
        return QueryLoc(
            query=self.title,
            raw_sql=count_loc(self.sql, language="sql"),
            query_logic=query_logic,
            fletcher=fletcher,
            stdlib=stdlib,
            total_tydi=total,
            vhdl=vhdl,
            ratio_query=vhdl / query_logic if query_logic else 0.0,
            ratio_total=vhdl / total if total else 0.0,
        )

    # -- simulation ------------------------------------------------------------------

    def default_plan(
        self, *, channel_capacity: int = 4, max_events: int = 5_000_000
    ):
        """The :class:`~repro.sim.harness.SimulationPlan` query runs use.

        TPC-H designs drive themselves through their reader behaviours, so
        the plan carries no stimuli -- only the channel capacity and the
        event budget the historical ``simulate`` defaults used.
        """
        from repro.sim.harness import SimulationPlan

        return SimulationPlan(
            channel_capacity=channel_capacity, max_events=max_events
        )

    def simulate(
        self,
        tables: Mapping[str, Table],
        *,
        channel_capacity: int = 4,
        max_events: int = 5_000_000,
    ) -> tuple[object, SimulationTrace, Simulator]:
        """Run the compiled design on a dataset and extract its result.

        Budgets resolve through :meth:`default_plan`, the same path the
        simulation harness takes; callers that want the picklable
        :class:`~repro.sim.harness.SimulationReport` instead of the raw
        trace use :meth:`simulate_report`.
        """
        plan = self.default_plan(
            channel_capacity=channel_capacity, max_events=max_events
        )
        datasets = self.dataset_builder(tables)
        result = self.compile()
        behaviors = reader_behaviors(self.schemas, datasets)
        simulator = Simulator(
            result.project,
            channel_capacity=plan.channel_capacity,
            behaviors=behaviors,
        )
        trace = simulator.run(max_time=plan.max_time, max_events=plan.max_events)
        return self.extract_result(trace), trace, simulator

    def simulate_report(
        self,
        tables: Mapping[str, Table],
        *,
        plan=None,
    ):
        """Simulate on a dataset and return the harness's report.

        Delegates to :func:`~repro.sim.harness.run_simulation` with this
        query's reader behaviours.  Behaviour overrides hold the dataset
        (not JSON-serialisable), so these runs bypass the ``sim:`` cache
        tier by construction -- the report itself still pickles fine.
        """
        from repro.sim.harness import SimulationPlan, run_simulation

        plan = self.default_plan() if plan is None else SimulationPlan.coerce(plan)
        datasets = self.dataset_builder(tables)
        behaviors = reader_behaviors(self.schemas, datasets)
        return run_simulation(self.compile().project, plan, behaviors=behaviors)
