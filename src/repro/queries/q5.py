"""TPC-H Query 5 (local supplier volume) in Tydi-lang.

Query 5 sums the discounted revenue per nation for orders placed in 1994
whose customer and supplier come from the same ASIA nation.  The Fletcher
reader streams the join-aligned projection (lineitem with its order,
customer, supplier, nation and region attributes); the hardware applies the
region / date / same-nation predicates and aggregates per nation name.
"""

from __future__ import annotations

from typing import Mapping

from repro.arrow.dataset import Table
from repro.arrow.schema import ArrowField, ArrowSchema
from repro.arrow.tpch import golden_q5, joined_table_for
from repro.queries.base import TpchQuery
from repro.sim.engine import SimulationTrace

SQL = """
select
    n_name,
    sum(l_extendedprice * (1 - l_discount)) as revenue
from
    customer,
    orders,
    lineitem,
    supplier,
    nation,
    region
where
    c_custkey = o_custkey
    and l_orderkey = o_orderkey
    and l_suppkey = s_suppkey
    and c_nationkey = s_nationkey
    and s_nationkey = n_nationkey
    and n_regionkey = r_regionkey
    and r_name = 'ASIA'
    and o_orderdate >= date '1994-01-01'
    and o_orderdate < date '1994-01-01' + interval '1' year
group by
    n_name
order by
    revenue desc;
"""

JOINED_SCHEMA = ArrowSchema(
    name="q5_joined",
    fields=(
        ArrowField("l_extendedprice", "decimal"),
        ArrowField("l_discount", "decimal"),
        ArrowField("o_orderdate", "date"),
        ArrowField("c_nationkey", "int64"),
        ArrowField("s_nationkey", "int64"),
        ArrowField("n_name", "utf8"),
        ArrowField("r_name", "utf8"),
    ),
)

QUERY_SOURCE = """
package q5;

// TPC-H Query 5: local supplier volume (revenue per ASIA nation, 1994 orders).

const date_1994_01_01 = 731;
const date_1995_01_01 = 1096;

type q5_result = Stream(Bit(128), d=1);

streamlet q5_s {
    revenue_by_nation: q5_result out,
}

impl q5_i of q5_s {
    instance data(q5_joined_reader_i),

    // r_name = 'ASIA'
    instance cmp_region(compare_const_eq_i<type tpch_char, "ASIA">),
    data.r_name => cmp_region.input,

    // customer and supplier nation must match (local supplier)
    instance cmp_nation(compare_eq_i<type tpch_int>),
    data.c_nationkey => cmp_nation.lhs,
    data.s_nationkey => cmp_nation.rhs,

    // o_orderdate >= 1994-01-01
    instance date_from(const_int_generator_i<type tpch_date, date_1994_01_01>),
    instance cmp_date_from(compare_ge_i<type tpch_date>),
    data.o_orderdate => cmp_date_from.lhs,
    date_from.output => cmp_date_from.rhs,

    // o_orderdate < 1995-01-01
    instance date_to(const_int_generator_i<type tpch_date, date_1995_01_01>),
    instance cmp_date_to(compare_lt_i<type tpch_date>),
    data.o_orderdate => cmp_date_to.lhs,
    date_to.output => cmp_date_to.rhs,

    // keep = conjunction of the four predicates
    instance keep(and_i<4>),
    cmp_region.result => keep.input[0],
    cmp_nation.result => keep.input[1],
    cmp_date_from.result => keep.input[2],
    cmp_date_to.result => keep.input[3],

    // revenue term: l_extendedprice * (1 - l_discount)
    instance one(const_float_generator_i<type tpch_decimal, 1.0>),
    instance one_minus_disc(subtractor_i<type tpch_decimal, type tpch_decimal>),
    one.output => one_minus_disc.lhs,
    data.l_discount => one_minus_disc.rhs,
    instance disc_price(multiplier_i<type tpch_decimal, type tpch_decimal>),
    data.l_extendedprice => disc_price.lhs,
    one_minus_disc.output => disc_price.rhs,

    // filter the nation name and the revenue term with the shared keep signal
    instance key_filter(filter_i<type tpch_char>),
    data.n_name => key_filter.input,
    keep.output => key_filter.keep,
    instance revenue_filter(filter_i<type tpch_decimal>),
    disc_price.output => revenue_filter.input,
    keep.output => revenue_filter.keep,

    // revenue per nation
    instance agg_revenue(group_sum_i<type tpch_char, type tpch_decimal, type q5_result>),
    key_filter.output => agg_revenue.key,
    revenue_filter.output => agg_revenue.value,
    agg_revenue.output => revenue_by_nation,
}

top q5_i;
"""


def _datasets(tables: Mapping[str, Table]) -> dict[str, Table]:
    return {"q5_joined": joined_table_for("q5", tables)}


def _extract(trace: SimulationTrace) -> dict[str, float]:
    return {str(key): float(value) for key, value in trace.output_values("revenue_by_nation")}


QUERY = TpchQuery(
    name="q5",
    title="TPC-H 5",
    sql=SQL,
    query_source=QUERY_SOURCE,
    schemas=[JOINED_SCHEMA],
    top="q5_i",
    dataset_builder=_datasets,
    golden=golden_q5,
    extract_result=_extract,
)
