"""Error and diagnostic types used across the Tydi-lang reproduction.

Every user-facing failure in the toolchain is reported through one of the
exception classes defined here so that callers (CLI, tests, benchmark harness)
can distinguish *which stage* of the pipeline rejected the input:

* :class:`TydiInputError` -- malformed compile inputs (source lists, option
  mappings) rejected before any stage runs.
* :class:`TydiWorkspaceError` -- session misuse of :class:`repro.workspace.
  Workspace` (unknown design/file names, duplicates).
* :class:`TydiSyntaxError` -- lexer / parser failures.
* :class:`TydiNameError` -- unresolved identifiers during evaluation.
* :class:`TydiTypeError` -- logical-type construction or expression typing
  failures.
* :class:`TydiEvaluationError` -- template instantiation, ``for``/``if``
  expansion, assertion failures and other evaluation-time problems.
* :class:`TydiDRCError` -- design-rule-check violations (type equality on
  connections, port usage counts, clock-domain mismatches).
* :class:`TydiIngestError` -- malformed Tydi-IR interchange documents
  rejected by the ingest frontend (:mod:`repro.interchange`).
* :class:`TydiBackendError` -- Tydi-IR emission or VHDL generation problems.
* :class:`TydiSimulationError` -- simulator configuration or runtime errors.
* :class:`TydiServerError` -- compile-service protocol violations (malformed
  request envelopes, unknown methods, transport failures).

All of them carry an optional :class:`repro.utils.source.SourceSpan` so that
messages can point at the offending location in the Tydi-lang source text.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Optional, Sequence


def did_you_mean(name: str, known: Sequence[str]) -> str:
    """A `` (did you mean 'x'?)`` tail for an unknown-name error message.

    Returns the empty string when nothing is close -- the one suggestion
    format shared by option validation across the toolchain (compile
    options, backend options).
    """
    close = difflib.get_close_matches(name, list(known), n=1)
    return f" (did you mean {close[0]!r}?)" if close else ""


class TydiError(Exception):
    """Base class for all errors raised by the toolchain."""

    #: Short machine-readable stage name ("parse", "evaluate", "drc", ...).
    stage: str = "general"

    def __init__(self, message: str, span: Optional[object] = None) -> None:
        self.message = message
        self.span = span
        super().__init__(self.render())

    def render(self) -> str:
        """Return the formatted, location-annotated message."""
        if self.span is not None:
            return f"{self.span}: {self.message}"
        return self.message


class TydiInputError(TydiError):
    """Raised when compile *inputs* (source lists, option mappings) are
    malformed before any stage runs -- e.g. a ``sources`` entry that is not a
    ``(source_text, filename)`` pair.  The message always names the offending
    index or key, so callers fail at the call site instead of deep inside a
    later stage with an opaque unpack error."""

    stage = "input"


class TydiWorkspaceError(TydiError):
    """Raised by :class:`repro.workspace.Workspace` for session misuse:
    unknown design or file names, duplicate designs, invalid cache wiring."""

    stage = "workspace"


class TydiSyntaxError(TydiError):
    """Raised by the lexer or parser on malformed Tydi-lang source."""

    stage = "parse"


class TydiNameError(TydiError):
    """Raised when an identifier cannot be resolved in any visible scope."""

    stage = "resolve"


class TydiTypeError(TydiError):
    """Raised for invalid logical-type construction or mis-typed expressions."""

    stage = "type"


class TydiEvaluationError(TydiError):
    """Raised during evaluation/expansion of the source into a flat design."""

    stage = "evaluate"


class TydiAssertionError(TydiEvaluationError):
    """Raised when a Tydi-lang ``assert(...)`` fails during evaluation."""

    stage = "assert"


class TydiDRCError(TydiError):
    """Raised when the design-rule check rejects an evaluated design."""

    stage = "drc"


class TydiIngestError(TydiError):
    """Raised by the Tydi-IR interchange frontend (:mod:`repro.interchange`)
    when an IR document cannot be parsed back into a
    :class:`repro.ir.model.Project`: lexical or syntactic problems, malformed
    logical-type expressions, and referential-integrity failures of the
    ingested design.  Carries the document location of the offending token,
    so remote callers receive the same ``file:line:col`` envelopes the
    Tydi-lang frontend produces."""

    stage = "ingest"


class TydiBackendError(TydiError):
    """Raised by the Tydi-IR emitter or the VHDL backend."""

    stage = "backend"


class TydiSimulationError(TydiError):
    """Raised by the event-driven simulator.

    Budget-exhaustion errors (``max_time`` / ``max_events``) carry the
    partial :class:`repro.sim.engine.SimulationTrace` recorded up to the
    point of failure in ``trace``, so callers can still run bottleneck or
    deadlock analysis on the truncated run."""

    stage = "simulate"

    def __init__(
        self,
        message: str,
        span: Optional[object] = None,
        *,
        trace: Optional[object] = None,
    ) -> None:
        self.trace = trace
        super().__init__(message, span)


class TydiServerError(TydiError):
    """Raised by the compile service (:mod:`repro.server`) for protocol-level
    problems: malformed request envelopes, unknown methods, missing or
    mis-typed parameters, transport failures on the client side."""

    stage = "server"


class TydiDrainingError(TydiServerError):
    """Raised when a request reaches a compile service that is draining for
    shutdown: in-flight jobs finish, but no new work is accepted.  Clients
    see the concrete type name in the error envelope (``type:
    "TydiDrainingError"``), so retry-against-a-replica logic can branch on
    it without string-matching."""

    stage = "server"


class TydiBackpressureError(TydiServerError):
    """Raised when a compile worker's bounded job queue is full: the caller
    should back off and retry.  Structured (``type:
    "TydiBackpressureError"``) for the same reason as
    :class:`TydiDrainingError` -- overload handling must be branchable."""

    stage = "server"


@dataclass(frozen=True)
class Diagnostic:
    """A non-fatal message produced by a pipeline stage.

    Diagnostics are collected (rather than raised) for conditions the paper
    describes as reportable-but-recoverable, e.g. the DRC report listing the
    sugaring decisions that were applied, or simulator warnings about ports
    that never fired.
    """

    severity: str  # "info" | "warning" | "error"
    stage: str
    message: str
    span: Optional[object] = None

    def __str__(self) -> str:  # pragma: no cover - trivial formatting
        loc = f"{self.span}: " if self.span is not None else ""
        return f"[{self.severity}/{self.stage}] {loc}{self.message}"


class DiagnosticSink:
    """Accumulates :class:`Diagnostic` objects emitted by pipeline stages."""

    def __init__(self) -> None:
        self._items: list[Diagnostic] = []

    def emit(self, severity: str, stage: str, message: str, span: object | None = None) -> Diagnostic:
        diag = Diagnostic(severity=severity, stage=stage, message=message, span=span)
        self._items.append(diag)
        return diag

    def info(self, stage: str, message: str, span: object | None = None) -> Diagnostic:
        return self.emit("info", stage, message, span)

    def warning(self, stage: str, message: str, span: object | None = None) -> Diagnostic:
        return self.emit("warning", stage, message, span)

    def error(self, stage: str, message: str, span: object | None = None) -> Diagnostic:
        return self.emit("error", stage, message, span)

    @property
    def items(self) -> list[Diagnostic]:
        return list(self._items)

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self._items if d.severity == "warning"]

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self._items if d.severity == "error"]

    def has_errors(self) -> bool:
        return any(d.severity == "error" for d in self._items)

    def extend(self, other: "DiagnosticSink") -> None:
        self._items.extend(other._items)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        return iter(self._items)
