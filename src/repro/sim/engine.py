"""The event-driven simulation engine.

The engine flattens a Tydi-IR project into *leaf components* (external
implementations -- standard-library primitives or simulated externals)
connected by *channels* (one per point-to-point stream connection, with a
bounded queue that models the handshake backpressure), and then processes a
time-ordered event queue.

A component's behaviour object is asked to ``fire`` whenever one of its
input channels receives data or one of its output channels frees space; the
behaviour consumes packets with ``ctx.take`` (which is also the handshake
acknowledge) and produces packets with ``ctx.send`` (optionally after a
latency).  Every transfer is recorded so that bottleneck analysis and
testbench generation can replay the run.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.errors import TydiSimulationError
from repro.ir.model import Implementation, PortDirection, Project
from repro.sim.packets import Packet, sequence_to_packets
from repro.spec.logical_types import Stream

#: Default simulation budgets, shared with :class:`repro.sim.harness.
#: SimulationPlan` so plan-driven and direct runs agree on the limits.
DEFAULT_MAX_TIME = 1_000_000
DEFAULT_MAX_EVENTS = 5_000_000


@dataclass
class ChannelStats:
    """Timing statistics of one channel, used by bottleneck analysis."""

    packets_transferred: int = 0
    total_queue_wait: int = 0
    blocked_sends: int = 0
    total_blocked_time: int = 0
    last_activity: int = 0

    def average_wait(self) -> float:
        if self.packets_transferred == 0:
            return 0.0
        return self.total_queue_wait / self.packets_transferred


class Channel:
    """A point-to-point stream connection with a bounded queue."""

    def __init__(
        self,
        name: str,
        source: tuple[str, str],
        sink: tuple[str, str],
        capacity: int = 2,
    ) -> None:
        self.name = name
        self.source = source  # (component path, port name)
        self.sink = sink
        self.capacity = max(1, capacity)
        self.queue: deque[tuple[Packet, int]] = deque()
        #: Packets produced by the source that did not fit in the queue yet.
        self.pending: deque[tuple[Packet, int]] = deque()
        self.stats = ChannelStats()
        self.closed = False

    def can_accept(self) -> bool:
        return len(self.queue) < self.capacity and not self.pending

    def occupancy(self) -> int:
        return len(self.queue)

    def has_data(self) -> bool:
        return bool(self.queue)

    def peek(self) -> Optional[Packet]:
        if not self.queue:
            return None
        return self.queue[0][0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Channel({self.name}, {len(self.queue)}/{self.capacity})"


@dataclass
class Component:
    """A leaf component of the flattened design."""

    path: str
    implementation: Implementation
    behavior: object
    inputs: dict[str, Channel] = field(default_factory=dict)
    outputs: dict[str, Channel] = field(default_factory=dict)
    state: dict[str, object] = field(default_factory=dict)
    state_log: list[tuple[int, str, object]] = field(default_factory=list)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Component({self.path}, {self.implementation.name})"


@dataclass
class SimulationTrace:
    """Everything recorded during one simulation run."""

    outputs: dict[str, list[tuple[int, Packet]]] = field(default_factory=dict)
    inputs: dict[str, list[tuple[int, Packet]]] = field(default_factory=dict)
    channels: dict[str, Channel] = field(default_factory=dict)
    end_time: int = 0
    events_processed: int = 0
    state_logs: dict[str, list[tuple[int, str, object]]] = field(default_factory=dict)

    def output_values(self, port: str) -> list[object]:
        return [p.value for _, p in self.outputs.get(port, []) if p.value is not None]

    def output_packets(self, port: str) -> list[Packet]:
        return [p for _, p in self.outputs.get(port, [])]


class Simulator:
    """Flattens a project and runs the event-driven simulation."""

    def __init__(
        self,
        project: Project,
        top: Optional[str] = None,
        channel_capacity: int = 2,
        behaviors: Optional[dict[str, object]] = None,
    ) -> None:
        from repro.sim.behavior import behavior_for  # local import avoids a cycle

        self.project = project
        self.top_name = top or project.top
        if self.top_name is None:
            raise TydiSimulationError("simulation requires a top-level implementation")
        self.top = project.implementation(self.top_name)
        if self.top.external:
            raise TydiSimulationError("the top-level implementation must be structural")
        self.channel_capacity = channel_capacity
        self._behavior_overrides = behaviors or {}
        self._behavior_for = behavior_for

        self.components: dict[str, Component] = {}
        self.channels: list[Channel] = []
        self.input_channels: dict[str, Channel] = {}
        self.output_channels: dict[str, Channel] = {}

        self.now = 0
        self._event_queue: list[tuple[int, int, Callable[[], None]]] = []
        self._event_seq = 0
        self._events_processed = 0
        self.trace = SimulationTrace()

        self._elaborate()

    # -- elaboration -----------------------------------------------------------

    def _elaborate(self) -> None:
        edges: list[tuple[tuple[str, str], tuple[str, str]]] = []
        self._collect("", self.top, edges)

        top_streamlet = self.project.streamlet_of(self.top)

        # Identify true sources and sinks of each connection chain.
        next_hop: dict[tuple[str, str], tuple[str, str]] = {}
        for source, sink in edges:
            if source in next_hop:
                raise TydiSimulationError(
                    f"endpoint {source} drives more than one connection; run the DRC first"
                )
            next_hop[source] = sink

        leaf_ports: set[tuple[str, str]] = set()
        for path, component in self.components.items():
            streamlet = self.project.streamlet_of(component.implementation)
            for port in streamlet.ports:
                leaf_ports.add((path, port.name))

        def is_terminal_sink(key: tuple[str, str]) -> bool:
            path, port_name = key
            if key in leaf_ports:
                port = self.project.streamlet_of(self.components[path].implementation).port(port_name)
                return port.direction is PortDirection.IN
            if path == "":
                return top_streamlet.port(port_name).direction is PortDirection.OUT
            return False

        def true_sources() -> Iterable[tuple[str, str]]:
            for path, component in self.components.items():
                streamlet = self.project.streamlet_of(component.implementation)
                for port in streamlet.ports:
                    if port.direction is PortDirection.OUT:
                        yield (path, port.name)
            for port in top_streamlet.ports:
                if port.direction is PortDirection.IN:
                    yield ("", port.name)

        for source in true_sources():
            if source not in next_hop:
                continue  # dangling source: DRC would have flagged it
            hop = next_hop[source]
            seen = {source}
            while not is_terminal_sink(hop):
                if hop not in next_hop or hop in seen:
                    raise TydiSimulationError(
                        f"connection chain starting at {source} does not terminate at a leaf port"
                    )
                seen.add(hop)
                hop = next_hop[hop]
            channel = Channel(
                name=f"{source[0] or 'top'}.{source[1]} -> {hop[0] or 'top'}.{hop[1]}",
                source=source,
                sink=hop,
                capacity=self.channel_capacity,
            )
            self.channels.append(channel)
            self.trace.channels[channel.name] = channel
            self._attach(channel)

    def _collect(
        self,
        path: str,
        implementation: Implementation,
        edges: list[tuple[tuple[str, str], tuple[str, str]]],
    ) -> None:
        """Recursively walk structural implementations, creating leaf components."""
        for instance in implementation.instances:
            inner = self.project.implementation(instance.implementation)
            inner_path = f"{path}/{instance.name}" if path else instance.name
            if inner.external:
                override = self._behavior_overrides.get(inner_path)
                if override is None:
                    override = self._behavior_overrides.get(inner.name)
                if override is None:
                    behavior = self._behavior_for(inner)
                elif hasattr(override, "fire"):
                    behavior = override
                elif callable(override):
                    # A factory: called with the implementation to build the behaviour.
                    behavior = override(inner)
                else:
                    raise TydiSimulationError(
                        f"behaviour override for {inner.name!r} must be a behaviour or a factory"
                    )
                self.components[inner_path] = Component(
                    path=inner_path, implementation=inner, behavior=behavior
                )
            else:
                self._collect(inner_path, inner, edges)

        for connection in implementation.connections:
            source_key = self._endpoint_key(path, implementation, connection.source)
            sink_key = self._endpoint_key(path, implementation, connection.sink)
            edges.append((source_key, sink_key))

    def _endpoint_key(self, path: str, implementation: Implementation, ref) -> tuple[str, str]:
        if ref.instance is None:
            return (path, ref.port)
        inner_path = f"{path}/{ref.instance}" if path else ref.instance
        return (inner_path, ref.port)

    def _attach(self, channel: Channel) -> None:
        from repro.stdlib.components import primitive_kind

        source_path, source_port = channel.source
        sink_path, sink_port = channel.sink

        # A constant generator feeding a voider would exchange packets forever
        # (the voider is always ready); such a pair carries no information, so
        # it is optimised away -- neither side sees the channel.
        const_kinds = ("const_int_generator", "const_float_generator", "const_str_generator")
        if source_path and sink_path:
            source_kind = primitive_kind(self.components[source_path].implementation) if source_path in self.components else None
            sink_kind = primitive_kind(self.components[sink_path].implementation) if sink_path in self.components else None
            if source_kind in const_kinds and sink_kind == "voider":
                channel.closed = True
                return

        if source_path == "":
            self.input_channels[source_port] = channel
        else:
            self.components[source_path].outputs[source_port] = channel
        if sink_path == "":
            self.output_channels[sink_port] = channel
        else:
            self.components[sink_path].inputs[sink_port] = channel

    # -- event queue -------------------------------------------------------------

    def schedule(self, delay: int, action: Callable[[], None]) -> None:
        if delay < 0:
            raise TydiSimulationError(f"cannot schedule an event {delay} cycles in the past")
        self._event_seq += 1
        heapq.heappush(self._event_queue, (self.now + delay, self._event_seq, action))

    def _notify_component(self, path: str) -> None:
        component = self.components.get(path)
        if component is None:
            return
        self.schedule(0, lambda: self._fire(component))

    def _fire(self, component: Component) -> None:
        from repro.sim.behavior import BehaviorContext  # local import avoids a cycle

        ctx = BehaviorContext(self, component)
        # Keep firing while the behaviour makes progress in this delta cycle.
        for _ in range(10_000):
            if not component.behavior.fire(ctx):
                break
        else:  # pragma: no cover - defensive guard against livelock
            raise TydiSimulationError(
                f"component {component.path} fired 10000 times at t={self.now}; "
                "behaviour is likely not consuming its inputs"
            )

    # -- channel operations --------------------------------------------------------

    def push(self, channel: Channel, packet: Packet, *, from_source: bool = True) -> None:
        """Deliver a packet into a channel (or its pending queue when full)."""
        stamped = Packet(value=packet.value, last=packet.last, produced_at=self.now)
        if len(channel.queue) < channel.capacity and not channel.pending:
            channel.queue.append((stamped, self.now))
            channel.stats.last_activity = self.now
            self._on_data_available(channel)
        else:
            channel.pending.append((stamped, self.now))
            channel.stats.blocked_sends += 1

    def pop(self, channel: Channel) -> Packet:
        """Consume the head packet of a channel (the handshake acknowledge)."""
        if not channel.queue:
            raise TydiSimulationError(f"pop from empty channel {channel.name}")
        packet, enqueued_at = channel.queue.popleft()
        channel.stats.packets_transferred += 1
        channel.stats.total_queue_wait += self.now - enqueued_at
        channel.stats.last_activity = self.now
        # Move a pending packet into the freed slot and account its blockage.
        if channel.pending:
            pending_packet, produced_at = channel.pending.popleft()
            channel.stats.total_blocked_time += self.now - produced_at
            channel.queue.append((pending_packet, self.now))
            self._on_data_available(channel)
        # Space freed: the source may be able to produce again.
        source_path, _ = channel.source
        if source_path:
            self._notify_component(source_path)
        return packet

    def _on_data_available(self, channel: Channel) -> None:
        sink_path, sink_port = channel.sink
        if sink_path == "":
            # Top-level output: record and consume immediately (the testbench
            # environment is always ready).
            packet, enqueued_at = channel.queue.popleft()
            channel.stats.packets_transferred += 1
            channel.stats.total_queue_wait += self.now - enqueued_at
            self.trace.outputs.setdefault(sink_port, []).append((self.now, packet))
            if channel.pending:
                pending_packet, produced_at = channel.pending.popleft()
                channel.stats.total_blocked_time += self.now - produced_at
                channel.queue.append((pending_packet, self.now))
                self.schedule(0, lambda: self._on_data_available(channel))
            source_path, _ = channel.source
            if source_path:
                self._notify_component(source_path)
        else:
            self._notify_component(sink_path)

    # -- stimulus and execution -------------------------------------------------------

    def drive(
        self,
        port: str,
        values: Iterable[object],
        *,
        dimensions: Optional[int] = None,
        interval: int = 1,
        start_time: int = 0,
    ) -> None:
        """Queue a stimulus sequence on a top-level input port."""
        if port not in self.input_channels:
            raise TydiSimulationError(
                f"top-level implementation {self.top_name!r} has no driven input port {port!r}"
            )
        channel = self.input_channels[port]
        if dimensions is None:
            top_port = self.project.streamlet_of(self.top).port(port)
            dimensions = (
                top_port.logical_type.dimension
                if isinstance(top_port.logical_type, Stream)
                else 1
            )
        packets = sequence_to_packets(values, dimensions)

        def feeder(index: int = 0) -> None:
            if index >= len(packets):
                return
            if channel.can_accept():
                packet = packets[index]
                self.trace.inputs.setdefault(port, []).append((self.now, packet))
                self.push(channel, packet)
                self.schedule(max(1, interval), lambda: feeder(index + 1))
            else:
                # Backpressure from the design: retry next cycle.
                channel.stats.blocked_sends += 1
                self.schedule(1, lambda: feeder(index))

        self.schedule(start_time, feeder)

    def drive_packets(self, port: str, packets: Iterable[Packet], interval: int = 1) -> None:
        """Queue explicit packets (with custom last flags) on an input port."""
        if port not in self.input_channels:
            raise TydiSimulationError(f"no driven input port {port!r}")
        channel = self.input_channels[port]
        packet_list = list(packets)

        def feeder(index: int = 0) -> None:
            if index >= len(packet_list):
                return
            if channel.can_accept():
                self.trace.inputs.setdefault(port, []).append((self.now, packet_list[index]))
                self.push(channel, packet_list[index])
                self.schedule(max(1, interval), lambda: feeder(index + 1))
            else:
                self.schedule(1, lambda: feeder(index))

        self.schedule(0, feeder)

    def run(
        self,
        max_time: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> SimulationTrace:
        """Process events until the queue drains.

        Reaching ``max_time`` *truncates*: the run stops and returns the
        trace recorded so far -- a deadlocked design keeps polling blocked
        stimuli forever, so the time budget is how such a run ends and
        reaches :func:`~repro.sim.deadlock.detect_deadlock`.  Exceeding
        ``max_events`` is a livelock diagnosis: it raises a
        :class:`TydiSimulationError` with the partial trace attached
        (``exc.trace``) so the truncated run can still be analysed.
        """
        max_time = DEFAULT_MAX_TIME if max_time is None else max_time
        max_events = DEFAULT_MAX_EVENTS if max_events is None else max_events
        # Give every behaviour a chance to initialise (constant generators
        # start emitting without any input).
        for component in self.components.values():
            start = getattr(component.behavior, "start", None)
            if callable(start):
                from repro.sim.behavior import BehaviorContext

                start(BehaviorContext(self, component))
            self._notify_component(component.path)

        while self._event_queue:
            time, _, action = heapq.heappop(self._event_queue)
            if time > max_time:
                break
            self.now = time
            action()
            self._events_processed += 1
            if self._events_processed > max_events:
                self._finalize_trace()
                raise TydiSimulationError(
                    f"simulation exceeded {max_events} events; possible livelock",
                    trace=self.trace,
                )

        self._finalize_trace()
        return self.trace

    def _finalize_trace(self) -> None:
        self.trace.end_time = self.now
        self.trace.events_processed = self._events_processed
        for component in self.components.values():
            if component.state_log:
                self.trace.state_logs[component.path] = list(component.state_log)
