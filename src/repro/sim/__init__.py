"""Event-driven simulator for Tydi-lang designs (Section V of the paper).

The simulator serves the three purposes described in the paper:

1. **functional prediction** -- given input data sequences on the top-level
   ports, compute the output sequences,
2. **bottleneck analysis** -- record, per connection, how long packets wait
   and how long sources are blocked by backpressure, so the most congested
   component can be identified,
3. **testbench generation** -- record the observed transfers into a Tydi-IR
   testbench (:class:`repro.ir.Testbench`) that can be lowered to VHDL.

Component behaviour comes from three sources: hard-coded Python behaviours
for standard-library primitives, behaviours parsed from in-source
``simulation { ... }`` blocks, and user-registered Python callables.
"""

from repro.sim.packets import Packet
from repro.sim.engine import Channel, Component, SimulationTrace, Simulator
from repro.sim.behavior import (
    BehaviorContext,
    PrimitiveBehavior,
    ScriptedBehavior,
    behavior_for,
    register_behavior,
)
from repro.sim.bottleneck import BottleneckReport, analyze_bottlenecks
from repro.sim.deadlock import DeadlockReport, detect_deadlock
from repro.sim.harness import (
    SimulationPlan,
    SimulationReport,
    Stimulus,
    report_from_trace,
    run_simulation,
)
from repro.sim.testbench_gen import testbench_from_trace

__all__ = [
    "Packet",
    "Channel",
    "Component",
    "SimulationTrace",
    "Simulator",
    "BehaviorContext",
    "PrimitiveBehavior",
    "ScriptedBehavior",
    "behavior_for",
    "register_behavior",
    "BottleneckReport",
    "analyze_bottlenecks",
    "DeadlockReport",
    "detect_deadlock",
    "SimulationPlan",
    "SimulationReport",
    "Stimulus",
    "report_from_trace",
    "run_simulation",
    "testbench_from_trace",
]
