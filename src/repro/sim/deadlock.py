"""Deadlock detection (Section V-B).

"Because state transformation is caused by events, which are combinations of
receiving data from different ports, analyzing the relationship between data
flow and state could also help identify the potential for deadlock."

After a run finishes (the event queue drains), a healthy design has consumed
every packet.  If packets remain stuck in channels -- or sources remain
blocked -- the design has stalled.  This module classifies such stalls and
reports the wait-for relationships between the involved components, which is
usually enough to spot cyclic waiting or a missing synchronisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.engine import SimulationTrace, Simulator


@dataclass
class StalledChannel:
    """A channel still holding data when the simulation stopped."""

    channel: str
    source: str
    sink: str
    queued_packets: int
    pending_packets: int


@dataclass
class DeadlockReport:
    """Result of the post-run deadlock analysis."""

    stalled: list[StalledChannel] = field(default_factory=list)
    waiting_components: list[str] = field(default_factory=list)
    wait_cycles: list[list[str]] = field(default_factory=list)

    @property
    def deadlocked(self) -> bool:
        return bool(self.stalled)

    def to_dot(self, project) -> str:
        """The design netlist with the stall participants painted.

        Highlights every component on a wait cycle, every waiting
        component, and the endpoints of stalled channels -- the graph a
        designer wants next to :meth:`summary` (pipe through
        ``dot -Tsvg``).
        """
        from repro.backends.dot import render_highlighted

        endpoints = [node for cycle in self.wait_cycles for node in cycle]
        endpoints.extend(self.waiting_components)
        for stall in self.stalled:
            endpoints.extend((stall.sink, stall.source))
        return render_highlighted(project, endpoints)

    def summary(self) -> str:
        if not self.deadlocked:
            return "no deadlock: all packets were consumed"
        lines = [f"potential deadlock: {len(self.stalled)} channel(s) still hold data"]
        for stall in self.stalled:
            lines.append(
                f"  {stall.channel}: {stall.queued_packets} queued, "
                f"{stall.pending_packets} blocked at the source"
            )
        if self.wait_cycles:
            for cycle in self.wait_cycles:
                lines.append("  wait cycle: " + " -> ".join(cycle))
        elif self.waiting_components:
            lines.append("  components waiting on more input: " + ", ".join(self.waiting_components))
        return "\n".join(lines)


def detect_deadlock(simulator: Simulator, trace: SimulationTrace | None = None) -> DeadlockReport:
    """Inspect the channels of a finished simulation for stalls and wait cycles."""
    from repro.stdlib.components import primitive_kind

    report = DeadlockReport()

    def always_producing(path: str) -> bool:
        """Constant generators legitimately leave data behind after a run."""
        component = simulator.components.get(path)
        if component is None:
            return False
        return primitive_kind(component.implementation) in (
            "const_int_generator",
            "const_float_generator",
            "const_str_generator",
        )

    for channel in simulator.channels:
        if always_producing(channel.source[0]):
            continue
        if channel.queue or channel.pending:
            report.stalled.append(
                StalledChannel(
                    channel=channel.name,
                    source=f"{channel.source[0] or 'top'}.{channel.source[1]}",
                    sink=f"{channel.sink[0] or 'top'}.{channel.sink[1]}",
                    queued_packets=len(channel.queue),
                    pending_packets=len(channel.pending),
                )
            )

    if not report.stalled:
        return report

    # A component is "waiting" when at least one of its inputs has data but it
    # still did not fire -- i.e. it waits for data on its *other* inputs.
    waits_on: dict[str, set[str]] = {}
    for path, component in simulator.components.items():
        has_some = any(ch.has_data() for ch in component.inputs.values())
        empty_inputs = [port for port, ch in component.inputs.items() if not ch.has_data()]
        if has_some and empty_inputs:
            report.waiting_components.append(path)
            # The component waits on whoever sources its empty inputs.
            sources = set()
            for port in empty_inputs:
                channel = component.inputs[port]
                sources.add(channel.source[0] or "top")
            waits_on[path] = sources

    # Cycle detection over the wait-for graph.
    visited: set[str] = set()

    def walk(node: str, stack: list[str]) -> None:
        if node in stack:
            cycle = stack[stack.index(node):] + [node]
            if cycle not in report.wait_cycles:
                report.wait_cycles.append(cycle)
            return
        if node in visited or node not in waits_on:
            return
        visited.add(node)
        for neighbour in waits_on[node]:
            walk(neighbour, stack + [node])

    for node in waits_on:
        walk(node, [])

    return report
