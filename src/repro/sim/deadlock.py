"""Deadlock detection (Section V-B).

"Because state transformation is caused by events, which are combinations of
receiving data from different ports, analyzing the relationship between data
flow and state could also help identify the potential for deadlock."

After a run finishes (the event queue drains), a healthy design has consumed
every packet.  If packets remain stuck in channels -- or sources remain
blocked -- the design has stalled.  This module classifies such stalls and
reports the wait-for relationships between the involved components, which is
usually enough to spot cyclic waiting or a missing synchronisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.engine import SimulationTrace, Simulator

#: Fill/stroke colour of wait-cycle participants in :meth:`DeadlockReport.
#: to_dot` (a shade apart from the netlist highlight, so cycle membership
#: reads at a glance).
_WAIT_CYCLE_COLOR = "#d94545"


@dataclass
class StalledChannel:
    """A channel still holding data when the simulation stopped."""

    channel: str
    source: str
    sink: str
    queued_packets: int
    pending_packets: int


@dataclass
class DeadlockReport:
    """Result of the post-run deadlock analysis."""

    stalled: list[StalledChannel] = field(default_factory=list)
    waiting_components: list[str] = field(default_factory=list)
    wait_cycles: list[list[str]] = field(default_factory=list)
    #: Every edge of the wait-for graph as ``(waiter, waited_on)`` pairs --
    #: the full relation the cycle detection walked, not just the cycles it
    #: found.  :meth:`to_dot` renders it alongside the netlist.
    wait_edges: list[tuple[str, str]] = field(default_factory=list)

    @property
    def deadlocked(self) -> bool:
        return bool(self.stalled)

    def to_dot(self, project) -> str:
        """The design netlist with the stall participants painted, plus the
        full wait-for graph.

        The main graph highlights every component on a wait cycle, every
        waiting component, and the endpoints of stalled channels; a
        dashed ``wait-for graph`` cluster then renders the complete
        wait-for relation itself -- every waiter, every ``waiter ->
        waited-on`` edge, with the edges (and nodes) lying on a detected
        cycle painted red -- the graph a designer wants next to
        :meth:`summary` (pipe through ``dot -Tsvg``).
        """
        from repro.backends.dot import render_highlighted

        endpoints = [node for cycle in self.wait_cycles for node in cycle]
        endpoints.extend(self.waiting_components)
        for stall in self.stalled:
            endpoints.extend((stall.sink, stall.source))
        base = render_highlighted(project, endpoints)
        overlay = self._wait_for_subgraph()
        if overlay is None:
            return base
        # Splice the cluster in before the document's closing brace so the
        # whole report stays one digraph.
        head, brace, tail = base.rpartition("}")
        return head + overlay + brace + tail

    def _wait_for_subgraph(self) -> str | None:
        """The wait-for relation as one DOT cluster (``None`` when empty)."""
        from repro.backends.dot import _quote as quote

        nodes: list[str] = []
        for waiter, waited_on in self.wait_edges:
            for node in (waiter, waited_on):
                if node not in nodes:
                    nodes.append(node)
        for node in self.waiting_components:
            if node not in nodes:
                nodes.append(node)
        if not nodes:
            return None
        on_cycle = {node for cycle in self.wait_cycles for node in cycle}
        cycle_edges = {
            (cycle[index], cycle[index + 1])
            for cycle in self.wait_cycles
            for index in range(len(cycle) - 1)
        }
        lines = [
            f"  subgraph {quote('cluster_wait_for')} {{",
            f"    label={quote('wait-for graph')};",
            "    style=dashed;",
        ]
        for node in nodes:
            attrs = [f"label={quote(node)}", "shape=box"]
            if node in on_cycle:
                attrs.append("style=filled")
                attrs.append(f"fillcolor={quote(_WAIT_CYCLE_COLOR)}")
            lines.append(f"    {quote(f'waitfor.{node}')} [{', '.join(attrs)}];")
        for waiter, waited_on in self.wait_edges:
            attrs = []
            if (waiter, waited_on) in cycle_edges:
                attrs = [f"color={quote(_WAIT_CYCLE_COLOR)}", "penwidth=2"]
            edge = f"    {quote(f'waitfor.{waiter}')} -> {quote(f'waitfor.{waited_on}')}"
            lines.append(f"{edge} [{', '.join(attrs)}];" if attrs else f"{edge};")
        lines.append("  }\n")
        return "\n".join(lines)

    def summary(self) -> str:
        if not self.deadlocked:
            return "no deadlock: all packets were consumed"
        lines = [f"potential deadlock: {len(self.stalled)} channel(s) still hold data"]
        for stall in self.stalled:
            lines.append(
                f"  {stall.channel}: {stall.queued_packets} queued, "
                f"{stall.pending_packets} blocked at the source"
            )
        if self.wait_cycles:
            for cycle in self.wait_cycles:
                lines.append("  wait cycle: " + " -> ".join(cycle))
        elif self.waiting_components:
            lines.append("  components waiting on more input: " + ", ".join(self.waiting_components))
        return "\n".join(lines)


def detect_deadlock(simulator: Simulator, trace: SimulationTrace | None = None) -> DeadlockReport:
    """Inspect the channels of a finished simulation for stalls and wait cycles."""
    from repro.stdlib.components import primitive_kind

    report = DeadlockReport()

    def always_producing(path: str) -> bool:
        """Constant generators legitimately leave data behind after a run."""
        component = simulator.components.get(path)
        if component is None:
            return False
        return primitive_kind(component.implementation) in (
            "const_int_generator",
            "const_float_generator",
            "const_str_generator",
        )

    for channel in simulator.channels:
        if always_producing(channel.source[0]):
            continue
        if channel.queue or channel.pending:
            report.stalled.append(
                StalledChannel(
                    channel=channel.name,
                    source=f"{channel.source[0] or 'top'}.{channel.source[1]}",
                    sink=f"{channel.sink[0] or 'top'}.{channel.sink[1]}",
                    queued_packets=len(channel.queue),
                    pending_packets=len(channel.pending),
                )
            )

    if not report.stalled:
        return report

    # A component is "waiting" when at least one of its inputs has data but it
    # still did not fire -- i.e. it waits for data on its *other* inputs.
    waits_on: dict[str, set[str]] = {}
    for path, component in simulator.components.items():
        has_some = any(ch.has_data() for ch in component.inputs.values())
        empty_inputs = [port for port, ch in component.inputs.items() if not ch.has_data()]
        if has_some and empty_inputs:
            report.waiting_components.append(path)
            # The component waits on whoever sources its empty inputs.
            sources = set()
            for port in empty_inputs:
                channel = component.inputs[port]
                sources.add(channel.source[0] or "top")
            waits_on[path] = sources
            # Record the full relation for the report's wait-for rendering
            # (sorted per waiter: deterministic DOT output).
            report.wait_edges.extend((path, source) for source in sorted(sources))

    # Cycle detection over the wait-for graph.
    visited: set[str] = set()

    def walk(node: str, stack: list[str]) -> None:
        if node in stack:
            cycle = stack[stack.index(node):] + [node]
            if cycle not in report.wait_cycles:
                report.wait_cycles.append(cycle)
            return
        if node in visited or node not in waits_on:
            return
        visited.add(node)
        for neighbour in waits_on[node]:
            walk(neighbour, stack + [node])

    for node in waits_on:
        walk(node, [])

    return report
