"""Bottleneck analysis (Section V-B).

"The simulator should be able to record the waiting time of all output ports
(blocked by handshaking).  Designers can investigate the output ports with
the longest blockage to find the bottleneck component."

The engine already records, per channel, how long packets sat in the queue
(sink-side congestion) and how long the source was blocked because the queue
was full (source-side backpressure).  This module turns those statistics into
a ranked report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.engine import SimulationTrace


@dataclass
class ChannelBottleneck:
    """Summary of one channel's congestion."""

    channel: str
    source: str
    sink: str
    packets: int
    average_queue_wait: float
    blocked_sends: int
    blocked_time: int

    def congestion_score(self) -> float:
        """A single ranking figure: time lost to waiting plus blockage."""
        return self.average_queue_wait * self.packets + self.blocked_time


@dataclass
class BottleneckReport:
    """Ranked list of the most congested channels of a run."""

    entries: list[ChannelBottleneck] = field(default_factory=list)
    total_time: int = 0

    def worst(self, count: int = 5) -> list[ChannelBottleneck]:
        return sorted(self.entries, key=lambda e: e.congestion_score(), reverse=True)[:count]

    def bottleneck_component(self) -> str | None:
        """The component whose input causes the largest blockage."""
        ranked = self.worst(1)
        if not ranked or ranked[0].congestion_score() == 0:
            return None
        return ranked[0].sink.split(".")[0] or None

    def to_dot(self, project, *, count: int = 3) -> str:
        """The design netlist with the most congested components painted.

        Runs the registered ``dot`` backend (see :mod:`repro.backends.dot`)
        with the worst ``count`` channels' endpoint components highlighted,
        so the ranking of :meth:`summary` can be read directly off the
        graph (pipe through ``dot -Tsvg``).
        """
        from repro.backends.dot import render_highlighted

        endpoints = [
            endpoint
            for entry in self.worst(count)
            if entry.congestion_score() > 0
            for endpoint in (entry.sink, entry.source)
        ]
        return render_highlighted(project, endpoints)

    def summary(self) -> str:
        lines = [f"bottleneck analysis over {self.total_time} cycle(s):"]
        for entry in self.worst(5):
            lines.append(
                f"  {entry.channel}: {entry.packets} packet(s), "
                f"avg wait {entry.average_queue_wait:.2f} cycles, "
                f"blocked {entry.blocked_time} cycle(s) ({entry.blocked_sends} send(s))"
            )
        if len(lines) == 1:
            lines.append("  no congestion recorded")
        return "\n".join(lines)


def analyze_bottlenecks(trace: SimulationTrace) -> BottleneckReport:
    """Build a :class:`BottleneckReport` from a finished simulation trace."""
    report = BottleneckReport(total_time=trace.end_time)
    for name, channel in trace.channels.items():
        stats = channel.stats
        report.entries.append(
            ChannelBottleneck(
                channel=name,
                source=f"{channel.source[0] or 'top'}.{channel.source[1]}",
                sink=f"{channel.sink[0] or 'top'}.{channel.sink[1]}",
                packets=stats.packets_transferred,
                average_queue_wait=stats.average_wait(),
                blocked_sends=stats.blocked_sends,
                blocked_time=stats.total_blocked_time,
            )
        )
    return report
