"""Data packets travelling over simulated Tydi streams.

A packet carries a Python value (the element data -- for a ``Group`` element
this is a dict of field values) plus the per-dimension ``last`` flags that
close nesting levels, exactly like the physical stream's ``last`` bits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable


@dataclass(frozen=True)
class Packet:
    """One element transfer on a stream."""

    value: object
    #: last[i] closes dimension i (0 = innermost); all False for inner elements.
    last: tuple[bool, ...] = ()
    #: The simulated time at which the packet was produced (set by the engine).
    produced_at: int = 0

    def closes_outermost(self) -> bool:
        """True when this packet terminates the whole (outermost) sequence."""
        return bool(self.last) and self.last[-1]

    def closes_dimension(self, dimension: int) -> bool:
        return dimension < len(self.last) and self.last[dimension]

    def with_last(self, last: Iterable[bool]) -> "Packet":
        return Packet(value=self.value, last=tuple(last), produced_at=self.produced_at)

    def with_value(self, value: object) -> "Packet":
        return Packet(value=value, last=self.last, produced_at=self.produced_at)


def sequence_to_packets(values: Iterable[object], dimensions: int = 1) -> list[Packet]:
    """Wrap a flat Python sequence into packets of a ``d``-dimensional stream.

    All elements belong to one outer sequence: only the final packet carries
    the ``last`` flags (all dimensions closed).  An empty sequence produces a
    single empty "close" packet so downstream accumulators still terminate.
    """
    values = list(values)
    packets: list[Packet] = []
    if not values:
        return [Packet(value=None, last=tuple(True for _ in range(max(1, dimensions))))]
    for index, value in enumerate(values):
        is_last = index == len(values) - 1
        last = tuple(is_last for _ in range(max(1, dimensions)))
        packets.append(Packet(value=value, last=last))
    return packets


def packets_to_sequence(packets: Iterable[Packet]) -> list[object]:
    """Unwrap packets back into the flat list of element values."""
    return [p.value for p in packets if p.value is not None]
