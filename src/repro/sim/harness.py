"""The simulation harness: declarative plans and picklable reports.

The engine (:mod:`repro.sim.engine`) is imperative -- construct a
:class:`Simulator`, call ``drive`` per port, call ``run``, then run the
analyses you want by hand.  That is fine for a script but useless for a
service: a *served* simulation must be described by one value that can be
fingerprinted (for the ``sim:`` stage-cache tier), shipped over the wire
(JSON), and replayed bit-identically anywhere in the fleet.

:class:`SimulationPlan` is that value -- the simulation sibling of
:class:`repro.lang.compile.CompileOptions`: a frozen, normalised dataclass
with a canonical :meth:`~SimulationPlan.fingerprint`.  :func:`run_simulation`
executes a plan against a compiled project and returns a
:class:`SimulationReport`: per-port throughput, output-latency percentiles,
the bottleneck and deadlock analyses, the event/time counters and
(optionally) the generated testbench.  The report is a plain picklable value
(it survives the disk and remote cache tiers) with a deterministic JSON
:meth:`~SimulationReport.as_dict` (what ``simulate_design`` puts on the
wire).
"""

from __future__ import annotations

import dataclasses
import hashlib
import math
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.errors import TydiInputError, did_you_mean
from repro.sim.bottleneck import BottleneckReport, analyze_bottlenecks
from repro.sim.deadlock import DeadlockReport, detect_deadlock
from repro.sim.engine import (
    DEFAULT_MAX_EVENTS,
    DEFAULT_MAX_TIME,
    SimulationTrace,
    Simulator,
)

#: The analyses a plan may request, in the order reports render them.
KNOWN_ANALYSES = ("bottleneck", "deadlock")

#: JSON-representable stimulus element types (a plan must survive the wire).
_SCALAR_TYPES = (bool, int, float, str, type(None))


def _check_scalar(value: object, where: str) -> object:
    if not isinstance(value, _SCALAR_TYPES):
        raise TydiInputError(
            f"{where}: stimulus values must be JSON scalars "
            f"(bool/int/float/str/null), got {type(value).__name__}"
        )
    return value


@dataclass(frozen=True)
class Stimulus:
    """One driven input port of a plan: ``values`` fed every ``interval``."""

    port: str
    values: tuple[object, ...] = ()
    interval: int = 1
    start_time: int = 0
    #: Stream dimensionality override; ``None`` reads it off the port type.
    dimensions: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.port, str) or not self.port:
            raise TydiInputError("stimulus port must be a non-empty string")
        values = tuple(
            _check_scalar(v, f"stimulus {self.port!r}") for v in self.values
        )
        object.__setattr__(self, "values", values)
        if self.interval < 1:
            raise TydiInputError(
                f"stimulus {self.port!r}: interval must be >= 1, got {self.interval}"
            )
        if self.start_time < 0:
            raise TydiInputError(
                f"stimulus {self.port!r}: start_time must be >= 0, got {self.start_time}"
            )

    @classmethod
    def coerce(cls, value: "Stimulus | Mapping[str, object]") -> "Stimulus":
        if isinstance(value, cls):
            return value
        if isinstance(value, Mapping):
            allowed = tuple(f.name for f in dataclasses.fields(cls))
            for key in value:
                if key not in allowed:
                    raise TydiInputError(
                        f"unknown stimulus key {key!r}"
                        f"{did_you_mean(str(key), allowed)} "
                        f"(valid keys: {', '.join(allowed)})"
                    )
            return cls(**value)  # type: ignore[arg-type]
        raise TydiInputError(
            f"a stimulus must be a Stimulus or a mapping, got {type(value).__name__}"
        )

    def as_dict(self) -> dict[str, object]:
        return {
            "port": self.port,
            "values": list(self.values),
            "interval": self.interval,
            "start_time": self.start_time,
            "dimensions": self.dimensions,
        }


def _normalize_stimuli(value: object) -> tuple[Stimulus, ...]:
    """Accept ``{port: values}``, a sequence of mappings / ``(port, values)``
    pairs / :class:`Stimulus` instances; return the sorted-by-port tuple
    normal form (one entry per port)."""
    if value is None:
        return ()
    stimuli: list[Stimulus] = []
    if isinstance(value, Mapping):
        for port, values in value.items():
            stimuli.append(Stimulus(port=str(port), values=tuple(values)))
    elif isinstance(value, Sequence) and not isinstance(value, (str, bytes)):
        for index, entry in enumerate(value):
            if isinstance(entry, (Stimulus, Mapping)):
                stimuli.append(Stimulus.coerce(entry))
            elif isinstance(entry, Sequence) and not isinstance(entry, (str, bytes)) and len(entry) == 2:
                port, values = entry
                stimuli.append(Stimulus(port=str(port), values=tuple(values)))
            else:
                raise TydiInputError(
                    f"stimuli[{index}]: expected a Stimulus, a mapping or a "
                    f"(port, values) pair, got {type(entry).__name__}"
                )
    else:
        raise TydiInputError(
            f"stimuli must be a mapping or a sequence, got {type(value).__name__}"
        )
    seen: set[str] = set()
    for stimulus in stimuli:
        if stimulus.port in seen:
            raise TydiInputError(f"duplicate stimulus for port {stimulus.port!r}")
        seen.add(stimulus.port)
    return tuple(sorted(stimuli, key=lambda s: s.port))


def _normalize_analyses(value: object) -> tuple[str, ...]:
    if value is None:
        return KNOWN_ANALYSES
    if isinstance(value, str):
        value = (value,)
    names: list[str] = []
    for name in value:  # type: ignore[union-attr]
        if name not in KNOWN_ANALYSES:
            raise TydiInputError(
                f"unknown analysis {name!r}{did_you_mean(str(name), KNOWN_ANALYSES)} "
                f"(valid analyses: {', '.join(KNOWN_ANALYSES)})"
            )
        if name not in names:
            names.append(name)
    # Canonical order: the KNOWN_ANALYSES order, not the caller's.
    return tuple(name for name in KNOWN_ANALYSES if name in names)


#: The stable field order of a plan -- the one definition
#: :meth:`SimulationPlan.as_dict` and :meth:`SimulationPlan.from_kwargs`
#: share with the ``sim:`` cache fingerprints.
PLAN_FIELD_NAMES = (
    "stimuli",
    "channel_capacity",
    "max_time",
    "max_events",
    "analyses",
    "testbench",
)


@dataclass(frozen=True)
class SimulationPlan:
    """Every knob of one simulation run, as one frozen value.

    The simulation sibling of :class:`repro.lang.compile.CompileOptions`:
    normalised on construction (stimuli sort by port and become
    :class:`Stimulus` tuples, analyses deduplicate into canonical order),
    safe to share across threads, and content-addressed by
    :meth:`fingerprint` -- the ``sim:`` cache tier keys a report on the
    design's evaluate fingerprint *plus* this plan fingerprint.
    """

    stimuli: tuple[Stimulus, ...] = ()
    channel_capacity: int = 2
    max_time: int = DEFAULT_MAX_TIME
    max_events: int = DEFAULT_MAX_EVENTS
    analyses: tuple[str, ...] = KNOWN_ANALYSES
    #: Record the observed transfers as a Tydi-IR testbench on the report.
    testbench: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "stimuli", _normalize_stimuli(self.stimuli))
        object.__setattr__(self, "analyses", _normalize_analyses(self.analyses))
        if self.channel_capacity < 1:
            raise TydiInputError(
                f"channel_capacity must be >= 1, got {self.channel_capacity}"
            )
        if self.max_time < 0 or self.max_events < 1:
            raise TydiInputError(
                "simulation budgets must be positive "
                f"(max_time={self.max_time}, max_events={self.max_events})"
            )

    @classmethod
    def from_kwargs(cls, **kwargs: object) -> "SimulationPlan":
        """Build a plan from keyword arguments, rejecting unknown names."""
        for key in kwargs:
            if key not in PLAN_FIELD_NAMES:
                raise TydiInputError(
                    f"unknown simulation plan key {key!r}"
                    f"{did_you_mean(key, PLAN_FIELD_NAMES)} "
                    f"(valid keys: {', '.join(PLAN_FIELD_NAMES)})"
                )
        return cls(**kwargs)  # type: ignore[arg-type]

    @classmethod
    def coerce(cls, value: "SimulationPlan | Mapping[str, object] | None") -> "SimulationPlan":
        """Normalise ``None`` / a mapping / an instance to an instance."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, Mapping):
            return cls.from_kwargs(**value)
        raise TydiInputError(
            f"a simulation plan must be a SimulationPlan, a mapping or None, "
            f"got {type(value).__name__}"
        )

    def replace(self, **changes: object) -> "SimulationPlan":
        for key in changes:
            if key not in PLAN_FIELD_NAMES:
                return self.from_kwargs(**changes)  # raises with did-you-mean
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]

    def as_dict(self) -> dict[str, object]:
        """The JSON normal form (also what :meth:`fingerprint` hashes)."""
        return {
            "stimuli": [stimulus.as_dict() for stimulus in self.stimuli],
            "channel_capacity": self.channel_capacity,
            "max_time": self.max_time,
            "max_events": self.max_events,
            "analyses": list(self.analyses),
            "testbench": self.testbench,
        }

    def fingerprint(self) -> str:
        """Stable SHA-256 content address of this plan.

        Shares the cache-format salt of :mod:`repro.pipeline.cache`, so a
        schema or compiler bump orphans stored sim reports exactly like it
        orphans every other stage artefact.
        """
        import repro
        from repro.pipeline.cache import (
            CACHE_VERSION,
            STAGE_SCHEMA_VERSION,
            canonical_option_repr,
        )

        hasher = hashlib.sha256()
        hasher.update(
            f"tydi-simplan-v{CACHE_VERSION}.{STAGE_SCHEMA_VERSION}:"
            f"compiler-{repro.__version__}".encode()
        )
        normal = self.as_dict()
        for key in sorted(normal):
            hasher.update(b"\x00plan\x00")
            hasher.update(key.encode())
            hasher.update(b"=")
            hasher.update(canonical_option_repr(normal[key]).encode())
        return hasher.hexdigest()


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------


_PERCENTILES = (50, 90, 99)


def _percentile(ordered: list[int], fraction: float) -> int:
    """Nearest-rank percentile over a pre-sorted list (deterministic)."""
    if not ordered:
        return 0
    rank = math.ceil(fraction * len(ordered))
    index = min(len(ordered) - 1, max(0, rank - 1))
    return ordered[index]


@dataclass(frozen=True)
class PortMetrics:
    """Throughput and latency figures of one top-level output port."""

    port: str
    packets: int
    #: Packets per cycle over the port's active window.
    throughput: float
    #: Arrival-time percentiles in cycles from t=0 (nearest rank); the pXX
    #: figure reads "XX% of this port's packets had arrived by then".
    latency: tuple[tuple[int, int], ...]
    first_time: int
    last_time: int

    def latency_dict(self) -> dict[str, int]:
        return {f"p{p}": value for p, value in self.latency}

    def as_dict(self) -> dict[str, object]:
        return {
            "packets": self.packets,
            "throughput": self.throughput,
            "latency": self.latency_dict(),
            "first_time": self.first_time,
            "last_time": self.last_time,
        }


def _port_metrics(port: str, events: list[tuple[int, object]]) -> PortMetrics:
    times = sorted(time for time, _ in events)
    packets = len(times)
    if not times:
        return PortMetrics(port, 0, 0.0, tuple((p, 0) for p in _PERCENTILES), 0, 0)
    window = times[-1] - times[0] + 1
    latency = tuple(
        (p, _percentile(times, p / 100.0)) for p in _PERCENTILES
    )
    return PortMetrics(
        port=port,
        packets=packets,
        throughput=packets / window,
        latency=latency,
        first_time=times[0],
        last_time=times[-1],
    )


@dataclass
class SimulationReport:
    """Everything one plan-driven simulation run produced.

    A plain picklable value: it round-trips through the disk and remote
    cache tiers, and :meth:`as_dict` is the deterministic JSON shape the
    ``simulate_design`` server method returns (two runs of the same design
    and plan serialise byte-identically under ``json.dumps(...,
    sort_keys=True)``).
    """

    verdict: str  # "ok" | "deadlock"
    end_time: int
    events_processed: int
    plan_fingerprint: str
    outputs: dict[str, list[object]] = field(default_factory=dict)
    port_metrics: dict[str, PortMetrics] = field(default_factory=dict)
    bottleneck: Optional[BottleneckReport] = None
    deadlock: Optional[DeadlockReport] = None
    testbench: Optional[object] = None

    @property
    def deadlocked(self) -> bool:
        return self.verdict == "deadlock"

    def as_dict(self) -> dict[str, object]:
        """The wire form: JSON-safe and deterministic."""
        bottleneck = None
        if self.bottleneck is not None:
            bottleneck = {
                "total_time": self.bottleneck.total_time,
                "bottleneck_component": self.bottleneck.bottleneck_component(),
                "worst": [
                    {
                        "channel": entry.channel,
                        "source": entry.source,
                        "sink": entry.sink,
                        "packets": entry.packets,
                        "average_queue_wait": entry.average_queue_wait,
                        "blocked_sends": entry.blocked_sends,
                        "blocked_time": entry.blocked_time,
                        "congestion_score": entry.congestion_score(),
                    }
                    for entry in self.bottleneck.worst(5)
                ],
            }
        deadlock = None
        if self.deadlock is not None:
            deadlock = {
                "deadlocked": self.deadlock.deadlocked,
                "stalled": [
                    {
                        "channel": stall.channel,
                        "source": stall.source,
                        "sink": stall.sink,
                        "queued_packets": stall.queued_packets,
                        "pending_packets": stall.pending_packets,
                    }
                    for stall in self.deadlock.stalled
                ],
                "waiting_components": list(self.deadlock.waiting_components),
                "wait_cycles": [list(cycle) for cycle in self.deadlock.wait_cycles],
                "wait_edges": [list(edge) for edge in self.deadlock.wait_edges],
            }
        testbench = None
        if self.testbench is not None:
            vectors = getattr(self.testbench, "vectors", {}) or {}
            testbench = {
                "drives": sum(
                    len(vector.events)
                    for vector in vectors.values()
                    if vector.direction == "drive"
                ),
                "expects": sum(
                    len(vector.events)
                    for vector in vectors.values()
                    if vector.direction == "expect"
                ),
            }
        return {
            "verdict": self.verdict,
            "end_time": self.end_time,
            "events_processed": self.events_processed,
            "plan_fingerprint": self.plan_fingerprint,
            "outputs": {port: list(values) for port, values in sorted(self.outputs.items())},
            "ports": {
                port: metrics.as_dict()
                for port, metrics in sorted(self.port_metrics.items())
            },
            "bottleneck": bottleneck,
            "deadlock": deadlock,
            "testbench": testbench,
        }

    def to_dot(self, project) -> str:
        """Render the run over the design netlist, reusing the analysis DOT.

        A deadlocked run renders the deadlock report (stall participants
        plus the wait-for cluster); a healthy run renders the bottleneck
        highlight.  Requires the corresponding analysis to have been in the
        plan's ``analyses``.
        """
        from repro.errors import TydiSimulationError

        if self.deadlocked and self.deadlock is not None:
            return self.deadlock.to_dot(project)
        if self.bottleneck is not None:
            return self.bottleneck.to_dot(project)
        if self.deadlock is not None:
            return self.deadlock.to_dot(project)
        raise TydiSimulationError(
            "report has no analysis to render; include 'bottleneck' or "
            "'deadlock' in the plan's analyses"
        )

    def summary(self) -> str:
        lines = [
            f"simulation verdict: {self.verdict} "
            f"({self.events_processed} event(s), {self.end_time} cycle(s))"
        ]
        for port, metrics in sorted(self.port_metrics.items()):
            latency = ", ".join(
                f"p{p}={value}" for p, value in metrics.latency
            )
            lines.append(
                f"  {port}: {metrics.packets} packet(s), "
                f"{metrics.throughput:.3f} packets/cycle, latency {latency}"
            )
        if self.deadlock is not None and self.deadlock.deadlocked:
            lines.append("  " + self.deadlock.summary().replace("\n", "\n  "))
        elif self.bottleneck is not None:
            culprit = self.bottleneck.bottleneck_component()
            if culprit:
                lines.append(f"  bottleneck component: {culprit}")
        return "\n".join(lines)


def run_simulation(
    project,
    plan: "SimulationPlan | Mapping[str, object] | None" = None,
    *,
    behaviors: Optional[dict[str, object]] = None,
    top: Optional[str] = None,
) -> SimulationReport:
    """Execute one :class:`SimulationPlan` against a compiled project.

    Elaborates through the existing :class:`Simulator`, drives the plan's
    stimuli, runs the requested analyses and folds everything into a
    :class:`SimulationReport`.  Budget exhaustion propagates as the
    engine's structured :class:`~repro.errors.TydiSimulationError` (partial
    trace attached); so do elaboration failures (e.g. an external
    implementation without a behaviour).

    ``behaviors`` passes instance-path / implementation-name overrides
    straight to the engine -- note that behaviour objects are not part of
    the plan fingerprint, so override-driven runs must not be cached (the
    :class:`repro.workspace.Workspace` query only caches declarative runs).
    """
    plan = SimulationPlan.coerce(plan)
    simulator = Simulator(
        project,
        top=top,
        channel_capacity=plan.channel_capacity,
        behaviors=behaviors,
    )
    for stimulus in plan.stimuli:
        simulator.drive(
            stimulus.port,
            list(stimulus.values),
            dimensions=stimulus.dimensions,
            interval=stimulus.interval,
            start_time=stimulus.start_time,
        )
    trace = simulator.run(max_time=plan.max_time, max_events=plan.max_events)
    return report_from_trace(simulator, trace, plan)


def report_from_trace(
    simulator: Simulator,
    trace: SimulationTrace,
    plan: SimulationPlan,
) -> SimulationReport:
    """Fold a finished (or truncated) run into a :class:`SimulationReport`.

    Split out of :func:`run_simulation` so callers that already hold a
    simulator/trace pair -- e.g. :meth:`repro.queries.base.TpchQuery.
    simulate`, or error handlers analysing the partial trace attached to a
    budget-exhaustion error -- get the same report shape.
    """
    bottleneck = (
        analyze_bottlenecks(trace) if "bottleneck" in plan.analyses else None
    )
    deadlock = (
        detect_deadlock(simulator, trace) if "deadlock" in plan.analyses else None
    )
    testbench = None
    if plan.testbench:
        from repro.sim.testbench_gen import testbench_from_trace

        testbench = testbench_from_trace(simulator, trace)
    verdict = "deadlock" if deadlock is not None and deadlock.deadlocked else "ok"
    return SimulationReport(
        verdict=verdict,
        end_time=trace.end_time,
        events_processed=trace.events_processed,
        plan_fingerprint=plan.fingerprint(),
        outputs={
            port: trace.output_values(port) for port in sorted(trace.outputs)
        },
        port_metrics={
            port: _port_metrics(port, events)
            for port, events in sorted(trace.outputs.items())
        },
        bottleneck=bottleneck,
        deadlock=deadlock,
        testbench=testbench,
    )
