"""Component behaviours for the simulator.

Three behaviour sources are supported (Section V-A):

* :class:`PrimitiveBehavior` subclasses -- hard-coded Python models of the
  standard-library primitives (duplicator, voider, arithmetic, comparators,
  filter, aggregators, ...), selected via the implementation's primitive
  kind,
* :class:`ScriptedBehavior` -- behaviour compiled from an in-source
  ``simulation { state ...; on receive(...) { ... } }`` block,
* user-registered behaviours (:func:`register_behavior` or the ``behaviors``
  argument of :class:`repro.sim.Simulator`) for external implementations
  designed outside the Tydi world.

A behaviour implements ``fire(ctx) -> bool``: examine the input channels,
consume packets (``ctx.take`` -- the handshake acknowledge), and produce
packets (``ctx.send``).  Returning True means progress was made and the
engine will call ``fire`` again within the same delta cycle.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import TydiSimulationError
from repro.ir.model import Implementation
from repro.lang import ast
from repro.lang.expr import evaluate_expr
from repro.lang.values import Scope
from repro.sim.packets import Packet
from repro.stdlib.components import primitive_kind


class BehaviorContext:
    """The API a behaviour uses to interact with the engine."""

    def __init__(self, simulator, component) -> None:
        self.simulator = simulator
        self.component = component

    # -- time and state ----------------------------------------------------------

    @property
    def now(self) -> int:
        return self.simulator.now

    def get_state(self, name: str, default: object = None) -> object:
        return self.component.state.get(name, default)

    def set_state(self, name: str, value: object) -> None:
        self.component.state[name] = value
        self.component.state_log.append((self.now, name, value))

    # -- input side ---------------------------------------------------------------

    def has_input(self, port: str) -> bool:
        channel = self.component.inputs.get(port)
        return channel is not None and channel.has_data()

    def peek(self, port: str) -> Optional[Packet]:
        channel = self.component.inputs.get(port)
        if channel is None:
            return None
        return channel.peek()

    def take(self, port: str) -> Packet:
        """Consume (acknowledge) the head packet of an input port."""
        channel = self.component.inputs.get(port)
        if channel is None or not channel.has_data():
            raise TydiSimulationError(
                f"component {self.component.path} tried to take from empty port {port!r}"
            )
        return self.simulator.pop(channel)

    def input_ports(self) -> list[str]:
        return list(self.component.inputs)

    # -- output side -----------------------------------------------------------------

    def can_send(self, port: str) -> bool:
        channel = self.component.outputs.get(port)
        return channel is not None and channel.can_accept()

    def send(self, port: str, packet: Packet | object, delay: int = 0) -> None:
        """Emit a packet on an output port, optionally after ``delay`` cycles."""
        channel = self.component.outputs.get(port)
        if channel is None:
            # Output not connected anywhere (e.g. voided away at a higher
            # level); silently drop, like hardware whose ready is tied high.
            return
        if not isinstance(packet, Packet):
            packet = Packet(value=packet)
        if delay <= 0:
            self.simulator.push(channel, packet)
        else:
            self.simulator.schedule(delay, lambda: self.simulator.push(channel, packet))

    def output_ports(self) -> list[str]:
        return list(self.component.outputs)


class PrimitiveBehavior:
    """Base class of hard-coded primitive behaviours."""

    #: Cycles between consuming the inputs and producing the output.
    latency: int = 1

    def __init__(self, implementation: Implementation) -> None:
        self.implementation = implementation
        self.metadata = implementation.metadata

    def argument(self, index: int, default: object = None) -> object:
        arguments = self.metadata.get("arguments", ())
        if index < len(arguments):
            return arguments[index]
        return default

    def fire(self, ctx: BehaviorContext) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


def _merge_last(*packets: Packet) -> tuple[bool, ...]:
    """Combine last flags of synchronised inputs (element-wise or)."""
    longest = max((len(p.last) for p in packets), default=0)
    merged = []
    for index in range(longest):
        merged.append(any(index < len(p.last) and p.last[index] for p in packets))
    return tuple(merged)


class DuplicatorBehavior(PrimitiveBehavior):
    """Copy each input packet to every output; all outputs must have space."""

    latency = 0

    def fire(self, ctx: BehaviorContext) -> bool:
        if not ctx.has_input("input"):
            return False
        if not all(ctx.can_send(port) for port in ctx.output_ports()):
            return False
        packet = ctx.take("input")
        for port in ctx.output_ports():
            ctx.send(port, packet)
        return True


class VoiderBehavior(PrimitiveBehavior):
    """Always ready: consume and discard everything."""

    latency = 0

    def fire(self, ctx: BehaviorContext) -> bool:
        progressed = False
        for port in ctx.input_ports():
            if ctx.has_input(port):
                ctx.take(port)
                progressed = True
        return progressed


class DemuxBehavior(PrimitiveBehavior):
    """Round-robin distribution of input packets over the output channels."""

    def fire(self, ctx: BehaviorContext) -> bool:
        if not ctx.has_input("input"):
            return False
        outputs = sorted(ctx.output_ports())
        if not outputs:
            return False
        index = int(ctx.get_state("selected", 0))
        port = outputs[index % len(outputs)]
        if not ctx.can_send(port):
            return False
        packet = ctx.take("input")
        ctx.send(port, packet, delay=self.latency)
        ctx.set_state("selected", (index + 1) % len(outputs))
        return True


class MuxBehavior(PrimitiveBehavior):
    """Round-robin arbitration of the input channels onto the output."""

    def fire(self, ctx: BehaviorContext) -> bool:
        if not ctx.can_send("output"):
            return False
        inputs = sorted(ctx.input_ports())
        if not inputs:
            return False
        index = int(ctx.get_state("selected", 0))
        for offset in range(len(inputs)):
            port = inputs[(index + offset) % len(inputs)]
            if ctx.has_input(port):
                packet = ctx.take(port)
                ctx.send("output", packet, delay=self.latency)
                ctx.set_state("selected", (index + offset + 1) % len(inputs))
                return True
        return False


class ConstGeneratorBehavior(PrimitiveBehavior):
    """Emit the configured constant whenever the consumer has space."""

    latency = 0

    def fire(self, ctx: BehaviorContext) -> bool:
        if not ctx.can_send("output"):
            return False
        value = self.argument(1, 0)
        if hasattr(value, "logical_type"):
            value = 0
        ctx.send("output", Packet(value=value))
        return True


class BinaryOpBehavior(PrimitiveBehavior):
    """Two-input synchronised operator (arithmetic or comparison)."""

    def __init__(self, implementation: Implementation, operator: Callable[[object, object], object]) -> None:
        super().__init__(implementation)
        self.operator = operator

    def fire(self, ctx: BehaviorContext) -> bool:
        if not (ctx.has_input("lhs") and ctx.has_input("rhs")):
            return False
        # Arithmetic primitives name their output "output", comparators name
        # it "result"; use whichever single output port the streamlet has.
        outputs = ctx.output_ports()
        out_port = outputs[0] if outputs else "output"
        if outputs and not ctx.can_send(out_port):
            return False
        lhs = ctx.take("lhs")
        rhs = ctx.take("rhs")
        last = _merge_last(lhs, rhs)
        if lhs.value is None or rhs.value is None:
            # A pure close packet: propagate the sequence delimiter.
            ctx.send(out_port, Packet(value=None, last=last), delay=self.latency)
            return True
        result = self.operator(lhs.value, rhs.value)
        ctx.send(out_port, Packet(value=result, last=last), delay=self.latency)
        return True


class ConstCompareBehavior(PrimitiveBehavior):
    """Compare each input element against a compile-time constant."""

    def __init__(self, implementation: Implementation) -> None:
        super().__init__(implementation)
        self.reference = self.argument(1, 0)

    def fire(self, ctx: BehaviorContext) -> bool:
        if not ctx.has_input("input"):
            return False
        if not ctx.can_send("result") and ctx.output_ports():
            return False
        packet = ctx.take("input")
        if packet.value is None:
            ctx.send("result", Packet(value=None, last=packet.last), delay=self.latency)
            return True
        value = packet.value
        equal = str(value) == str(self.reference) if isinstance(self.reference, str) else value == self.reference
        ctx.send("result", Packet(value=bool(equal), last=packet.last), delay=self.latency)
        return True


class LogicOpBehavior(PrimitiveBehavior):
    """N-input boolean combinator (and / or / not)."""

    def __init__(self, implementation: Implementation, op: str) -> None:
        super().__init__(implementation)
        self.op = op

    def fire(self, ctx: BehaviorContext) -> bool:
        inputs = sorted(ctx.input_ports())
        if not inputs or not all(ctx.has_input(p) for p in inputs):
            return False
        if not ctx.can_send("output") and ctx.output_ports():
            return False
        packets = [ctx.take(p) for p in inputs]
        last = _merge_last(*packets)
        values = [p.value for p in packets]
        if all(v is None for v in values):
            ctx.send("output", Packet(value=None, last=last), delay=self.latency)
            return True
        bools = [bool(v) for v in values if v is not None]
        if self.op == "and":
            result = all(bools)
        elif self.op == "or":
            result = any(bools)
        else:  # "not"
            result = not bools[0]
        ctx.send("output", Packet(value=result, last=last), delay=self.latency)
        return True


class Combine2Behavior(PrimitiveBehavior):
    """Combine two synchronised element streams into one tuple-valued stream."""

    def fire(self, ctx: BehaviorContext) -> bool:
        if not (ctx.has_input("in0") and ctx.has_input("in1")):
            return False
        if not ctx.can_send("output") and ctx.output_ports():
            return False
        first = ctx.take("in0")
        second = ctx.take("in1")
        last = _merge_last(first, second)
        if first.value is None and second.value is None:
            ctx.send("output", Packet(value=None, last=last), delay=self.latency)
            return True
        ctx.send("output", Packet(value=(first.value, second.value), last=last), delay=self.latency)
        return True


class FilterBehavior(PrimitiveBehavior):
    """Forward the data packet only when the keep bit is true."""

    def fire(self, ctx: BehaviorContext) -> bool:
        if not (ctx.has_input("input") and ctx.has_input("keep")):
            return False
        if not ctx.can_send("output") and ctx.output_ports():
            return False
        data = ctx.take("input")
        keep = ctx.take("keep")
        last = _merge_last(data, keep)
        if data.value is not None and keep.value:
            ctx.send("output", Packet(value=data.value, last=last), delay=self.latency)
        elif any(last):
            # The dropped packet closed a sequence: forward an empty close
            # packet so downstream aggregators still terminate.
            ctx.send("output", Packet(value=None, last=last), delay=self.latency)
        return True


class AccumulatorBehavior(PrimitiveBehavior):
    """Reduce the input sequence to one result packet (sum/count/avg/min/max)."""

    def __init__(self, implementation: Implementation, kind: str) -> None:
        super().__init__(implementation)
        self.kind = kind

    def fire(self, ctx: BehaviorContext) -> bool:
        if not ctx.has_input("input"):
            return False
        packet = ctx.take("input")
        values: list[object] = ctx.get_state("values", None) or []
        if packet.value is not None:
            values = values + [packet.value]
        ctx.set_state("values", values)
        if packet.closes_outermost():
            result = self._reduce(values)
            ctx.send("output", Packet(value=result, last=(True,)), delay=self.latency)
            ctx.set_state("values", [])
        return True

    def _reduce(self, values: list[object]) -> object:
        if self.kind == "count":
            return len(values)
        if not values:
            return 0
        if self.kind == "sum":
            return sum(values)
        if self.kind == "avg":
            return sum(values) / len(values)
        if self.kind == "min_acc":
            return min(values)
        if self.kind == "max_acc":
            return max(values)
        raise TydiSimulationError(f"unknown accumulator kind {self.kind!r}")


class GroupAggregateBehavior(PrimitiveBehavior):
    """Keyed aggregation: reduce the value stream per key (SQL GROUP BY)."""

    def __init__(self, implementation: Implementation, kind: str) -> None:
        super().__init__(implementation)
        self.kind = kind

    def fire(self, ctx: BehaviorContext) -> bool:
        if not (ctx.has_input("key") and ctx.has_input("value")):
            return False
        key_packet = ctx.take("key")
        value_packet = ctx.take("value")
        last = _merge_last(key_packet, value_packet)
        groups: dict = ctx.get_state("groups", None) or {}
        if key_packet.value is not None and value_packet.value is not None:
            bucket = groups.setdefault(key_packet.value, [])
            bucket.append(value_packet.value)
        ctx.set_state("groups", groups)
        if last and last[-1]:
            results = []
            for key, values in groups.items():
                if self.kind == "group_sum":
                    aggregated: object = sum(values)
                elif self.kind == "group_count":
                    aggregated = len(values)
                else:  # group_avg
                    aggregated = sum(values) / len(values) if values else 0
                results.append((key, aggregated))
            for index, (key, aggregated) in enumerate(sorted(results, key=lambda kv: str(kv[0]))):
                is_final = index == len(results) - 1
                ctx.send(
                    "output",
                    Packet(value=(key, aggregated), last=(is_final,)),
                    delay=self.latency + index,
                )
            if not results:
                ctx.send("output", Packet(value=None, last=(True,)), delay=self.latency)
            ctx.set_state("groups", {})
        return True


# ---------------------------------------------------------------------------
# Scripted behaviour from `simulation { ... }` blocks
# ---------------------------------------------------------------------------


class ScriptedBehavior:
    """Behaviour compiled from an in-source simulation block (Section V-A)."""

    def __init__(self, implementation: Implementation, block: ast.SimulationBlock) -> None:
        self.implementation = implementation
        self.block = block
        self.latency = 0

    def start(self, ctx: BehaviorContext) -> None:
        scope = Scope(name="sim-init")
        for state in self.block.states:
            ctx.set_state(state.name, evaluate_expr(state.initial, scope))

    # -- event matching ------------------------------------------------------------

    def _event_ports(self, event: ast.EventExpr) -> list[str]:
        if isinstance(event, ast.ReceiveEvent):
            return [event.port]
        if isinstance(event, ast.CombinedEvent):
            return self._event_ports(event.left) + self._event_ports(event.right)
        return []

    def _event_satisfied(self, event: ast.EventExpr, ctx: BehaviorContext) -> bool:
        if isinstance(event, ast.ReceiveEvent):
            return ctx.has_input(event.port)
        if isinstance(event, ast.CombinedEvent):
            left = self._event_satisfied(event.left, ctx)
            right = self._event_satisfied(event.right, ctx)
            return (left and right) if event.op == "&&" else (left or right)
        return False

    def fire(self, ctx: BehaviorContext) -> bool:
        for handler in self.block.handlers:
            if self._event_satisfied(handler.event, ctx):
                self._run_handler(handler, ctx)
                return True
        return False

    # -- handler execution -------------------------------------------------------------

    def _run_handler(self, handler: ast.EventHandler, ctx: BehaviorContext) -> None:
        scope = Scope(name="sim-handler")
        consumed: dict[str, Packet] = {}
        last_flags: list[tuple[bool, ...]] = []
        # Bind the value of every port named in the event (peek; explicit
        # ack() statements consume).
        for port in dict.fromkeys(self._event_ports(handler.event)):
            packet = ctx.peek(port)
            if packet is not None:
                consumed[port] = packet
                last_flags.append(packet.last)
                scope.define(port, packet.value if packet.value is not None else 0)
        for name, value in ctx.component.state.items():
            if not scope.defined_here(name):
                scope.define(name, value)

        delay = 0
        acked: set[str] = set()
        for statement in handler.body:
            delay = self._run_statement(statement, ctx, scope, consumed, acked, delay, last_flags)
        # Implicit acknowledge: a handler that fired must consume at least the
        # packets that triggered it, otherwise it would fire forever.
        for port in consumed:
            if port not in acked and ctx.has_input(port):
                ctx.take(port)

    def _run_statement(
        self,
        statement: ast.SimStmt,
        ctx: BehaviorContext,
        scope: Scope,
        consumed: dict[str, Packet],
        acked: set[str],
        delay: int,
        last_flags: list[tuple[bool, ...]],
    ) -> int:
        if isinstance(statement, ast.DelayStmt):
            cycles = evaluate_expr(statement.cycles, scope)
            return delay + int(cycles)
        if isinstance(statement, ast.AckStmt):
            if ctx.has_input(statement.port):
                ctx.take(statement.port)
            acked.add(statement.port)
            return delay
        if isinstance(statement, ast.SendStmt):
            value = evaluate_expr(statement.value, scope)
            merged_last = tuple(
                any(flags[i] for flags in last_flags if i < len(flags))
                for i in range(max((len(f) for f in last_flags), default=0))
            )
            ctx.send(statement.port, Packet(value=value, last=merged_last), delay=delay)
            return delay
        if isinstance(statement, ast.SetStateStmt):
            value = evaluate_expr(statement.value, scope)
            ctx.set_state(statement.name, value)
            return delay
        if isinstance(statement, ast.SimIfStmt):
            condition = evaluate_expr(statement.condition, scope)
            body = statement.then_body if condition else statement.else_body
            for inner in body:
                delay = self._run_statement(inner, ctx, scope, consumed, acked, delay, last_flags)
            return delay
        raise TydiSimulationError(f"unsupported simulation statement {type(statement).__name__}")


# ---------------------------------------------------------------------------
# Behaviour registry and selection
# ---------------------------------------------------------------------------

_USER_BEHAVIORS: dict[str, Callable[[Implementation], object]] = {}


def register_behavior(implementation_name: str, factory: Callable[[Implementation], object]) -> None:
    """Register a behaviour factory for an external implementation by name."""
    _USER_BEHAVIORS[implementation_name] = factory


def _comparison(op: str) -> Callable[[object, object], object]:
    import operator

    table = {
        "compare_eq": operator.eq,
        "compare_ne": operator.ne,
        "compare_lt": operator.lt,
        "compare_le": operator.le,
        "compare_gt": operator.gt,
        "compare_ge": operator.ge,
    }
    return table[op]


def behavior_for(implementation: Implementation) -> object:
    """Select the behaviour for an external implementation."""
    # Explicit user registration wins.
    factory = _USER_BEHAVIORS.get(implementation.name)
    if factory is None:
        template = implementation.metadata.get("template")
        if isinstance(template, str):
            factory = _USER_BEHAVIORS.get(template)
    if factory is not None:
        return factory(implementation)

    # In-source simulation block.
    if isinstance(implementation.simulation, ast.SimulationBlock):
        return ScriptedBehavior(implementation, implementation.simulation)

    # Standard-library primitive.
    kind = primitive_kind(implementation)
    if kind is not None:
        import operator

        if kind == "duplicator":
            return DuplicatorBehavior(implementation)
        if kind == "voider":
            return VoiderBehavior(implementation)
        if kind == "demux":
            return DemuxBehavior(implementation)
        if kind == "mux":
            return MuxBehavior(implementation)
        if kind in ("const_int_generator", "const_float_generator", "const_str_generator"):
            return ConstGeneratorBehavior(implementation)
        if kind == "adder":
            return BinaryOpBehavior(implementation, operator.add)
        if kind == "subtractor":
            return BinaryOpBehavior(implementation, operator.sub)
        if kind == "multiplier":
            return BinaryOpBehavior(implementation, operator.mul)
        if kind == "divider":
            return BinaryOpBehavior(implementation, lambda a, b: a / b if b else 0)
        if kind.startswith("compare_") and kind != "compare_const_eq":
            return BinaryOpBehavior(implementation, _comparison(kind))
        if kind == "compare_const_eq":
            return ConstCompareBehavior(implementation)
        if kind in ("and", "or", "not"):
            return LogicOpBehavior(implementation, kind)
        if kind == "filter":
            return FilterBehavior(implementation)
        if kind in ("sum", "count", "avg", "min_acc", "max_acc"):
            return AccumulatorBehavior(implementation, kind)
        if kind in ("group_sum", "group_avg", "group_count"):
            return GroupAggregateBehavior(implementation, kind)
        if kind == "combine2":
            return Combine2Behavior(implementation)

    raise TydiSimulationError(
        f"no behaviour available for external implementation {implementation.name!r}; "
        "register one with repro.sim.register_behavior or add a simulation block"
    )
