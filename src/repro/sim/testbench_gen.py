"""Testbench generation from simulation traces (Section V-C).

"The mechanism to generate testbench can be briefly described as an
'input - current state - output' testing system."  We take the simpler,
robust route the paper also describes: record the transfers observed on the
top-level ports of a simulation run (the *prediction*), and package them as a
Tydi-IR testbench whose drive vectors replay the inputs and whose expect
vectors assert the outputs.  The VHDL lowering lives in
:mod:`repro.vhdl.testbench`.
"""

from __future__ import annotations

from repro.ir.testbench import Testbench
from repro.sim.engine import SimulationTrace, Simulator
from repro.sim.packets import Packet


def _encode_value(value: object) -> int:
    """Encode a Python packet value as an integer for the testbench vector."""
    if value is None:
        return 0
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        # Fixed-point with two fractional digits, like the SQL decimal columns.
        return int(round(value * 100))
    if isinstance(value, str):
        number = 0
        for ch in value.encode("utf-8"):
            number = (number << 8) | ch
        return number
    if isinstance(value, tuple):
        number = 0
        for item in value:
            number = (number << 16) ^ (_encode_value(item) & 0xFFFF)
        return number
    if isinstance(value, dict):
        return _encode_value(tuple(value.values()))
    return abs(hash(value)) & 0xFFFFFFFF


def testbench_from_trace(
    simulator: Simulator,
    trace: SimulationTrace,
    *,
    name: str | None = None,
    clock_period_ns: float = 10.0,
) -> Testbench:
    """Build a Tydi-IR testbench replaying one simulation run."""
    testbench = Testbench(
        implementation=simulator.top_name,
        clock_period_ns=clock_period_ns,
        name=name,
    )
    for port, events in trace.inputs.items():
        for time, packet in events:
            testbench.drive(time, port, [_encode_value(packet.value)], packet.last)
    for port, events in trace.outputs.items():
        for time, packet in events:
            testbench.expect(time, port, [_encode_value(packet.value)], packet.last)
    return testbench


def coverage_of(trace: SimulationTrace) -> dict[str, object]:
    """Simple coverage metrics of a run: states seen and ports exercised.

    The paper stresses that "the coverage of input data in the simulation
    stage is important because uncovered input results in uncovered state
    transformation"; this helper lets tests assert that a stimulus actually
    exercised the states it was meant to.
    """
    states: dict[str, set[object]] = {}
    for path, log in trace.state_logs.items():
        for _, state_name, value in log:
            states.setdefault(f"{path}.{state_name}", set()).add(value)
    return {
        "ports_driven": sorted(trace.inputs),
        "ports_observed": sorted(trace.outputs),
        "states_visited": {key: sorted(map(str, values)) for key, values in states.items()},
        "events_processed": trace.events_processed,
        "end_time": trace.end_time,
    }
