"""Tydi-IR to VHDL backend.

The backend lowers an :class:`repro.ir.Project` to synthesisable-style VHDL:

* every streamlet becomes an ``entity`` whose ports are the physical-stream
  signal bundles derived from its logical types (:mod:`repro.vhdl.signals`),
* every structural implementation becomes an ``architecture`` with component
  declarations, interconnect signals and port maps,
* every standard-library primitive becomes a behavioural architecture
  produced by its hard-coded generator (:mod:`repro.stdlib.generators`),
* other external implementations become black-box stubs,
* testbenches (:mod:`repro.vhdl.testbench`) drive the generated entities from
  the prediction vectors produced by the simulator.

The paper evaluates Tydi-lang by comparing Tydi-lang LoC against the LoC of
the VHDL this step generates (Table IV), which is why the backend aims for
realistic, fully-elaborated output rather than a skeleton.
"""

from repro.vhdl.backend import VhdlBackend, generate_vhdl
from repro.vhdl.signals import port_signals, vhdl_identifier
from repro.vhdl.testbench import generate_vhdl_testbench

__all__ = [
    "VhdlBackend",
    "generate_vhdl",
    "port_signals",
    "vhdl_identifier",
    "generate_vhdl_testbench",
]
