"""Physical-signal expansion of Tydi ports into VHDL port/signal declarations.

Each logical ``Stream`` port expands into a valid/ready handshake plus data,
last, strobe, index and user wires (see :mod:`repro.spec.physical`).  Signal
direction in the VHDL entity depends on both the port direction and the
signal role: forward signals of an input port are ``in`` while its ready is
``out``, and vice versa for output ports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.model import Port, PortDirection
from repro.spec.logical_types import Stream
from repro.spec.physical import PhysicalSignal, expand_stream
from repro.utils.names import sanitize_identifier


def vhdl_identifier(name: str) -> str:
    """Sanitise a name into a VHDL identifier."""
    return sanitize_identifier(name)


def vhdl_type(width: int) -> str:
    """VHDL type for a signal of ``width`` bits."""
    if width <= 1:
        return "std_logic"
    return f"std_logic_vector({width - 1} downto 0)"


@dataclass(frozen=True)
class VhdlPortSignal:
    """One VHDL-level port signal derived from a Tydi port."""

    name: str
    width: int
    mode: str  # "in" | "out"
    origin: str  # name of the physical-stream signal ("data", "valid", ...)
    tydi_port: str

    def declaration(self) -> str:
        return f"{self.name} : {self.mode} {vhdl_type(self.width)}"

    def signal_declaration(self, prefix: str = "") -> str:
        return f"signal {prefix}{self.name} : {vhdl_type(self.width)};"


def _signal_mode(port_direction: PortDirection, signal: PhysicalSignal) -> str:
    """VHDL mode of one physical signal on an entity port."""
    forward_in = port_direction is PortDirection.IN
    if signal.role == "forward":
        return "in" if forward_in else "out"
    return "out" if forward_in else "in"


def port_signals(port: Port) -> list[VhdlPortSignal]:
    """Expand a Tydi port into its VHDL port signals.

    Non-stream ports (which the DRC flags with a warning) are rendered as a
    plain data bus with a valid/ready handshake so the output is still
    self-consistent.
    """
    base = vhdl_identifier(port.name)
    signals: list[VhdlPortSignal] = []
    if isinstance(port.logical_type, Stream):
        physical = expand_stream(port.logical_type)
        for signal in physical.signals:
            signals.append(
                VhdlPortSignal(
                    name=f"{base}_{signal.name}",
                    width=signal.width,
                    mode=_signal_mode(port.direction, signal),
                    origin=signal.name,
                    tydi_port=port.name,
                )
            )
    else:
        width = max(1, port.logical_type.bit_width())
        forward_mode = "in" if port.direction is PortDirection.IN else "out"
        reverse_mode = "out" if port.direction is PortDirection.IN else "in"
        signals.append(VhdlPortSignal(f"{base}_valid", 1, forward_mode, "valid", port.name))
        signals.append(VhdlPortSignal(f"{base}_ready", 1, reverse_mode, "ready", port.name))
        signals.append(VhdlPortSignal(f"{base}_data", width, forward_mode, "data", port.name))
    return signals


def data_width_of(port: Port) -> int:
    """Total data width of a port (used by the primitive generators)."""
    if isinstance(port.logical_type, Stream):
        return max(1, expand_stream(port.logical_type).signal("data").width) if any(
            s.name == "data" for s in expand_stream(port.logical_type).signals
        ) else 1
    return max(1, port.logical_type.bit_width())


def last_width_of(port: Port) -> int:
    """Width of the ``last`` signal of a port, 0 when absent."""
    if isinstance(port.logical_type, Stream):
        physical = expand_stream(port.logical_type)
        for signal in physical.signals:
            if signal.name == "last":
                return signal.width
    return 0
