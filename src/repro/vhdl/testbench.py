"""VHDL testbench generation from Tydi-IR testbenches.

Section V-C: the Tydi simulator records the expected component behaviour as a
prediction-style testbench (drive these inputs, expect those outputs); the
Tydi-IR toolchain then lowers it to a VHDL testbench so that low-level
implementations produced by other tools can be verified against the
high-level model.  This module performs that lowering for our backend's
signal naming convention.
"""

from __future__ import annotations

from repro.errors import TydiBackendError
from repro.ir.model import PortDirection, Project
from repro.ir.testbench import Testbench
from repro.vhdl.signals import data_width_of, last_width_of, port_signals, vhdl_identifier

_HEADER = """-- Generated VHDL testbench (prediction strategy).
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
"""


def _bits(value: int, width: int) -> str:
    value %= 1 << max(1, width)
    text = format(value, f"0{max(1, width)}b")
    if width <= 1:
        return f"'{text[-1]}'"
    return f'"{text}"'


def generate_vhdl_testbench(project: Project, testbench: Testbench) -> str:
    """Generate a self-checking VHDL testbench for one implementation."""
    implementation = project.implementation(testbench.implementation)
    streamlet = project.streamlet_of(implementation)

    lines = [_HEADER]
    tb_name = f"{implementation.name}_tb"
    lines.append(f"entity {tb_name} is")
    lines.append(f"end entity {tb_name};")
    lines.append("")
    lines.append(f"architecture behavioural of {tb_name} is")
    lines.append("  signal clk : std_logic := '0';")
    lines.append("  signal rst : std_logic := '1';")
    for port in streamlet.ports:
        for signal in port_signals(port):
            width = signal.width
            type_text = "std_logic" if width <= 1 else f"std_logic_vector({width - 1} downto 0)"
            lines.append(f"  signal {signal.name} : {type_text};")
    lines.append(f"  constant clock_period : time := {testbench.clock_period_ns} ns;")
    lines.append("begin")
    lines.append("")
    lines.append("  clk <= not clk after clock_period / 2;")
    lines.append("  rst <= '0' after 2 * clock_period;")
    lines.append("")

    # Device under test.
    lines.append(f"  dut : entity work.{streamlet.name}")
    lines.append("    port map (")
    mappings = ["      clk => clk", "      rst => rst"]
    for port in streamlet.ports:
        for signal in port_signals(port):
            mappings.append(f"      {signal.name} => {signal.name}")
    lines.extend(f"{m}," for m in mappings[:-1])
    lines.append(f"{mappings[-1]}")
    lines.append("    );")
    lines.append("")

    # Stimulus processes (one per driven port).
    for vector in testbench.drive_vectors():
        port = streamlet.port(vector.port)
        if port.direction is not PortDirection.IN:
            raise TydiBackendError(f"cannot drive output port {vector.port!r} in a testbench")
        base = vhdl_identifier(port.name)
        width = data_width_of(port)
        last_width = last_width_of(port)
        lines.append(f"  drive_{base} : process")
        lines.append("  begin")
        lines.append(f"    {base}_valid <= '0';")
        lines.append("    wait until rst = '0';")
        previous_time = 0
        for event in vector.events:
            wait_cycles = max(0, event.time - previous_time)
            previous_time = event.time
            if wait_cycles:
                lines.append(f"    wait for {wait_cycles} * clock_period;")
            value = event.values[0] if event.values else 0
            lines.append(f"    {base}_data <= {_bits(value, width)};")
            if last_width:
                last_value = sum(1 << i for i, flag in enumerate(event.last) if flag)
                lines.append(f"    {base}_last <= {_bits(last_value, last_width)};")
            lines.append(f"    {base}_valid <= '1';")
            lines.append(f"    wait until rising_edge(clk) and {base}_ready = '1';")
            lines.append(f"    {base}_valid <= '0';")
        lines.append("    wait;")
        lines.append("  end process;")
        lines.append("")

    # Checker processes (one per expected port).
    for vector in testbench.expect_vectors():
        port = streamlet.port(vector.port)
        base = vhdl_identifier(port.name)
        width = data_width_of(port)
        lines.append(f"  check_{base} : process")
        lines.append("  begin")
        lines.append(f"    {base}_ready <= '1';")
        for event in vector.events:
            value = event.values[0] if event.values else 0
            lines.append(f"    wait until rising_edge(clk) and {base}_valid = '1';")
            lines.append(
                f"    assert {base}_data = {_bits(value, width)}"
                f" report \"unexpected value on {port.name}\" severity error;"
            )
        lines.append("    wait;")
        lines.append("  end process;")
        lines.append("")

    lines.append(f"end architecture behavioural;")
    return "\n".join(lines) + "\n"
