"""Per-stage sub-caching for the Figure-3 frontend pipeline.

The whole-result cache of :mod:`repro.pipeline.cache` only hits when an
*entire* design -- every source file plus every option -- is byte-identical.
Editing one file of an N-file design therefore recompiled everything from
scratch, even though the paper's staged frontend (parse -> evaluate ->
sugar -> DRC) produces stable intermediate artefacts that are individually
reusable.  :class:`StageCache` exploits exactly that structure:

* **Per-file parse cache** -- every source file is fingerprinted
  individually (:func:`file_fingerprint`) and its parsed
  :class:`~repro.lang.ast.SourceUnit` is memoised, so a one-file edit
  re-parses only the edited file.  Cached ASTs are shared (the evaluator
  only reads declarations -- the same immutability contract that lets
  ``compile_sources`` share its memoised stdlib AST).
* **Evaluate snapshot cache** -- the post-evaluate state (the evaluated
  :class:`~repro.ir.model.Project`, its diagnostics, the evaluate stage-log
  entry) is pickled and keyed by the ordered sequence of contributing file
  fingerprints plus the evaluate-relevant options.  Compilations that differ
  only in the *downstream* options (``sugaring`` / ``run_drc`` /
  ``strict_drc``) reuse the snapshot and re-run only sugar -> DRC on a
  fresh deserialised copy; the snapshot itself is never mutated.  Units are
  deliberately *not* part of the snapshot: the parse tier already holds
  them, so a snapshot hit reconstructs the unit list through
  :meth:`StageCache.cached_parse` (all hits) and keeps the pickled payload
  small -- the project is typically an order of magnitude lighter than the
  ASTs it was evaluated from.
* **Ingest snapshot cache** -- the post-ingest state of a Tydi-IR
  interchange document (:meth:`StageCache.compile_ir`) is pickled and keyed
  on the document fingerprint (``iringest-<key>.pkl``), so re-opening the
  same document skips parsing and referential validation entirely.
* **Per-implementation backend-output cache** -- every requested output
  backend's unit files (one implementation's VHDL file, IR section, DOT
  cluster; see :mod:`repro.backends`) are memoised under the
  implementation's emission-subgraph fingerprint + backend name + backend
  options (:meth:`StageCache.backend_unit_key`), so a one-file edit
  re-emits only the implementations it actually changed -- the remaining
  uncached stage left open by PR 2.

Both tiers live in memory (bounded LRUs) and, when ``cache_dir`` is set,
under ``<cache_dir>/stages/`` on disk (``ast-<key>.pkl`` /
``eval-<key>.pkl``, written atomically).  A ``max_disk_bytes`` budget is
enforced over the *whole* cache directory -- whole-result artefacts
included -- via LRU-by-mtime eviction, so per-stage artefacts cannot grow
``.tydi-cache/`` without bound.

:meth:`StageCache.compile` composes the *same* stage functions as the
monolithic ``compile_sources`` (:func:`repro.lang.compile.parse_stage` and
friends), which is what makes the staged pipeline provably equivalent to a
cold monolithic compile -- the property the differential harness
(``tests/test_stage_differential.py``) asserts over randomized designs and
edits.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Optional, Sequence

from repro.errors import DiagnosticSink
from repro.lang.ast import SourceUnit
from repro.lang.compile import (
    IR_STAGE_DETAIL,
    CompilationResult,
    CompilationStage,
    CompileOptions,
    backend_stage,
    drc_stage,
    evaluate_stage,
    normalize_sources,
    normalize_targets,
    parse_stage,
    sugar_stage,
)
from repro.lang.parser import parse_source
from repro.pipeline.cache import (
    CACHE_VERSION,
    STAGE_SCHEMA_VERSION,
    atomic_write_bytes,
    canonical_option_repr,
    evict_lru_files,
)

#: Subdirectory of the cache dir holding per-stage artefacts.
STAGE_DIR_NAME = "stages"

#: Options that change the outcome of parse+evaluate (and therefore
#: participate in the snapshot key).  ``sugaring`` / ``run_drc`` /
#: ``strict_drc`` / ``targets`` deliberately do not: flipping them reuses
#: the snapshot (a new backend target re-runs sugar -> DRC -> emit only).
EVALUATE_OPTIONS = ("top", "top_args", "include_stdlib", "project_name")


def _stage_salt() -> str:
    import repro

    return f"tydi-stage-v{CACHE_VERSION}.{STAGE_SCHEMA_VERSION}:compiler-{repro.__version__}"


def file_fingerprint(text: str, filename: str) -> str:
    """Stable content address of one source file (text + diagnostic name).

    The filename participates because it is embedded in spans, diagnostics
    and stage logs: the same text under a different name is a different
    parse artefact.
    """
    hasher = hashlib.sha256()
    hasher.update(_stage_salt().encode())
    hasher.update(b"\x00file\x00")
    hasher.update(filename.encode())
    hasher.update(b"\x00")
    hasher.update(text.encode())
    return hasher.hexdigest()


#: Per-process state of the parallel-emit pool: the (project, backend) pair
#: every task of one :meth:`StageCache.emit_backend` call shares, shipped
#: once through the pool initializer instead of once per task.
_EMIT_WORKER_STATE: dict[str, object] = {}


def _emit_pool_init(payload: bytes) -> None:
    project, backend = pickle.loads(payload)
    _EMIT_WORKER_STATE["project"] = project
    _EMIT_WORKER_STATE["backend"] = backend


def _emit_one_unit(implementation_name: str) -> dict[str, str]:
    project = _EMIT_WORKER_STATE["project"]
    backend = _EMIT_WORKER_STATE["backend"]
    return backend.emit_unit(project, project.implementations[implementation_name])


@dataclass
class StageStats:
    """Counters describing how a :class:`StageCache` has been used."""

    parse_hits: int = 0
    parse_misses: int = 0
    evaluate_hits: int = 0
    evaluate_misses: int = 0
    ingest_hits: int = 0
    ingest_misses: int = 0
    backend_hits: int = 0
    backend_misses: int = 0
    sim_hits: int = 0
    sim_misses: int = 0
    disk_hits: int = 0
    disk_stores: int = 0
    disk_errors: int = 0
    disk_evictions: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "parse_hits": self.parse_hits,
            "parse_misses": self.parse_misses,
            "evaluate_hits": self.evaluate_hits,
            "evaluate_misses": self.evaluate_misses,
            "ingest_hits": self.ingest_hits,
            "ingest_misses": self.ingest_misses,
            "backend_hits": self.backend_hits,
            "backend_misses": self.backend_misses,
            "sim_hits": self.sim_hits,
            "sim_misses": self.sim_misses,
            "disk_hits": self.disk_hits,
            "disk_stores": self.disk_stores,
            "disk_errors": self.disk_errors,
            "disk_evictions": self.disk_evictions,
        }

    def reset(self) -> None:
        self.parse_hits = self.parse_misses = 0
        self.evaluate_hits = self.evaluate_misses = 0
        self.ingest_hits = self.ingest_misses = 0
        self.backend_hits = self.backend_misses = 0
        self.sim_hits = self.sim_misses = 0
        self.disk_hits = self.disk_stores = self.disk_errors = 0
        self.disk_evictions = 0


class StageCache:
    """Memoises per-file parse results and post-evaluate snapshots.

    Parameters
    ----------
    max_parse_entries / max_evaluate_entries:
        In-memory LRU capacities of the two tiers.
    cache_dir:
        Root of the on-disk store (shared with a
        :class:`~repro.pipeline.cache.CompilationCache` when this instance
        is owned by one); per-stage artefacts live under
        ``<cache_dir>/stages/``.
    max_disk_bytes:
        Byte budget enforced over ``cache_dir`` (recursively) after every
        disk store; least-recently-used ``*.pkl`` artefacts are deleted
        first.
    remote:
        The shared remote L2 tier (a :class:`~repro.pipeline.remote.
        RemoteCacheClient`, usually the owning
        :class:`~repro.pipeline.cache.CompilationCache`'s).  Each tier
        consults it after its local miss (namespaces ``ast`` / ``eval`` /
        ``backend``), promotes remote hits into memory + disk, and uploads
        fresh artefacts write-behind.  A dead remote degrades to
        local-only.

    Thread-safe; one instance may serve every worker of a thread-executor
    batch.
    """

    def __init__(
        self,
        *,
        max_parse_entries: int = 512,
        max_evaluate_entries: int = 64,
        max_ingest_entries: int = 64,
        max_backend_entries: int = 1024,
        max_sim_entries: int = 128,
        cache_dir: Optional[str | Path] = None,
        max_disk_bytes: Optional[int] = None,
        remote: Optional[object] = None,
        emit_jobs: Optional[int] = None,
    ) -> None:
        if (
            max_parse_entries < 1
            or max_evaluate_entries < 1
            or max_ingest_entries < 1
            or max_backend_entries < 1
            or max_sim_entries < 1
        ):
            raise ValueError("stage cache LRU capacities must be >= 1")
        if emit_jobs is not None and emit_jobs < 1:
            raise ValueError("emit_jobs must be >= 1")
        self.max_parse_entries = max_parse_entries
        self.max_evaluate_entries = max_evaluate_entries
        self.max_ingest_entries = max_ingest_entries
        self.max_backend_entries = max_backend_entries
        self.max_sim_entries = max_sim_entries
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.max_disk_bytes = max_disk_bytes
        if isinstance(remote, str):
            from repro.pipeline.remote import RemoteCacheClient

            remote = RemoteCacheClient.from_url(remote)
        self.remote = remote
        #: Worker-process count for cold backend-unit emission in
        #: :meth:`emit_backend` (``None`` / ``1``: serial).  An execution
        #: policy, *not* part of any fingerprint: parallel and serial
        #: emission produce byte-identical units.
        self.emit_jobs = emit_jobs
        self.stats = StageStats()
        self._parse: OrderedDict[str, SourceUnit] = OrderedDict()
        #: Snapshots are held as pickle *bytes* so cached state can never be
        #: mutated through an aliased object; every use deserialises fresh.
        self._evaluate: OrderedDict[str, bytes] = OrderedDict()
        #: Post-ingest projects of Tydi-IR interchange documents, pickled
        #: for the same aliasing reason (sugar/DRC mutate the project).
        self._ingest: OrderedDict[str, bytes] = OrderedDict()
        #: Per-implementation backend unit outputs ({filename: text}); plain
        #: string payloads, safe to share across compilations.
        self._backend: OrderedDict[str, dict[str, str]] = OrderedDict()
        #: Simulation reports keyed on evaluate fingerprint + plan
        #: fingerprint (:meth:`sim_key`).  Served as-is: treat a cached
        #: :class:`repro.sim.harness.SimulationReport` as immutable, like
        #: any result obtained through a cache.
        self._sim: OrderedDict[str, object] = OrderedDict()
        self._lock = threading.Lock()

    # -- keying ---------------------------------------------------------------

    def evaluate_key(
        self,
        sources: Sequence[tuple[str, str]] | Sequence[str],
        options: "Mapping[str, object] | CompileOptions | None" = None,
    ) -> str:
        """Snapshot key: ordered file fingerprints + evaluate options."""
        if isinstance(options, CompileOptions):
            options = options.as_dict()
        options = dict(options or {})
        hasher = hashlib.sha256()
        hasher.update(_stage_salt().encode())
        for name in EVALUATE_OPTIONS:
            hasher.update(b"\x00opt\x00")
            hasher.update(name.encode())
            hasher.update(b"=")
            hasher.update(canonical_option_repr(options.get(name)).encode())
        if options.get("include_stdlib", True):
            from repro.stdlib.source import STDLIB_SOURCE

            hasher.update(b"\x00stdlib\x00")
            hasher.update(STDLIB_SOURCE.encode())
        for text, filename in normalize_sources(sources):
            hasher.update(b"\x00unit\x00")
            hasher.update(file_fingerprint(text, filename).encode())
        return hasher.hexdigest()

    def ingest_key(self, text: str) -> str:
        """Snapshot key of one Tydi-IR interchange document: its fingerprint.

        The document *is* the complete post-evaluate state (no options
        participate -- the evaluate-only options are ignored by ingest, and
        the downstream ones key nothing before sugar), so the content hash
        plus the stage salt fully addresses the ingested project.
        """
        hasher = hashlib.sha256()
        hasher.update(_stage_salt().encode())
        hasher.update(b"\x00iringest\x00")
        hasher.update(text.encode())
        return hasher.hexdigest()

    def sim_key(
        self,
        sources: Sequence[tuple[str, str]] | Sequence[str],
        options: "Mapping[str, object] | CompileOptions | None",
        plan,
    ) -> str:
        """Cache key of one simulation: the design's evaluate fingerprint
        plus the :class:`repro.sim.harness.SimulationPlan` fingerprint.

        Downstream-only options (``sugaring`` / ``targets`` / ...) do not
        participate -- they cannot change what the simulator elaborates --
        so recompiling for a new backend target keeps sim reports warm.
        """
        hasher = hashlib.sha256()
        hasher.update(_stage_salt().encode())
        hasher.update(b"\x00sim\x00")
        hasher.update(self.evaluate_key(sources, options).encode())
        hasher.update(b"\x00plan\x00")
        hasher.update(plan.fingerprint().encode())
        return hasher.hexdigest()

    def backend_unit_key(self, backend, implementation_key: str) -> str:
        """Cache key of one implementation's output under one backend.

        Keyed by the implementation's emission-subgraph fingerprint
        (:func:`repro.backends.implementation_fingerprint`), the backend
        name, its options token, and -- via the stage salt -- the
        ``STAGE_SCHEMA_VERSION`` and compiler version.
        """
        hasher = hashlib.sha256()
        hasher.update(_stage_salt().encode())
        hasher.update(b"\x00backend\x00")
        hasher.update(backend.name.encode())
        hasher.update(b"\x00options\x00")
        hasher.update(backend.options.token().encode())
        hasher.update(b"\x00impl\x00")
        hasher.update(implementation_key.encode())
        return hasher.hexdigest()

    # -- the staged pipeline --------------------------------------------------

    def cached_parse(self, text: str, filename: str) -> SourceUnit:
        """Parse one file through the per-file AST cache.

        Drop-in for :func:`repro.lang.parser.parse_source` (it is passed to
        :func:`~repro.lang.compile.parse_stage` as ``parse_file``).  Parse
        errors propagate unchanged and are never cached.
        """
        key = file_fingerprint(text, filename)
        with self._lock:
            unit = self._parse.get(key)
            if unit is not None:
                self._parse.move_to_end(key)
                self.stats.parse_hits += 1
                return unit
        unit = self._disk_load(self._ast_path(key), SourceUnit)
        if unit is not None:
            with self._lock:
                self.stats.parse_hits += 1
                self.stats.disk_hits += 1
                self._insert(self._parse, key, unit, self.max_parse_entries)
            return unit
        unit = self._remote_load("ast", key, SourceUnit, self._ast_path(key))
        if unit is not None:
            with self._lock:
                self.stats.parse_hits += 1
                self._insert(self._parse, key, unit, self.max_parse_entries)
            return unit
        unit = parse_source(text, filename)
        with self._lock:
            self.stats.parse_misses += 1
            self._insert(self._parse, key, unit, self.max_parse_entries)
        self._disk_store(self._ast_path(key), unit, namespace="ast", key=key)
        return unit

    def preload_units(
        self,
        sources,
        *,
        jobs: Optional[int] = None,
    ) -> int:
        """Warm the per-file parse tier by parsing cold files in parallel.

        ``sources`` is anything :func:`repro.lang.compile.normalize_sources`
        accepts.  Files whose fingerprint already sits in any tier are left
        alone; the rest are parsed across a process pool
        (:func:`repro.pipeline.batch.parallel_parse_stage`'s worker) and
        inserted exactly as a :meth:`cached_parse` miss would have -- so a
        subsequent compile's parse stage is all hits regardless of who
        parsed.  Returns the number of freshly parsed files.
        """
        from concurrent.futures import ProcessPoolExecutor

        from repro.lang.compile import normalize_sources
        from repro.pipeline.batch import _parse_one

        normalized = normalize_sources(sources)
        cold: list[tuple[str, str]] = []
        keys: list[str] = []
        for text, filename in normalized:
            key = file_fingerprint(text, filename)
            with self._lock:
                if key in self._parse:
                    continue
            if self._disk_read(self._ast_path(key)) is not None:
                continue
            cold.append((text, filename))
            keys.append(key)
        if not cold:
            return 0
        if jobs is None:
            jobs = os.cpu_count() or 2
        jobs = max(1, min(jobs, len(cold)))
        if jobs <= 1 or len(cold) <= 1:
            units = [_parse_one(item) for item in cold]
        else:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                units = list(pool.map(_parse_one, cold))
        for key, unit in zip(keys, units):
            with self._lock:
                self.stats.parse_misses += 1
                self._insert(self._parse, key, unit, self.max_parse_entries)
            self._disk_store(self._ast_path(key), unit, namespace="ast", key=key)
        return len(units)

    def cached_backend_unit(self, project, implementation, backend) -> dict[str, str]:
        """One implementation's backend output, through the unit cache.

        A hit serves the memoised ``{filename: text}`` mapping without
        touching the backend; a miss calls ``backend.emit_unit`` and stores
        the result in both tiers.  Emission errors propagate unchanged and
        are never cached.
        """
        from repro.backends import implementation_fingerprint

        key = self.backend_unit_key(
            backend, implementation_fingerprint(project, implementation)
        )
        files = self._backend_unit_lookup(key)
        if files is not None:
            return files
        files = backend.emit_unit(project, implementation)
        self._backend_unit_store(key, files)
        return files

    def _backend_unit_lookup(self, key: str) -> Optional[dict[str, str]]:
        """Probe the backend-unit tiers (memory -> disk -> remote) only."""
        with self._lock:
            files = self._backend.get(key)
            if files is not None:
                self._backend.move_to_end(key)
                self.stats.backend_hits += 1
                return files
        files = self._disk_load(self._backend_path(key), dict)
        if files is not None:
            with self._lock:
                self.stats.backend_hits += 1
                self.stats.disk_hits += 1
                self._insert(self._backend, key, files, self.max_backend_entries)
            return files
        files = self._remote_load("backend", key, dict, self._backend_path(key))
        if files is not None:
            with self._lock:
                self.stats.backend_hits += 1
                self._insert(self._backend, key, files, self.max_backend_entries)
            return files
        return None

    def _backend_unit_store(self, key: str, files: dict[str, str]) -> None:
        """Record one freshly emitted unit in every tier (a miss)."""
        with self._lock:
            self.stats.backend_misses += 1
            self._insert(self._backend, key, files, self.max_backend_entries)
        self._disk_store(self._backend_path(key), files, namespace="backend", key=key)

    def cached_simulation(self, key: str, compute):
        """One plan-driven simulation report, through the ``sim:`` tier.

        ``key`` comes from :meth:`sim_key`; a hit serves the memoised
        :class:`repro.sim.harness.SimulationReport` from memory, disk or
        the remote L2 (promoting as usual) without simulating; a miss calls
        ``compute()`` (expected to return the report) and stores the result
        in every tier.  Simulation errors propagate unchanged and are never
        cached.  Standalone callers with a ``max_disk_bytes`` budget should
        call :meth:`enforce_disk_budget` after a burst of stores.
        """
        from repro.sim.harness import SimulationReport

        with self._lock:
            report = self._sim.get(key)
            if report is not None:
                self._sim.move_to_end(key)
                self.stats.sim_hits += 1
                return report
        report = self._disk_load(self._sim_path(key), SimulationReport)
        if report is not None:
            with self._lock:
                self.stats.sim_hits += 1
                self.stats.disk_hits += 1
                self._insert(self._sim, key, report, self.max_sim_entries)
            return report
        report = self._remote_load("sim", key, SimulationReport, self._sim_path(key))
        if report is not None:
            with self._lock:
                self.stats.sim_hits += 1
                self._insert(self._sim, key, report, self.max_sim_entries)
            return report
        report = compute()
        with self._lock:
            self.stats.sim_misses += 1
            self._insert(self._sim, key, report, self.max_sim_entries)
        self._disk_store(self._sim_path(key), report, namespace="sim", key=key)
        return report

    def emit_backend(self, project, backend) -> dict[str, str]:
        """Emit one backend over ``project`` with per-implementation caching.

        Byte-identical to ``backend.emit(project)`` (same assemble over the
        same units -- the composition law of :class:`repro.backends.base.
        Backend`), but every unchanged implementation's unit output is
        served from the cache.  When :attr:`emit_jobs` is > 1, the *cold*
        units are emitted across a process pool (backends are pure, so
        per-unit emission is embarrassingly parallel); results are inserted
        exactly as serial misses would have been, so the cache tiers and
        stats read identically either way.

        Disk stores defer their budget pass to the caller (the single
        per-compile pass in :meth:`compile`); standalone callers with a
        ``max_disk_bytes`` budget should call :meth:`enforce_disk_budget`
        after a burst of emissions.
        """
        from repro.backends import implementation_fingerprint

        units: dict[str, Optional[dict[str, str]]] = {}
        cold: list[tuple[str, str]] = []
        for name, implementation in project.implementations.items():
            key = self.backend_unit_key(
                backend, implementation_fingerprint(project, implementation)
            )
            files = self._backend_unit_lookup(key)
            if files is None:
                cold.append((name, key))
            units[name] = files
        if cold:
            names = [name for name, _ in cold]
            jobs = self.emit_jobs
            emitted = None
            if jobs is not None and jobs > 1 and len(names) > 1:
                emitted = self._emit_units_parallel(project, backend, names, jobs)
            if emitted is None:
                emitted = {
                    name: backend.emit_unit(project, project.implementations[name])
                    for name in names
                }
            for name, key in cold:
                files = emitted[name]
                self._backend_unit_store(key, files)
                units[name] = files
        return backend.assemble(project, backend.emit_shared(project), units)

    def _emit_units_parallel(
        self, project, backend, names: list[str], jobs: int
    ) -> Optional[dict[str, dict[str, str]]]:
        """Emit the named implementations' units across a process pool.

        The (project, backend) pair is pickled once and shipped to each
        worker through the pool initializer; tasks are just implementation
        names.  Returns ``None`` when the project cannot be pickled (e.g.
        simulation behaviours holding closures) -- the caller falls back to
        serial emission.  Emission errors propagate unchanged.
        """
        from concurrent.futures import ProcessPoolExecutor

        try:
            payload = pickle.dumps((project, backend), protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PickleError, TypeError, AttributeError):
            return None
        workers = max(1, min(jobs, len(names)))
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_emit_pool_init, initargs=(payload,)
        ) as pool:
            emitted = list(pool.map(_emit_one_unit, names))
        return dict(zip(names, emitted))

    def compile(
        self,
        sources: Sequence[tuple[str, str]] | Sequence[str],
        options: "Mapping[str, object] | CompileOptions | None" = None,
    ) -> CompilationResult:
        """Run the staged pipeline: cached parse/evaluate, then sugar + DRC.

        ``options`` is a :class:`~repro.lang.compile.CompileOptions` or the
        legacy (possibly partial) options mapping.  Produces a
        :class:`~repro.lang.compile.CompilationResult` that is
        byte-identical (IR text, diagnostics, stage log) to what a cold
        monolithic ``compile_sources`` call with the same inputs produces,
        including raising the same exceptions on parse / evaluate / strict
        DRC failures.
        """
        normalized = normalize_sources(sources)
        if isinstance(options, CompileOptions):
            options = options.as_dict()
        options = dict(options or {})
        include_stdlib = options.get("include_stdlib", True)

        eval_key = self.evaluate_key(normalized, options)
        snapshot = self._load_snapshot(eval_key)
        # The unit list is served by the parse tier either way; on a
        # snapshot hit every file is a parse-cache hit (shared, immutable
        # ASTs), so only the mutable project/diagnostics ride in the pickle.
        units, parse_entry = parse_stage(
            normalized, include_stdlib=include_stdlib, parse_file=self.cached_parse
        )
        if snapshot is not None:
            project, diagnostics, evaluate_entry = snapshot
            stages = [parse_entry, evaluate_entry]
            with self._lock:
                self.stats.evaluate_hits += 1
        else:
            diagnostics = DiagnosticSink()
            # Values pass through verbatim (same defaults as compile_sources,
            # no falsy coercion): a degenerate option like project_name=""
            # must behave identically on the staged and monolithic paths.
            project, evaluate_entry = evaluate_stage(
                units,
                diagnostics,
                top=options.get("top"),
                top_args=options.get("top_args", ()),
                project_name=options.get("project_name", "design"),
            )
            stages = [parse_entry, evaluate_entry]
            with self._lock:
                self.stats.evaluate_misses += 1
            # Snapshot *before* sugaring: sugar/DRC mutate the project, and
            # the stored bytes must stay the pristine post-evaluate state.
            self._store_snapshot(eval_key, (project, diagnostics, evaluate_entry))

        sugaring_report = None
        if options.get("sugaring", True):
            sugaring_report, sugar_entry = sugar_stage(project, diagnostics)
            stages.append(sugar_entry)

        drc_report = None
        if options.get("run_drc", True):
            drc_report, drc_entry = drc_stage(
                project, diagnostics, strict=options.get("strict_drc", True)
            )
            stages.append(drc_entry)

        stages.append(CompilationStage("ir", IR_STAGE_DETAIL))

        # The backend stage, with per-implementation unit outputs served by
        # this cache (the monolithic path emits the same bytes uncached).
        outputs, backend_entries = backend_stage(
            project,
            normalize_targets(options.get("targets", ())),
            backend_options=options.get("backend_options", ()),
            stage_cache=self,
        )
        stages.extend(backend_entries)
        # One budget pass per compile (stores above defer theirs): a full
        # rglob scan per artefact would make eviction O(files x entries).
        self.enforce_disk_budget()
        return CompilationResult(
            project=project,
            diagnostics=diagnostics,
            stages=stages,
            sugaring=sugaring_report,
            drc=drc_report,
            units=list(units),
            outputs=outputs,
        )

    def compile_ir(
        self,
        text: str,
        options: "Mapping[str, object] | CompileOptions | None" = None,
        *,
        filename: str = "<tydi-ir>",
    ) -> CompilationResult:
        """Run the ingest pipeline with a memoised ingest stage.

        The staged twin of :func:`repro.interchange.pipeline.
        compile_ir_document`: the post-ingest project (plus its stage-log
        entry) is pickled under :meth:`ingest_key` -- the ``iringest`` tier
        -- so re-opening the same document skips parsing and validation
        entirely; sugar/DRC re-run on a fresh deserialised copy, and the
        backend stage rides the per-implementation unit cache as usual.
        Byte-identical to the uncached composition, as the differential
        suite asserts.  Ingest errors propagate unchanged and are never
        cached.
        """
        from repro.interchange.pipeline import ingest_stage

        if isinstance(options, CompileOptions):
            options = options.as_dict()
        options = dict(options or {})

        key = self.ingest_key(text)
        snapshot = self._load_ingest_snapshot(key)
        if snapshot is not None:
            project, ingest_entry = snapshot
            with self._lock:
                self.stats.ingest_hits += 1
        else:
            project, ingest_entry = ingest_stage(text, filename=filename)
            with self._lock:
                self.stats.ingest_misses += 1
            # Snapshot *before* sugaring: sugar/DRC mutate the project, and
            # the stored bytes must stay the pristine post-ingest state.
            self._store_ingest_snapshot(key, (project, ingest_entry))

        diagnostics = DiagnosticSink()
        stages: list[CompilationStage] = [ingest_entry]

        sugaring_report = None
        if options.get("sugaring", True):
            sugaring_report, sugar_entry = sugar_stage(project, diagnostics)
            stages.append(sugar_entry)

        drc_report = None
        if options.get("run_drc", True):
            drc_report, drc_entry = drc_stage(
                project, diagnostics, strict=options.get("strict_drc", True)
            )
            stages.append(drc_entry)

        stages.append(CompilationStage("ir", IR_STAGE_DETAIL))

        outputs, backend_entries = backend_stage(
            project,
            normalize_targets(options.get("targets", ())),
            backend_options=options.get("backend_options", ()),
            stage_cache=self,
        )
        stages.extend(backend_entries)
        self.enforce_disk_budget()
        return CompilationResult(
            project=project,
            diagnostics=diagnostics,
            stages=stages,
            sugaring=sugaring_report,
            drc=drc_report,
            units=[],
            outputs=outputs,
        )

    # -- maintenance ----------------------------------------------------------

    def clear(self, *, disk: bool = False) -> None:
        """Drop the in-memory tiers (and, optionally, the on-disk artefacts)."""
        with self._lock:
            self._parse.clear()
            self._evaluate.clear()
            self._ingest.clear()
            self._backend.clear()
            self._sim.clear()
        if disk and self.cache_dir is not None:
            stage_dir = self.cache_dir / STAGE_DIR_NAME
            if stage_dir.is_dir():
                for path in stage_dir.glob("*.pkl"):
                    try:
                        path.unlink()
                    except OSError:
                        with self._lock:
                            self.stats.disk_errors += 1

    def __len__(self) -> int:
        with self._lock:
            return (
                len(self._parse)
                + len(self._evaluate)
                + len(self._ingest)
                + len(self._backend)
                + len(self._sim)
            )

    # -- internals ------------------------------------------------------------

    @staticmethod
    def _insert(table: OrderedDict, key: str, value, capacity: int) -> None:
        table[key] = value
        table.move_to_end(key)
        while len(table) > capacity:
            table.popitem(last=False)

    def _ast_path(self, key: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / STAGE_DIR_NAME / f"ast-{key}.pkl"

    def _eval_path(self, key: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / STAGE_DIR_NAME / f"eval-{key}.pkl"

    def _ingest_path(self, key: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / STAGE_DIR_NAME / f"iringest-{key}.pkl"

    def _backend_path(self, key: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / STAGE_DIR_NAME / f"backend-{key}.pkl"

    def _sim_path(self, key: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / STAGE_DIR_NAME / f"sim-{key}.pkl"

    def _load_snapshot(self, key: str):
        """Load one evaluate snapshot (fresh deserialisation per use)."""
        return self._load_pickled_snapshot(
            key,
            table=self._evaluate,
            capacity=self.max_evaluate_entries,
            path=self._eval_path(key),
            namespace="eval",
        )

    def _store_snapshot(self, key: str, snapshot: tuple) -> None:
        self._store_pickled_snapshot(
            key,
            snapshot,
            table=self._evaluate,
            capacity=self.max_evaluate_entries,
            path=self._eval_path(key),
            namespace="eval",
        )

    def _load_ingest_snapshot(self, key: str):
        """Load one post-ingest snapshot (fresh deserialisation per use)."""
        return self._load_pickled_snapshot(
            key,
            table=self._ingest,
            capacity=self.max_ingest_entries,
            path=self._ingest_path(key),
            namespace="iringest",
        )

    def _store_ingest_snapshot(self, key: str, snapshot: tuple) -> None:
        self._store_pickled_snapshot(
            key,
            snapshot,
            table=self._ingest,
            capacity=self.max_ingest_entries,
            path=self._ingest_path(key),
            namespace="iringest",
        )

    def _load_pickled_snapshot(
        self,
        key: str,
        *,
        table: OrderedDict,
        capacity: int,
        path: Optional[Path],
        namespace: str,
    ):
        """The shared snapshot read path (memory -> disk -> remote).

        Snapshots are held as pickle bytes in every tier, so each call
        deserialises a fresh object graph -- cached state can never be
        mutated through an aliased reference.
        """
        payload: Optional[bytes] = None
        from_remote = False
        with self._lock:
            payload = table.get(key)
            if payload is not None:
                table.move_to_end(key)
        if payload is None:
            payload = self._disk_read(path)
            if payload is not None:
                with self._lock:
                    self.stats.disk_hits += 1
                    self._insert(table, key, payload, capacity)
            else:
                payload = self._remote_get(namespace, key)
                if payload is None:
                    return None
                from_remote = True
                with self._lock:
                    self._insert(table, key, payload, capacity)
        try:
            snapshot = pickle.loads(payload)
        except (pickle.PickleError, EOFError, AttributeError, ImportError, ValueError):
            # A stale or corrupt snapshot (e.g. from a crashed writer, or a
            # bad remote blob) is a miss; drop it from every local tier so
            # it is rebuilt.
            with self._lock:
                self.stats.disk_errors += 1
                table.pop(key, None)
            if from_remote:
                self._note_remote_corrupt(namespace, key)
            elif path is not None:
                try:
                    path.unlink()
                except OSError:
                    pass
            return None
        if from_remote:
            self._promote_to_disk(path, payload)
        return snapshot

    def _store_pickled_snapshot(
        self,
        key: str,
        snapshot: tuple,
        *,
        table: OrderedDict,
        capacity: int,
        path: Optional[Path],
        namespace: str,
    ) -> None:
        try:
            payload = pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PickleError, TypeError):
            with self._lock:
                self.stats.disk_errors += 1
            return
        with self._lock:
            self._insert(table, key, payload, capacity)
        if path is not None:
            try:
                atomic_write_bytes(path, payload)
                with self._lock:
                    self.stats.disk_stores += 1
            except OSError:
                with self._lock:
                    self.stats.disk_errors += 1
        self._remote_put(namespace, key, payload)

    def _disk_read(self, path: Optional[Path]) -> Optional[bytes]:
        if path is None:
            return None
        try:
            payload = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError:
            with self._lock:
                self.stats.disk_errors += 1
            return None
        try:
            os.utime(path)  # refresh mtime: LRU recency for eviction
        except OSError:
            pass
        return payload

    def _disk_load(self, path: Optional[Path], expected_type: type) -> Optional[object]:
        payload = self._disk_read(path)
        if payload is None:
            return None
        try:
            value = pickle.loads(payload)
            if not isinstance(value, expected_type):
                raise pickle.UnpicklingError(f"expected {expected_type.__name__}")
            return value
        except (pickle.PickleError, EOFError, AttributeError, ImportError, ValueError):
            with self._lock:
                self.stats.disk_errors += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def _disk_store(
        self,
        path: Optional[Path],
        value: object,
        *,
        namespace: Optional[str] = None,
        key: Optional[str] = None,
    ) -> None:
        """Store one artefact locally and enqueue its write-behind upload.

        The value is pickled once and the same payload feeds both sinks;
        budget enforcement is deferred to the caller (one pass per
        :meth:`compile`, not one per file)."""
        if path is None and self.remote is None:
            return
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PickleError, TypeError):
            with self._lock:
                self.stats.disk_errors += 1
            return
        if path is not None:
            try:
                atomic_write_bytes(path, payload)
                with self._lock:
                    self.stats.disk_stores += 1
            except OSError:
                with self._lock:
                    self.stats.disk_errors += 1
        if namespace is not None and key is not None:
            self._remote_put(namespace, key, payload)

    # -- the remote (L2) tier -------------------------------------------------

    def _remote_get(self, namespace: str, key: str) -> Optional[bytes]:
        if self.remote is None:
            return None
        return self.remote.get(f"{namespace}:{key}")

    def _remote_put(self, namespace: str, key: str, payload: Optional[bytes]) -> None:
        if self.remote is not None and payload is not None:
            self.remote.put(f"{namespace}:{key}", payload)

    def _note_remote_corrupt(self, namespace: str, key: str) -> None:
        note = getattr(self.remote, "note_corrupt", None)
        if note is not None:
            note(f"{namespace}:{key}")

    def _remote_load(
        self,
        namespace: str,
        key: str,
        expected_type: type,
        promote_path: Optional[Path],
    ) -> Optional[object]:
        """Fetch + unpickle one artefact from the remote tier.

        A corrupt payload is a miss (reported back to the client's corrupt
        counter), never an exception; a good one is promoted to local disk
        without being re-uploaded."""
        payload = self._remote_get(namespace, key)
        if payload is None:
            return None
        try:
            value = pickle.loads(payload)
            if not isinstance(value, expected_type):
                raise pickle.UnpicklingError(f"expected {expected_type.__name__}")
        except (pickle.PickleError, EOFError, AttributeError, ImportError, ValueError):
            self._note_remote_corrupt(namespace, key)
            return None
        self._promote_to_disk(promote_path, payload)
        return value

    def _promote_to_disk(self, path: Optional[Path], payload: bytes) -> None:
        """Write a remote hit into the local disk tier (no re-upload)."""
        if path is None:
            return
        try:
            atomic_write_bytes(path, payload)
            with self._lock:
                self.stats.disk_stores += 1
        except OSError:
            with self._lock:
                self.stats.disk_errors += 1

    def enforce_disk_budget(self) -> int:
        """Apply ``max_disk_bytes`` over the whole cache directory."""
        if self.cache_dir is None or self.max_disk_bytes is None:
            return 0
        evicted = evict_lru_files(self.cache_dir, self.max_disk_bytes)
        if evicted:
            with self._lock:
                self.stats.disk_evictions += evicted
        return evicted

    def stats_snapshot(self) -> dict[str, int]:
        """A consistent copy of the counters, taken under the cache lock.

        The per-stage sibling of :meth:`repro.pipeline.cache.
        CompilationCache.stats_snapshot`: the counters are mutated under
        ``self._lock``, so status endpoints read them through this snapshot
        instead of a lock-free ``stats.as_dict()`` that could tear.
        """
        with self._lock:
            return self.stats.as_dict()
