"""Content-addressed compilation cache.

The frontend of Figure 3 is deterministic: the same source texts compiled
with the same options always produce the same :class:`~repro.lang.compile.
CompilationResult` (and therefore the same textual Tydi-IR).  That makes
compilation outputs *content-addressable* -- a stable fingerprint of the
inputs is a complete identity for the output artefact.

:func:`fingerprint_sources` computes that fingerprint: a SHA-256 over

* a cache-format version salt (so layout changes invalidate old stores),
* the compile options, serialised with sorted keys,
* the standard-library source text (when ``include_stdlib`` is set, so
  stdlib edits across revisions invalidate persistent caches), and
* every ``(filename, source_text)`` pair in order.

:class:`CompilationCache` stores pickled results under those keys in a
bounded in-memory LRU, optionally backed by an on-disk store (conventionally
``.tydi-cache/``) that survives across processes -- which is what lets the
process-pool executor of :mod:`repro.pipeline.batch` share warm artefacts
with its workers.

Cached results are returned *as-is* (no defensive copy): treat a
:class:`~repro.lang.compile.CompilationResult` obtained through the cache as
immutable.  Results loaded from disk are fresh pickle round-trips and are
never aliased with a result some other compilation already holds.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Mapping, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.lang.compile import CompilationResult

#: Bump when the pickle layout or fingerprint recipe changes; old on-disk
#: entries then simply miss instead of deserialising stale artefacts.
CACHE_VERSION = 2

#: Schema version of the *per-stage* artefacts (parse ASTs, evaluate
#: snapshots, backend unit outputs, see :mod:`repro.pipeline.stages`).  It
#: participates in every fingerprint -- whole-result keys included -- so
#: entries written by an older stage layout (e.g. the PR-1 whole-result-only
#: cache) are never deserialised into the new layout: they simply miss.
#: v2: ``CompilationResult`` gained the ``outputs`` field and the stage
#: cache its backend-output tier.
#: v3: the options normal form gained the ``backend_options`` key
#: (:class:`repro.lang.compile.CompileOptions`), so every pre-workspace
#: fingerprint recipe is orphaned wholesale.
#: v4: option values hash through :func:`canonical_option_repr` instead of
#: raw ``repr`` (mappings render sorted by key), so semantically identical
#: options always share one fingerprint -- a prerequisite for keying the
#: *shared* remote tier, where an order-dependent key would fragment (and
#: pollute) the whole fleet's cache.
#: v5: the AST/token dataclasses grew ``slots=True`` and logical types are
#: interned at the constructor (``repro.spec.logical_types``), changing the
#: pickle layout of cached parse/evaluate artefacts; entries pickled by the
#: pre-slots layout must miss rather than deserialise into the new classes.
#: v6: the stage cache gained the ``sim:`` tier (pickled
#: :class:`repro.sim.harness.SimulationReport` keyed on evaluate fingerprint
#: plus plan fingerprint); the salt bump keeps pre-sim stores from mixing
#: with the new namespace layout.
#: v7: the stage cache gained the ``iringest:`` tier (pickled post-ingest
#: projects of Tydi-IR interchange documents, keyed on the document
#: fingerprint; see :meth:`repro.pipeline.stages.StageCache.compile_ir`),
#: and the ``Project`` pickle layout may now carry interned interchange
#: types; the salt bump keeps pre-interchange stores from mixing with the
#: new namespace layout.
STAGE_SCHEMA_VERSION = 7

#: Default directory name for the on-disk store.
DEFAULT_CACHE_DIR = ".tydi-cache"


# The one normalisation shared with compile_sources, so fingerprints agree
# no matter which layer computed them (the lang layer owns the definition).
from repro.lang.compile import CompileOptions, normalize_sources  # noqa: E402


def canonical_option_repr(value: object) -> str:
    """A deterministic rendering of one option value for fingerprinting.

    ``repr`` of a dict depends on key insertion order, so two semantically
    identical option sets (e.g. ``backend_options`` mappings built in
    different orders) would fingerprint differently -- a spurious local
    miss, and a fleet-cache polluter once keys address a shared remote
    tier.  Mappings therefore render sorted by key (recursively), sets
    sorted by element rendering; sequences keep their order, which *is*
    significant.  Everything else falls back to ``repr``.
    """
    if isinstance(value, Mapping):
        items = sorted(
            (canonical_option_repr(k), canonical_option_repr(v))
            for k, v in value.items()
        )
        return "{" + ", ".join(f"{k}: {v}" for k, v in items) + "}"
    if isinstance(value, (set, frozenset)):
        return "{" + ", ".join(sorted(canonical_option_repr(v) for v in value)) + "}"
    if isinstance(value, tuple):
        inner = ", ".join(canonical_option_repr(v) for v in value)
        return "(" + inner + ("," if len(value) == 1 else "") + ")"
    if isinstance(value, list):
        return "[" + ", ".join(canonical_option_repr(v) for v in value) + "]"
    return repr(value)


def fingerprint_sources(
    sources: Sequence[tuple[str, str]] | Sequence[str],
    options: "Mapping[str, object] | CompileOptions | None" = None,
) -> str:
    """Stable SHA-256 content hash of a compilation's inputs.

    ``options`` is either the canonical :class:`~repro.lang.compile.
    CompileOptions` or a legacy options mapping; both hash through the same
    ``{option: value}`` normal form (:meth:`CompileOptions.as_dict`), so
    every layer computes identical content addresses.
    """
    import repro

    if isinstance(options, CompileOptions):
        options = options.as_dict()
    options = dict(options or {})
    hasher = hashlib.sha256()
    # The cache-format salt, the per-stage schema version and the compiler's
    # own version all participate: a new compiler release invalidates
    # persistent artefacts automatically, without anyone remembering to bump
    # CACHE_VERSION, and a stage-layout change orphans PR-1-era entries.
    hasher.update(
        f"tydi-cache-v{CACHE_VERSION}.{STAGE_SCHEMA_VERSION}:compiler-{repro.__version__}".encode()
    )
    for key in sorted(options):
        hasher.update(b"\x00opt\x00")
        hasher.update(key.encode())
        hasher.update(b"=")
        hasher.update(canonical_option_repr(options[key]).encode())
    if options.get("include_stdlib", True):
        from repro.stdlib.source import STDLIB_SOURCE

        hasher.update(b"\x00stdlib\x00")
        hasher.update(STDLIB_SOURCE.encode())
    for text, filename in normalize_sources(sources):
        hasher.update(b"\x00file\x00")
        hasher.update(filename.encode())
        hasher.update(b"\x00")
        hasher.update(text.encode())
    return hasher.hexdigest()


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via write-to-temp-then-rename.

    Concurrent readers either see the old complete file or the new complete
    file, never a torn write.  Shared by the whole-result cache and the
    per-stage cache (:mod:`repro.pipeline.stages`).  Raises ``OSError`` for
    the caller to account.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_pickle_dump(path: Path, obj: object) -> None:
    """Pickle ``obj`` to ``path`` atomically (see :func:`atomic_write_bytes`)."""
    atomic_write_bytes(path, pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


#: A ``*.tmp`` file older than this is a leak from a crashed writer
#: (``atomic_write_bytes`` holds its temp file for milliseconds, not
#: minutes) and is reclaimed during budget enforcement.
TMP_SWEEP_AGE_S = 300.0


def evict_lru_files(
    root: Path, max_bytes: int, *, tmp_sweep_age_s: float = TMP_SWEEP_AGE_S
) -> int:
    """Delete the least-recently-used ``*.pkl`` artefacts under ``root``.

    Scans recursively (the per-stage tier lives in a ``stages/``
    subdirectory of the whole-result store), sums artefact sizes, and
    unlinks oldest-mtime-first until the total is within ``max_bytes``.
    Loads refresh mtimes, so mtime order *is* recency order.  Returns the
    number of files deleted; unreadable or already-gone files are skipped.

    ``*.tmp`` files are the write-in-progress side of
    :func:`atomic_write_bytes`; a writer SIGKILLed between ``mkstemp`` and
    ``os.replace`` leaks one forever.  Every enforcement pass therefore
    sweeps tmp files older than ``tmp_sweep_age_s`` (uncounted -- garbage
    collection, not eviction) and charges the *fresh* ones, which are
    about to become artefacts, against the byte budget.
    """
    entries: list[tuple[float, int, Path]] = []
    total = 0
    now = time.time()
    for path in root.rglob("*.tmp"):
        try:
            stat = path.stat()
        except OSError:
            continue
        if now - stat.st_mtime >= tmp_sweep_age_s:
            try:
                path.unlink()
            except OSError:
                pass
            continue
        total += stat.st_size
    for path in root.rglob("*.pkl"):
        try:
            stat = path.stat()
        except OSError:
            continue
        entries.append((stat.st_mtime, stat.st_size, path))
        total += stat.st_size
    if total <= max_bytes:
        return 0
    evicted = 0
    for _, size, path in sorted(entries):
        try:
            path.unlink()
        except OSError:
            continue
        total -= size
        evicted += 1
        if total <= max_bytes:
            break
    return evicted


@dataclass
class CacheStats:
    """Counters describing how a :class:`CompilationCache` has been used."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    disk_hits: int = 0
    disk_stores: int = 0
    disk_errors: int = 0
    disk_evictions: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "disk_stores": self.disk_stores,
            "disk_errors": self.disk_errors,
            "disk_evictions": self.disk_evictions,
        }

    def reset(self) -> None:
        self.hits = self.misses = self.stores = self.evictions = 0
        self.disk_hits = self.disk_stores = self.disk_errors = 0
        self.disk_evictions = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class CompilationCache:
    """Bounded in-memory LRU of compilation results, with optional disk tier.

    Parameters
    ----------
    max_entries:
        In-memory LRU capacity; the least-recently-used entry is evicted on
        overflow (it stays on disk if a ``cache_dir`` is configured).
    cache_dir:
        When set, every stored result is also pickled to
        ``<cache_dir>/<key>.pkl`` and in-memory misses fall through to disk.
        The directory is created lazily on first store.
    max_disk_bytes:
        When set, the on-disk store (whole-result artefacts *and* the
        per-stage tier under ``<cache_dir>/stages/``) is bounded: after every
        disk store, least-recently-used artefacts are deleted until the total
        is within budget (``stats.disk_evictions`` counts them).
    stage_caching:
        Construct a per-stage sub-cache (:class:`repro.pipeline.stages.
        StageCache`, exposed as ``.stages``) sharing this cache's disk
        directory and byte budget.  ``compile_sources`` compiles whole-result
        misses through it, so a one-file edit of an N-file design re-parses
        only the edited file.  Set to ``False`` for a PR-1-style
        whole-result-only cache.
    remote:
        The shared remote L2 tier: a ``host:port`` endpoint string (a
        :class:`~repro.pipeline.remote.RemoteCacheClient` is built from
        it) or an existing client instance, shared with the per-stage
        sub-cache.  Lookup order is memory -> disk -> remote; remote hits
        are promoted into the local tiers, stores upload asynchronously
        (write-behind), and a dead or slow remote degrades to local-only
        -- it can never fail a compile.

    The cache is thread-safe: the batch driver's thread executor shares one
    instance across all workers.
    """

    max_entries: int = 128
    cache_dir: Optional[str | Path] = None
    max_disk_bytes: Optional[int] = None
    stage_caching: bool = True
    remote: Optional[object] = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if self.max_disk_bytes is not None and self.max_disk_bytes < 0:
            raise ValueError("max_disk_bytes must be >= 0")
        if self.cache_dir is not None:
            self.cache_dir = Path(self.cache_dir)
        if isinstance(self.remote, str):
            from repro.pipeline.remote import RemoteCacheClient

            self.remote = RemoteCacheClient.from_url(self.remote)
        self._entries: OrderedDict[str, "CompilationResult"] = OrderedDict()
        self._lock = threading.Lock()
        self.stages = None
        if self.stage_caching:
            from repro.pipeline.stages import StageCache

            self.stages = StageCache(
                cache_dir=self.cache_dir,
                max_disk_bytes=self.max_disk_bytes,
                remote=self.remote,
            )
        # Apply the budget to whatever is already on disk: a store that only
        # ever *hits* would otherwise never shrink after a budget decrease.
        if self.cache_dir is not None and Path(self.cache_dir).is_dir():
            self.enforce_disk_budget()

    # -- keying ---------------------------------------------------------------

    def key_for(
        self,
        sources: Sequence[tuple[str, str]] | Sequence[str],
        options: "Mapping[str, object] | CompileOptions | None" = None,
    ) -> str:
        """Content-address of one compilation (see :func:`fingerprint_sources`)."""
        return fingerprint_sources(sources, options)

    # -- lookup / store -------------------------------------------------------

    def get(self, key: str) -> Optional["CompilationResult"]:
        """Return the cached result for ``key`` or ``None`` on a miss.

        Lookup order: in-memory LRU, local disk, then the remote tier
        (when one is configured).  A remote hit is promoted into both
        local tiers so the next process start over the same ``cache_dir``
        hits disk without touching the network.
        """
        with self._lock:
            result = self._entries.get(key)
            if result is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return result
        result = self._disk_load(key)
        disk_hit = result is not None
        if result is None:
            result = self._remote_load(key)
        with self._lock:
            if result is not None:
                self.stats.hits += 1
                if disk_hit:
                    self.stats.disk_hits += 1
                self._insert(key, result)
            else:
                self.stats.misses += 1
        return result

    def put(self, key: str, result: "CompilationResult", *, disk: bool = True) -> None:
        """Store a result under its content address (memory, disk, remote).

        ``disk=False`` populates only the in-memory tier -- used when the
        on-disk artefact is known to exist already (e.g. a process-pool
        worker stored it), to avoid re-pickling the result.  The remote
        upload (when a remote is configured) is write-behind: the pickled
        payload is queued and the compile path never waits on the network.
        """
        with self._lock:
            self.stats.stores += 1
            self._insert(key, result)
        if disk:
            self._disk_store(key, result)

    def absorb_hit(self, key: str, result: "CompilationResult") -> None:
        """Fold in a hit observed by another process over the same disk store.

        Process-pool workers do their lookups in their own cache instances;
        the parent calls this per warm result so its stats reflect the batch
        ("cached" designs <=> recorded hits) and its memory tier warms up.
        """
        with self._lock:
            self.stats.hits += 1
            self.stats.disk_hits += 1
            self._insert(key, result)

    def contains(self, key: str) -> bool:
        """Whether ``key`` would hit, without touching stats or LRU order."""
        with self._lock:
            if key in self._entries:
                return True
        return self.cache_dir is not None and self._disk_path(key).exists()

    def clear(self, *, disk: bool = False) -> None:
        """Drop the in-memory tiers (and, optionally, the on-disk store).

        Cascades to the per-stage sub-cache: a cleared cache serves no warm
        artefacts of any kind, and ``disk=True`` reclaims the whole
        directory including ``stages/``.
        """
        with self._lock:
            self._entries.clear()
        if disk and self.cache_dir is not None and self.cache_dir.is_dir():
            # Recursive, and independent of whether a StageCache is
            # attached: a stage_caching=False instance pointed at a
            # directory that *has* stage artefacts (written by an earlier
            # configuration) must still reclaim them -- they count against
            # max_disk_bytes either way.  Stale .tmp leaks from crashed
            # writers go with them.
            for pattern in ("*.pkl", "*.tmp"):
                for path in self.cache_dir.rglob(pattern):
                    try:
                        path.unlink()
                    except OSError:
                        with self._lock:
                            self.stats.disk_errors += 1
        if self.stages is not None:
            self.stages.clear(disk=disk)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats_snapshot(self) -> dict[str, object]:
        """A consistent copy of the counters, taken under the cache lock.

        :attr:`stats` is mutated under ``self._lock``; reading it lock-free
        (as ``stats.as_dict()`` does) can observe a torn set of counters --
        e.g. a ``hits`` that already includes a lookup whose ``disk_hits``
        increment it misses.  Status endpoints (``Workspace.stats``, the
        compile service's ``stats`` method, the CLI JSON payloads) read
        through this snapshot instead.  With a remote tier configured the
        snapshot carries its per-tier counters under a nested ``"remote"``
        key (hits / misses / bytes / errors / endpoint health).
        """
        with self._lock:
            snapshot: dict[str, object] = dict(self.stats.as_dict())
        if self.remote is not None:
            remote_snapshot = getattr(self.remote, "stats_snapshot", None)
            snapshot["remote"] = (
                remote_snapshot() if remote_snapshot is not None else None
            )
        return snapshot

    # -- internals ------------------------------------------------------------

    def _insert(self, key: str, result: "CompilationResult") -> None:
        """Insert under the lock, evicting the LRU entry on overflow."""
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def _disk_path(self, key: str) -> Path:
        return Path(self.cache_dir) / f"{key}.pkl"

    def _disk_load(self, key: str) -> Optional["CompilationResult"]:
        if self.cache_dir is None:
            return None
        path = self._disk_path(key)
        try:
            with path.open("rb") as handle:
                result = pickle.load(handle)
            try:
                os.utime(path)  # refresh mtime: LRU recency for eviction
            except OSError:
                pass
            return result
        except FileNotFoundError:
            return None
        except (OSError, pickle.PickleError, EOFError, AttributeError, ImportError):
            # A corrupt or stale artefact is just a miss; drop it if we can.
            with self._lock:
                self.stats.disk_errors += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def _disk_store(self, key: str, result: "CompilationResult") -> None:
        """Persist one result to the durable tiers: local disk, then remote.

        One ``pickle.dumps`` serves both -- the remote tier stores exactly
        the bytes the disk tier stores, so a remote hit round-trips through
        the same deserialisation (and the same corruption guards) as a
        disk hit.
        """
        if self.cache_dir is None and self.remote is None:
            return
        try:
            payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PickleError, TypeError):
            with self._lock:
                self.stats.disk_errors += 1
            return
        if self.cache_dir is not None:
            try:
                atomic_write_bytes(self._disk_path(key), payload)
                with self._lock:
                    self.stats.disk_stores += 1
                self.enforce_disk_budget()
            except OSError:
                with self._lock:
                    self.stats.disk_errors += 1
        if self.remote is not None:
            self.remote.put(f"result:{key}", payload)

    def _remote_load(self, key: str) -> Optional["CompilationResult"]:
        """One remote lookup; corrupt payloads are a counted miss, never a
        raise (mirroring the disk tier's corruption discipline)."""
        if self.remote is None:
            return None
        payload = self.remote.get(f"result:{key}")
        if payload is None:
            return None
        try:
            result = pickle.loads(payload)
        except (pickle.PickleError, EOFError, AttributeError, ImportError, ValueError):
            note = getattr(self.remote, "note_corrupt", None)
            if note is not None:
                note(f"result:{key}")
            return None
        if self.cache_dir is not None:
            # Promote to the local disk tier (the bytes are already the
            # disk format); no re-upload -- the entry came from the remote.
            try:
                atomic_write_bytes(self._disk_path(key), payload)
                with self._lock:
                    self.stats.disk_stores += 1
            except OSError:
                with self._lock:
                    self.stats.disk_errors += 1
        return result

    def enforce_disk_budget(self) -> int:
        """Apply ``max_disk_bytes`` to the on-disk store (both tiers)."""
        if self.cache_dir is None or self.max_disk_bytes is None:
            return 0
        evicted = evict_lru_files(Path(self.cache_dir), self.max_disk_bytes)
        if evicted:
            with self._lock:
                self.stats.disk_evictions += evicted
        return evicted
