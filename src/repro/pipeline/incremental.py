"""Incremental recompilation: only rebuild the designs whose inputs changed.

:class:`IncrementalCompiler` remembers, per design name, the content
fingerprint of the last successful build.  On :meth:`~IncrementalCompiler.
update` it diffs the incoming job set against that memory:

* **unchanged** fingerprints reuse the previous result without touching the
  compiler (or even the cache),
* **changed or new** fingerprints are recompiled through a
  :class:`~repro.pipeline.batch.BatchCompiler` (so they still enjoy cache
  hits and concurrency),
* names that disappeared from the job set are **removed**.

Invalidation is additionally tracked at *file* granularity: each design's
per-file fingerprints (:func:`repro.pipeline.stages.file_fingerprint` --
the same keys the per-stage cache uses) are remembered, and a dirty
design's report records exactly which files changed.  When the batch's
cache carries a :class:`~repro.pipeline.stages.StageCache` (the default),
the recompile then re-parses *only* those changed files.

A design that fails to compile loses its previous fingerprint *and* result,
so the next ``update`` retries it instead of treating the failure as
up-to-date, and :meth:`~IncrementalCompiler.result_for` never serves an
artefact that no longer matches the sources.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.pipeline.batch import BatchCompiler, CompileJob
from repro.pipeline.cache import CompilationCache
from repro.pipeline.stages import file_fingerprint

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.lang.compile import CompilationResult


@dataclass
class IncrementalReport:
    """What one :meth:`IncrementalCompiler.update` round did."""

    compiled: list[str] = field(default_factory=list)
    reused: list[str] = field(default_factory=list)
    removed: list[str] = field(default_factory=list)
    failed: dict[str, str] = field(default_factory=dict)
    results: dict[str, "CompilationResult"] = field(default_factory=dict)
    #: Per recompiled design: the filenames whose content fingerprints
    #: differ from the previous round (new designs list every file).
    changed_files: dict[str, list[str]] = field(default_factory=dict)
    #: Per recompiled design: the filenames carried over unchanged (their
    #: parse artefacts are served from the stage cache, not re-parsed).
    unchanged_files: dict[str, list[str]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failed

    def summary(self) -> str:
        return (
            f"{len(self.compiled)} recompiled, {len(self.reused)} reused, "
            f"{len(self.removed)} removed, {len(self.failed)} failed"
        )

    def file_summary(self) -> str:
        changed = sum(len(v) for v in self.changed_files.values())
        unchanged = sum(len(v) for v in self.unchanged_files.values())
        return f"{changed} file(s) re-parsed, {unchanged} file(s) reused"


class IncrementalCompiler:
    """Stateful driver that recompiles only fingerprint-dirty designs."""

    def __init__(
        self,
        *,
        cache: Optional[CompilationCache] = None,
        executor: str = "serial",
        max_workers: Optional[int] = None,
    ) -> None:
        self.batch = BatchCompiler(cache=cache, executor=executor, max_workers=max_workers)
        self._fingerprints: dict[str, str] = {}
        self._file_keys: dict[str, dict[str, str]] = {}
        self._results: dict[str, "CompilationResult"] = {}

    @staticmethod
    def _job_file_keys(job: CompileJob) -> dict[str, str]:
        """Per-file fingerprints of one job (filename -> content address)."""
        return {filename: file_fingerprint(text, filename) for text, filename in job.sources}

    @property
    def known_designs(self) -> list[str]:
        return sorted(self._results)

    def result_for(self, name: str) -> Optional["CompilationResult"]:
        return self._results.get(name)

    def outputs_for(self, name: str, target: str) -> Optional[dict[str, str]]:
        """One design's emitted files for one backend target, if built.

        Backends ride in :attr:`CompileJob.targets`, so requesting a new
        target dirties the design's fingerprint and the next
        :meth:`update` re-emits it (through the per-implementation
        backend-output cache when the batch carries one).
        """
        result = self._results.get(name)
        if result is None:
            return None
        return result.outputs.get(target)

    def update(self, jobs: Sequence[CompileJob]) -> IncrementalReport:
        """Bring the build state in line with ``jobs`` and report the diff."""
        report = IncrementalReport()
        jobs = list(jobs)
        wanted = {job.name for job in jobs}

        for name in sorted(set(self._fingerprints) - wanted):
            del self._fingerprints[name]
            self._file_keys.pop(name, None)
            self._results.pop(name, None)
            report.removed.append(name)

        dirty: list[tuple[CompileJob, str]] = []
        for job in jobs:
            key = job.fingerprint()
            if self._fingerprints.get(job.name) == key and job.name in self._results:
                report.reused.append(job.name)
                report.results[job.name] = self._results[job.name]
            else:
                dirty.append((job, key))
                # File-granularity diff: which of this design's files
                # actually changed since the last successful build?  (An
                # option-only change legitimately shows zero changed files.)
                file_keys = self._job_file_keys(job)
                previous = self._file_keys.get(job.name, {})
                report.changed_files[job.name] = [
                    filename
                    for filename, fkey in file_keys.items()
                    if previous.get(filename) != fkey
                ]
                report.unchanged_files[job.name] = [
                    filename
                    for filename, fkey in file_keys.items()
                    if previous.get(filename) == fkey
                ]

        if dirty:
            batch = self.batch.compile_batch([job for job, _ in dirty])
            for (job, key), entry in zip(dirty, batch.results):
                if entry.ok:
                    self._fingerprints[job.name] = key
                    self._file_keys[job.name] = self._job_file_keys(job)
                    self._results[job.name] = entry.result
                    report.compiled.append(job.name)
                    report.results[job.name] = entry.result
                else:
                    # A failed design has no usable result: drop any previous
                    # build so result_for() can't serve an artefact that no
                    # longer matches the sources.  The stale fingerprint goes
                    # too, so the next update always retries.
                    self._fingerprints.pop(job.name, None)
                    self._file_keys.pop(job.name, None)
                    self._results.pop(job.name, None)
                    report.failed[job.name] = entry.error or "unknown error"
        return report
