"""Deprecated incremental-recompilation facade over the workspace session.

:class:`IncrementalCompiler` predates :class:`repro.workspace.Workspace`;
it survives as a thin adapter that syncs each :meth:`~IncrementalCompiler.
update` round's job set into a persistent workspace and runs
:meth:`~repro.workspace.Workspace.compile_all`.  The semantics are
unchanged:

* **unchanged** fingerprints reuse the previous result without touching the
  compiler (or even the cache) -- the workspace's per-design query memo,
* **changed or new** fingerprints are recompiled through the shared job
  engine (so they still enjoy cache hits and concurrency),
* names that disappeared from the job set are **removed**,
* a design that fails to compile loses its previous fingerprint *and*
  result, so the next ``update`` retries it instead of treating the failure
  as up-to-date, and :meth:`~IncrementalCompiler.result_for` never serves
  an artefact that no longer matches the sources.

Invalidation is additionally tracked at *file* granularity: a dirty
design's report records exactly which files changed since the last
successful build, and when the cache carries a
:class:`~repro.pipeline.stages.StageCache` (the default) the recompile
re-parses *only* those files.

New code should hold a :class:`~repro.workspace.Workspace` directly --
``ws.add_design`` / ``ws.update_file`` express edits at file granularity
instead of re-submitting whole job sets.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Optional, Sequence

from repro.pipeline.batch import CompileJob
from repro.pipeline.cache import CompilationCache
from repro.workspace import BuildReport, Workspace

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.lang.compile import CompilationResult

#: The report type of one update round -- the workspace's build report
#: under its historical name (same fields, same summaries).
IncrementalReport = BuildReport


class IncrementalCompiler:
    """Deprecated stateful driver that recompiles only fingerprint-dirty designs.

    .. deprecated::
        Hold a :class:`repro.workspace.Workspace` instead; this class is a
        thin adapter over one (kept working for existing callers).
    """

    def __init__(
        self,
        *,
        cache: Optional[CompilationCache] = None,
        executor: str = "serial",
        max_workers: Optional[int] = None,
    ) -> None:
        warnings.warn(
            "IncrementalCompiler is deprecated; use repro.workspace.Workspace "
            "(ws.add_design / ws.update_file, then ws.compile_all or ws.result)",
            DeprecationWarning,
            stacklevel=2,
        )
        self.workspace = Workspace(cache=cache, executor=executor, jobs=max_workers)

    @property
    def known_designs(self) -> list[str]:
        """Sorted names of the designs holding a current successful build."""
        return sorted(
            name
            for name in self.workspace.design_names
            if self.workspace.cached_result(name) is not None
        )

    def result_for(self, name: str) -> Optional["CompilationResult"]:
        return self.workspace.cached_result(name)

    def outputs_for(self, name: str, target: str) -> Optional[dict[str, str]]:
        """One design's emitted files for one backend target, if built.

        Backends ride in :attr:`CompileJob.targets`, so requesting a new
        target dirties the design's fingerprint and the next
        :meth:`update` re-emits it (through the per-implementation
        backend-output cache when the batch carries one).
        """
        result = self.workspace.cached_result(name)
        if result is None:
            return None
        return result.outputs.get(target)

    def update(self, jobs: Sequence[CompileJob]) -> IncrementalReport:
        """Bring the build state in line with ``jobs`` and report the diff."""
        jobs = list(jobs)
        names = [job.name for job in jobs]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate job name(s) in batch: {', '.join(dupes)}")
        wanted = {job.name for job in jobs}
        removed = sorted(set(self.workspace.design_names) - wanted)
        for name in removed:
            self.workspace.remove_design(name)
        for job in jobs:
            self.workspace.add_job(job, replace=True)
        report = self.workspace.compile_all()
        report.removed.extend(removed)
        return report
