"""The concurrent compile-job engine (and its deprecated driver facade).

A :class:`CompileJob` is a pure-data description of one frontend run (sources
plus a :class:`~repro.lang.compile.CompileOptions`), which makes it hashable
into a content address and shippable to worker processes.  :func:`run_jobs`
fans a sequence of jobs out over a ``serial``, ``thread`` or ``process``
executor with per-job error isolation: one design failing its parse or DRC
records a :class:`JobResult` error entry instead of aborting the batch.

The engine is driven by :meth:`repro.workspace.Workspace.compile_all` --
the session API that owns design state.  :class:`BatchCompiler`, the PR-1
driver object, survives as a thin deprecation-warned adapter that runs its
jobs through a throwaway workspace.

Determinism: the frontend is pure, so batch output is byte-identical to
compiling the same jobs serially (asserted by
``benchmarks/test_pipeline_throughput.py``).

Cache interaction
-----------------
* ``serial`` / ``thread``: workers share the caller's
  :class:`~repro.pipeline.cache.CompilationCache` instance directly --
  including its per-stage sub-cache (:class:`~repro.pipeline.stages.
  StageCache`), so whole-result misses still reuse unchanged files' parse
  ASTs and warm evaluate snapshots.
* ``process``: the cache object cannot be shared, so workers get the cache's
  *directory* and hit/populate the on-disk tiers (whole-result artefacts and
  ``stages/``); the parent folds finished results back into its in-memory
  tier.
"""

from __future__ import annotations

import os
import time
import traceback
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional, Sequence

from repro.pipeline.cache import CompilationCache

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.lang.compile import CompilationResult, CompileOptions

EXECUTORS = ("serial", "thread", "process")


@dataclass(frozen=True)
class CompileJob:
    """One independent design to compile (pure data, picklable)."""

    name: str
    sources: tuple[tuple[str, str], ...]
    top: Optional[str] = None
    top_args: tuple = ()
    include_stdlib: bool = True
    sugaring: bool = True
    run_drc: bool = True
    strict_drc: bool = True
    project_name: Optional[str] = None
    #: Output backends to run for this design (see :mod:`repro.backends`);
    #: participates in the content address, so requesting a new target is a
    #: whole-result miss that still reuses every per-stage artefact.
    targets: tuple[str, ...] = ()
    #: Per-backend emission options in the normal form of
    #: :attr:`repro.lang.compile.CompileOptions.backend_options`.
    backend_options: tuple[tuple[str, object], ...] = ()

    def compile_options(self) -> "CompileOptions":
        """This job's options as the canonical frozen dataclass."""
        from repro.lang.compile import CompileOptions

        return CompileOptions(
            top=self.top,
            top_args=self.top_args,
            include_stdlib=self.include_stdlib,
            sugaring=self.sugaring,
            run_drc=self.run_drc,
            strict_drc=self.strict_drc,
            project_name=self.project_name or self.name,
            targets=self.targets,
            backend_options=self.backend_options,
        )

    def options(self) -> dict[str, object]:
        """The legacy ``compile_sources`` keyword-options dict (mutable)."""
        return self.compile_options().as_dict()

    def fingerprint(self) -> str:
        """Content address of this job (sources + options + stdlib)."""
        return self.compile_options().fingerprint(self.sources)

    def with_options(self, **changes: object) -> "CompileJob":
        """A copy of this job with some option fields replaced."""
        return replace(self, **changes)

    def compile(self, *, cache: Optional[CompilationCache] = None) -> "CompilationResult":
        """Compile this job directly (no executor, no error isolation)."""
        from repro.lang.compile import compile_sources

        return compile_sources(
            list(self.sources), options=self.compile_options(), cache=cache
        )


@dataclass
class JobResult:
    """Outcome of one job: a result, or an isolated error."""

    job: CompileJob
    result: Optional["CompilationResult"] = None
    error: Optional[str] = None
    error_stage: Optional[str] = None
    error_type: Optional[str] = None
    elapsed: float = 0.0
    from_cache: bool = False
    #: Content address of the job, when a cache was in play (lets the
    #: process-executor fold reuse the worker's hash instead of recomputing).
    key: Optional[str] = None

    @property
    def name(self) -> str:
        return self.job.name

    @property
    def ok(self) -> bool:
        return self.error is None

    def status(self) -> str:
        if not self.ok:
            return "error"
        return "cached" if self.from_cache else "compiled"

    def as_dict(self) -> dict[str, object]:
        """JSON-ready summary (used by ``tydi-compile --batch --json``)."""
        entry: dict[str, object] = {
            "name": self.name,
            "status": self.status(),
            "elapsed": round(self.elapsed, 6),
        }
        if self.ok:
            entry["statistics"] = self.result.project.statistics()
            if self.result.outputs:
                entry["outputs"] = {
                    target: len(files) for target, files in self.result.outputs.items()
                }
        else:
            entry["error"] = self.error
            entry["error_stage"] = self.error_stage
            entry["error_type"] = self.error_type
        return entry


@dataclass
class BatchResult:
    """All job results of one batch, in the input job order."""

    results: list[JobResult]
    wall_time: float
    executor: str
    workers: int

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def failures(self) -> list[JobResult]:
        return [r for r in self.results if not r.ok]

    def result_map(self) -> dict[str, "CompilationResult"]:
        """Successful results by job name."""
        return {r.name: r.result for r in self.results if r.ok}

    def raise_if_failed(self) -> None:
        """Re-raise the first failure (for callers that want all-or-nothing)."""
        for entry in self.results:
            if not entry.ok:
                raise BatchCompilationError(self)

    def stats(self) -> dict[str, object]:
        compiled = sum(1 for r in self.results if r.ok and not r.from_cache)
        cached = sum(1 for r in self.results if r.ok and r.from_cache)
        return {
            "jobs": len(self.results),
            "succeeded": compiled + cached,
            "failed": len(self.failures),
            "compiled": compiled,
            "cached": cached,
            "executor": self.executor,
            "workers": self.workers,
            "wall_time": round(self.wall_time, 6),
            "job_time_total": round(sum(r.elapsed for r in self.results), 6),
            "throughput": round(len(self.results) / self.wall_time, 3)
            if self.wall_time > 0
            else None,
        }


class BatchCompilationError(Exception):
    """Raised by :meth:`BatchResult.raise_if_failed` when any job failed."""

    def __init__(self, batch: BatchResult) -> None:
        self.batch = batch
        lines = [f"{len(batch.failures)} of {len(batch)} design(s) failed to compile:"]
        for entry in batch.failures:
            lines.append(f"  {entry.name} [{entry.error_stage or 'unknown'}]: {entry.error}")
        super().__init__("\n".join(lines))


def _execute_job(job: CompileJob, cache: Optional[CompilationCache]) -> JobResult:
    """Compile one job with error isolation; shared by every executor."""
    start = time.perf_counter()
    key: Optional[str] = None
    try:
        stage_cache = None
        if cache is not None:
            key = job.fingerprint()
            hit = cache.get(key)
            if hit is not None:
                return JobResult(
                    job=job,
                    result=hit,
                    elapsed=time.perf_counter() - start,
                    from_cache=True,
                    key=key,
                )
            stage_cache = getattr(cache, "stages", None)
        if stage_cache is not None:
            # Whole-result miss, but the per-stage tiers may still hold the
            # unchanged files' ASTs and the design's evaluate snapshot.
            result = stage_cache.compile(job.sources, job.options())
        else:
            from repro.lang.compile import compile_sources

            result = compile_sources(list(job.sources), **job.options())
        if cache is not None and key is not None:
            cache.put(key, result)
        return JobResult(job=job, result=result, elapsed=time.perf_counter() - start, key=key)
    except Exception as exc:  # noqa: BLE001 - isolation is the whole point
        return JobResult(
            job=job,
            error=str(exc) or traceback.format_exc(limit=1).strip(),
            error_stage=getattr(exc, "stage", None),
            error_type=type(exc).__name__,
            elapsed=time.perf_counter() - start,
        )


def _process_worker(
    job: CompileJob, cache_dir: Optional[str], max_disk_bytes: Optional[int] = None
) -> JobResult:
    """Process-pool entry point: rebuild a disk-backed cache in the worker."""
    cache = (
        CompilationCache(cache_dir=cache_dir, max_disk_bytes=max_disk_bytes)
        if cache_dir
        else None
    )
    return _execute_job(job, cache)


def _worker_count(executor: str, max_workers: Optional[int], num_jobs: int) -> int:
    """Resolve the effective worker count for one batch.

    An explicit ``max_workers`` is always respected (clamped to the job
    count).  The *default* is executor-aware: the frontend is pure Python,
    so threads only overlap the GIL-releasing slices (disk-cache I/O,
    pickling) and more than a handful adds contention rather than
    parallelism -- hence the small thread cap.  Processes sidestep the GIL
    entirely, so their default is the full CPU count.  (Historically both
    defaults were capped at 8, under-using wide machines for process
    batches.)
    """
    if executor == "serial" or num_jobs <= 1:
        return 1
    if max_workers is not None:
        return max(1, min(max_workers, num_jobs))
    cpus = os.cpu_count() or 2
    workers = min(cpus, 8) if executor == "thread" else cpus
    return max(1, min(workers, num_jobs))


def _parse_one(item: tuple[str, str]):
    """Process-pool entry point: parse one ``(text, filename)`` pair."""
    from repro.lang.parser import parse_source

    text, filename = item
    return parse_source(text, filename)


def parallel_parse_stage(
    normalized: Sequence[tuple[str, str]],
    *,
    include_stdlib: bool = True,
    jobs: Optional[int] = None,
):
    """Stage 1 (:func:`repro.lang.compile.parse_stage`) across a process pool.

    Parsing is per-file independent and pure, so the files of one design can
    be lexed/parsed concurrently.  The parsed units are fed back through the
    real ``parse_stage`` (as its ``parse_file`` hook), so stdlib handling,
    unit ordering and the stage-log entry are byte-identical to a serial
    parse -- ``tests/test_pipeline_batch.py`` asserts equality.

    ``jobs`` defaults to the CPU count; with one worker or one file the
    serial path runs directly (a process pool costs more than it saves on
    small inputs).
    """
    from repro.lang.compile import parse_stage

    normalized = tuple(normalized)
    if jobs is None:
        jobs = os.cpu_count() or 2
    jobs = max(1, min(jobs, len(normalized)))
    if jobs <= 1 or len(normalized) <= 1:
        return parse_stage(normalized, include_stdlib=include_stdlib)
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        parsed = iter(list(pool.map(_parse_one, normalized)))
    return parse_stage(
        normalized,
        include_stdlib=include_stdlib,
        parse_file=lambda text, filename: next(parsed),
    )


def run_jobs(
    jobs: Sequence[CompileJob],
    *,
    cache: Optional[CompilationCache] = None,
    executor: str = "thread",
    max_workers: Optional[int] = None,
) -> BatchResult:
    """Compile every job through one executor; failures are recorded per job.

    The shared engine under :meth:`repro.workspace.Workspace.compile_all`
    (and the deprecated :class:`BatchCompiler` facade).

    Parameters
    ----------
    cache:
        A shared :class:`~repro.pipeline.cache.CompilationCache`; jobs whose
        fingerprint hits skip compilation entirely.
    executor:
        ``"serial"``, ``"thread"`` or ``"process"``.  Threads share the
        in-memory cache; processes share only its disk tier.
    max_workers:
        Worker count for the concurrent executors.  Defaults are
        executor-aware (see :func:`_worker_count`): CPU count for
        processes, CPU count capped at 8 for threads (the pure-Python
        frontend holds the GIL, so extra threads add contention, not
        parallelism).  An explicit value is always respected.
    """
    if executor not in EXECUTORS:
        raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
    jobs = list(jobs)
    names = [job.name for job in jobs]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise ValueError(f"duplicate job name(s) in batch: {', '.join(dupes)}")

    start = time.perf_counter()
    workers = _worker_count(executor, max_workers, len(jobs))
    if executor == "serial" or workers == 1:
        results = [_execute_job(job, cache) for job in jobs]
        executor_name = "serial"
    elif executor == "thread":
        with ThreadPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(lambda job: _execute_job(job, cache), jobs))
        executor_name = "thread"
    else:
        cache_dir = (
            str(cache.cache_dir)
            if cache is not None and getattr(cache, "cache_dir", None) is not None
            else None
        )
        # Check the parent's in-memory tier before paying pool dispatch:
        # workers can only see the disk tier, so without this a
        # memory-only cache would never produce a warm process batch.
        hits: dict[int, JobResult] = {}
        pending: list[CompileJob] = []
        if cache is not None:
            for index, job in enumerate(jobs):
                key = job.fingerprint()
                hit = cache.get(key)
                if hit is not None:
                    hits[index] = JobResult(job=job, result=hit, from_cache=True, key=key)
                else:
                    pending.append(job)
        else:
            pending = jobs
        max_disk_bytes = getattr(cache, "max_disk_bytes", None) if cache is not None else None
        with ProcessPoolExecutor(max_workers=workers) as pool:
            compiled = list(
                pool.map(
                    _process_worker,
                    pending,
                    [cache_dir] * len(pending),
                    [max_disk_bytes] * len(pending),
                )
            )
        compiled_iter = iter(compiled)
        results = [hits.get(i) or next(compiled_iter) for i in range(len(jobs))]
        # Fold worker output back into the parent's cache: results into
        # the in-memory tier (the workers already wrote the disk
        # artefacts, so skip re-pickling those), and the workers'
        # hit/miss activity into the parent's stats so e.g.
        # ``tydi-compile --json`` reports a warm process batch as warm.
        # Parent-side hits above already counted themselves via get().
        if cache is not None:
            for entry in compiled:
                if not entry.ok:
                    continue
                key = entry.key or entry.job.fingerprint()
                if entry.from_cache:
                    cache.absorb_hit(key, entry.result)
                else:
                    cache.put(key, entry.result, disk=cache_dir is None)
            # The disk-skipping fold above bypasses the per-store budget
            # check, so settle the batch's disk growth in one pass here.
            cache.enforce_disk_budget()
        executor_name = "process"
    return BatchResult(
        results=results,
        wall_time=time.perf_counter() - start,
        executor=executor_name,
        workers=workers,
    )


@dataclass
class BatchCompiler:
    """Deprecated driver facade: compile many independent designs.

    .. deprecated::
        Hold a :class:`repro.workspace.Workspace` instead -- add each design
        with :meth:`~repro.workspace.Workspace.add_design` (or
        :meth:`~repro.workspace.Workspace.add_job`) and call
        :meth:`~repro.workspace.Workspace.compile_all`.  ``compile_batch``
        now does exactly that through a throwaway workspace, so results stay
        byte-identical; only the entry point is deprecated.

    Parameters: see :func:`run_jobs` (``cache`` / ``executor`` /
    ``max_workers`` pass straight through).
    """

    cache: Optional[CompilationCache] = None
    executor: str = "thread"
    max_workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}, got {self.executor!r}")
        warnings.warn(
            "BatchCompiler is deprecated; use repro.workspace.Workspace "
            "(ws.add_design(...) / ws.add_job(...), then ws.compile_all(...))",
            DeprecationWarning,
            stacklevel=2,
        )

    def compile_batch(self, jobs: Sequence[CompileJob]) -> BatchResult:
        """Compile every job; failures are recorded per job, never raised."""
        from repro.workspace import Workspace

        jobs = list(jobs)
        names = [job.name for job in jobs]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate job name(s) in batch: {', '.join(dupes)}")
        workspace = Workspace(cache=self.cache)
        for job in jobs:
            workspace.add_job(job)
        report = workspace.compile_all(executor=self.executor, jobs=self.max_workers)
        assert report.batch is not None
        return report.batch
