"""The remote L2 cache tier: wire format and the :class:`RemoteCacheClient`.

The content-addressed cache stack is three tiers deep once a remote is
configured -- in-memory LRU, local disk, then a shared **remote cache
server** (:mod:`repro.server.cachesvc`) -- so N pool workers, CI runs and
every ``--watch`` loop share one warm store, the way Bazel and sccache
fleets do.  What makes remote sharing *safe* is the fingerprint discipline
the local tiers already enforce: ``CACHE_VERSION``,
``STAGE_SCHEMA_VERSION`` and the compiler version all participate in every
key, so an entry written by an incompatible compiler simply misses instead
of deserialising stale state.

Design constraints, in order:

* **A dead or slow remote must never fail (or stall) a compile.**  Every
  public client method swallows every transport error: a failed ``get`` is
  a miss, a failed ``put`` is a dropped upload, and after any socket error
  the client marks the endpoint *down* for ``retry_interval`` seconds and
  answers misses locally without touching the network.
* **Misses never pay upload latency.**  ``put`` only enqueues: a single
  daemon thread drains a bounded write-behind queue in the background.  A
  full queue drops the oldest upload (counted) rather than blocking a
  compile.
* **Observability.**  The client counts gets / hits / misses / skips /
  puts / drops / corrupt payloads / transport errors and bytes both ways;
  :meth:`RemoteCacheClient.stats_snapshot` surfaces them through
  ``CompilationCache.stats_snapshot()`` -> ``Workspace.stats()`` -> the
  service ``stats`` endpoint.

Wire format (shared with the server, both stdlib-only): length-prefixed
binary frames over one TCP connection, ``!I`` big-endian payload length
then the payload.  Request payloads are one opcode byte plus operands::

    b"G" + key                          -> b"H" + blob | b"M" | b"E" + msg
    b"P" + !H keylen + key + blob       -> b"O"        | b"E" + msg
    b"S"                                -> b"S" + JSON stats | b"E" + msg

Keys are namespaced fingerprints (``result:<sha256>``, ``ast:<sha256>``,
``eval:<sha256>``, ``backend:<sha256>``) so the four artefact kinds can
never be confused; payloads are the same pickle bytes the disk tier
stores.  The client never interprets payloads -- corruption is detected by
the cache layer's unpickle guard, which reports it back through
:meth:`RemoteCacheClient.note_corrupt`.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
import time
from collections import deque
from typing import Optional

#: Frame header: one unsigned 32-bit big-endian payload length.
FRAME_HEADER = struct.Struct("!I")

#: Key-length prefix inside a PUT payload.
KEY_HEADER = struct.Struct("!H")

#: Bound on one cached blob (an evaluate snapshot of a large design is
#: ~100s of KiB; anything near this bound is misconfiguration or attack).
MAX_ENTRY_BYTES = 64 * 1024 * 1024

#: Bound on one frame: an entry plus its key and opcode, with headroom.
MAX_FRAME_BYTES = MAX_ENTRY_BYTES + 64 * 1024

#: Default TCP port of the cache server (the compile daemon's 4780 + 1).
DEFAULT_CACHE_PORT = 4781

OP_GET = b"G"
OP_PUT = b"P"
OP_STATS = b"S"
RESP_HIT = b"H"
RESP_MISS = b"M"
RESP_OK = b"O"
RESP_STATS = b"S"
RESP_ERROR = b"E"


def send_frame(sock: socket.socket, payload: bytes) -> None:
    """Write one length-prefixed frame (raises ``OSError``/``ValueError``)."""
    if len(payload) > MAX_FRAME_BYTES:
        raise ValueError(f"frame of {len(payload)} bytes exceeds the cache bound")
    sock.sendall(FRAME_HEADER.pack(len(payload)) + payload)


def recv_frame(sock: socket.socket) -> Optional[bytes]:
    """Read one frame; ``None`` on clean EOF before any header byte."""
    header = _recv_exactly(sock, FRAME_HEADER.size)
    if header is None:
        return None
    (length,) = FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ValueError(f"frame header claims {length} bytes (corrupt stream?)")
    payload = _recv_exactly(sock, length)
    if payload is None:
        raise ConnectionError("peer closed mid-frame")
    return payload


def _recv_exactly(sock: socket.socket, length: int) -> Optional[bytes]:
    chunks: list[bytes] = []
    remaining = length
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            return None if not chunks else _raise_truncated()
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _raise_truncated() -> bytes:
    raise ConnectionError("peer closed mid-frame")


def pack_put(key: str, payload: bytes) -> bytes:
    key_bytes = key.encode()
    return OP_PUT + KEY_HEADER.pack(len(key_bytes)) + key_bytes + payload


def unpack_put(payload: bytes) -> tuple[str, bytes]:
    (key_len,) = KEY_HEADER.unpack_from(payload, 1)
    start = 1 + KEY_HEADER.size
    key = payload[start : start + key_len].decode()
    return key, payload[start + key_len :]


def parse_endpoint(url: str, *, default_port: int = DEFAULT_CACHE_PORT) -> tuple[str, int]:
    """``host``, ``host:port`` or ``tcp://host:port`` -> ``(host, port)``."""
    text = url.strip()
    if text.startswith("tcp://"):
        text = text[len("tcp://") :]
    text = text.rstrip("/")
    if not text:
        raise ValueError(f"empty cache endpoint {url!r}")
    host, _, port_text = text.rpartition(":")
    if not host:
        return text, default_port
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"invalid cache endpoint {url!r} (want host[:port])") from None
    if not 0 < port < 65536:
        raise ValueError(f"cache endpoint port out of range in {url!r}")
    return host, port


class RemoteCacheStats:
    """The client-side per-tier counters (mutated under the client's lock)."""

    __slots__ = (
        "gets",
        "hits",
        "misses",
        "skips",
        "puts",
        "put_drops",
        "corrupt",
        "errors",
        "bytes_in",
        "bytes_out",
    )

    def __init__(self) -> None:
        self.gets = 0  # lookups attempted (down-endpoint skips excluded)
        self.hits = 0
        self.misses = 0
        self.skips = 0  # lookups skipped because the endpoint is down
        self.puts = 0  # uploads completed by the write-behind thread
        self.put_drops = 0  # uploads dropped (queue full, endpoint down, too big)
        self.corrupt = 0  # remote blobs that failed to unpickle (also errors)
        self.errors = 0  # transport failures + corrupt payloads
        self.bytes_in = 0
        self.bytes_out = 0

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class RemoteCacheClient:
    """A shared-nothing TCP client for the remote cache tier.

    One socket, strictly request/response, guarded by one I/O lock -- the
    cache layers call ``get`` from many compile threads, and serialising
    on one connection keeps the protocol trivial (the server is the fan-in
    point, not the client).  Uploads ride a bounded write-behind queue
    drained by a daemon thread, so the compile path never blocks on the
    network after a miss.

    Every public method is safe to call with the server dead, slow, or
    mid-restart: errors are counted, the endpoint is marked down for
    ``retry_interval`` seconds, and the caller sees only misses.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        connect_timeout: float = 1.0,
        op_timeout: float = 2.0,
        retry_interval: float = 5.0,
        max_pending: int = 256,
        max_entry_bytes: int = MAX_ENTRY_BYTES,
    ) -> None:
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.op_timeout = op_timeout
        self.retry_interval = retry_interval
        self.max_entry_bytes = max_entry_bytes
        self.stats = RemoteCacheStats()
        self._sock: Optional[socket.socket] = None
        self._io_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._down_until = 0.0
        self._closed = False
        #: Write-behind state: pending uploads plus an in-flight count, so
        #: flush() can wait for "queue empty AND nothing mid-upload".
        self._queue: deque[tuple[str, bytes]] = deque()
        self._max_pending = max_pending
        self._pending_cv = threading.Condition()
        self._in_flight = 0
        self._writer = threading.Thread(
            target=self._writer_loop, name="tydi-cache-writer", daemon=True
        )
        self._writer.start()

    @classmethod
    def from_url(cls, url: str, **kwargs) -> "RemoteCacheClient":
        host, port = parse_endpoint(url)
        return cls(host, port, **kwargs)

    @property
    def endpoint(self) -> str:
        return f"{self.host}:{self.port}"

    # -- the cache surface -----------------------------------------------------

    def get(self, key: str) -> Optional[bytes]:
        """The blob stored under ``key``, or ``None`` (miss, down, error)."""
        if self._closed or self._is_down():
            with self._stats_lock:
                self.stats.skips += 1
            return None
        with self._stats_lock:
            self.stats.gets += 1
        reply = self._request(OP_GET + key.encode())
        if reply is None:
            return None
        if reply[:1] == RESP_HIT:
            blob = reply[1:]
            with self._stats_lock:
                self.stats.hits += 1
                self.stats.bytes_in += len(blob)
            return blob
        with self._stats_lock:
            if reply[:1] != RESP_MISS:
                self.stats.errors += 1
            self.stats.misses += 1
        return None

    def put(self, key: str, payload: bytes) -> None:
        """Enqueue one upload (write-behind; never blocks on the network)."""
        if self._closed or len(payload) > self.max_entry_bytes or self._is_down():
            with self._stats_lock:
                self.stats.put_drops += 1
            return
        with self._pending_cv:
            if len(self._queue) >= self._max_pending:
                self._queue.popleft()  # shed oldest: fresh artefacts win
                with self._stats_lock:
                    self.stats.put_drops += 1
            self._queue.append((key, payload))
            self._pending_cv.notify_all()

    def note_corrupt(self, key: str) -> None:
        """Record that a blob served for ``key`` failed to deserialise.

        Called by the cache layer (which owns unpickling); the corrupt
        entry was already counted as a hit, so this re-classifies it as an
        error for the operator -- a fleet whose ``corrupt`` counter moves
        has a schema-version or bitrot problem.
        """
        with self._stats_lock:
            self.stats.corrupt += 1
            self.stats.errors += 1

    def remote_stats(self, timeout: Optional[float] = None) -> Optional[dict]:
        """The *server's* stats document, or ``None`` if unreachable."""
        if self._closed or self._is_down():
            return None
        reply = self._request(OP_STATS, timeout=timeout)
        if reply is None or reply[:1] != RESP_STATS:
            return None
        try:
            return json.loads(reply[1:].decode())
        except ValueError:
            return None

    def stats_snapshot(self) -> dict[str, object]:
        """A consistent copy of the client counters plus endpoint health."""
        with self._stats_lock:
            snapshot: dict[str, object] = self.stats.as_dict()
        with self._pending_cv:
            snapshot["pending_puts"] = len(self._queue) + self._in_flight
        snapshot["endpoint"] = self.endpoint
        snapshot["down"] = self._is_down()
        return snapshot

    # -- lifecycle -------------------------------------------------------------

    def flush(self, timeout: float = 10.0) -> bool:
        """Wait until the write-behind queue has drained (tests/benchmarks).

        Returns ``False`` on timeout or when pending uploads were dropped
        because the endpoint went down mid-drain.
        """
        deadline = time.monotonic() + timeout
        with self._pending_cv:
            while self._queue or self._in_flight:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._pending_cv.wait(remaining)
        return True

    def close(self) -> None:
        """Stop the writer thread and close the socket (idempotent).

        Pending uploads are dropped -- close is for teardown, call
        :meth:`flush` first when they matter.
        """
        if self._closed:
            return
        self._closed = True
        with self._pending_cv:
            self._queue.clear()
            self._pending_cv.notify_all()
        self._writer.join(timeout=5.0)
        with self._io_lock:
            self._close_socket_locked()

    def __enter__(self) -> "RemoteCacheClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- transport internals ---------------------------------------------------

    def _is_down(self) -> bool:
        return time.monotonic() < self._down_until

    def _note_failure(self) -> None:
        """One transport error: count it, drop the socket, back off."""
        with self._stats_lock:
            self.stats.errors += 1
        self._down_until = time.monotonic() + self.retry_interval

    def _close_socket_locked(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _connected_socket_locked(self, timeout: Optional[float]) -> socket.socket:
        if self._sock is None:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
        self._sock.settimeout(timeout if timeout is not None else self.op_timeout)
        return self._sock

    def _request(
        self, payload: bytes, *, timeout: Optional[float] = None
    ) -> Optional[bytes]:
        """One framed round trip; ``None`` and a backoff on any error."""
        with self._io_lock:
            try:
                sock = self._connected_socket_locked(timeout)
                send_frame(sock, payload)
                reply = recv_frame(sock)
                if reply is None:
                    raise ConnectionError("cache server closed the connection")
                return reply
            except (OSError, ValueError, ConnectionError):
                self._close_socket_locked()
                self._note_failure()
                return None

    # -- the write-behind thread -----------------------------------------------

    def _writer_loop(self) -> None:
        while True:
            with self._pending_cv:
                while not self._queue and not self._closed:
                    self._pending_cv.wait()
                if self._closed:
                    self._pending_cv.notify_all()
                    return
                key, payload = self._queue.popleft()
                self._in_flight += 1
            try:
                if self._is_down():
                    with self._stats_lock:
                        self.stats.put_drops += 1
                    continue
                reply = self._request(pack_put(key, payload))
                with self._stats_lock:
                    if reply is not None and reply[:1] == RESP_OK:
                        self.stats.puts += 1
                        self.stats.bytes_out += len(payload)
                    else:
                        if reply is not None:
                            # Transport was fine; the server refused the
                            # entry (too big, shedding) -- count the drop.
                            self.stats.errors += 1
                        self.stats.put_drops += 1
            finally:
                with self._pending_cv:
                    self._in_flight -= 1
                    self._pending_cv.notify_all()
