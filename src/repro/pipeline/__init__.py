"""Batch compilation pipeline: caching, concurrent fan-out, incrementality.

The frontend of Figure 3 (:func:`repro.lang.compile.compile_sources`) is a
pure function of its source texts and options.  This package exploits that:

* :mod:`repro.pipeline.cache` -- a content-addressed store of compilation
  results (in-memory LRU plus an optional on-disk tier under
  ``.tydi-cache/``), keyed by :func:`~repro.pipeline.cache.
  fingerprint_sources`, with size-aware disk eviction (``max_disk_bytes``).
* :mod:`repro.pipeline.stages` -- :class:`~repro.pipeline.stages.
  StageCache`, per-stage sub-caching (per-file parse ASTs + post-evaluate
  snapshots) so a one-file edit of an N-file design re-parses only that
  file and re-runs only evaluate -> sugar -> DRC.
* :mod:`repro.pipeline.remote` -- :class:`~repro.pipeline.remote.
  RemoteCacheClient`, the shared remote L2 tier both caches consult after
  their local misses (lookup order memory -> disk -> remote, write-behind
  uploads, graceful degradation when the remote dies); the server side is
  :mod:`repro.server.cachesvc`.
* :mod:`repro.pipeline.batch` -- :func:`~repro.pipeline.batch.run_jobs`,
  the concurrent job engine (serial / thread / process executors with
  per-design error isolation) that :meth:`repro.workspace.Workspace.
  compile_all` drives, plus the deprecated :class:`~repro.pipeline.batch.
  BatchCompiler` facade.
* :mod:`repro.pipeline.incremental` -- the deprecated
  :class:`~repro.pipeline.incremental.IncrementalCompiler` facade; new
  code holds a :class:`repro.workspace.Workspace` and mutates it at file
  granularity instead.

See ``docs/pipeline.md`` for the architecture and cache layout, and
``docs/workspace.md`` for the session API on top.
"""

from repro.pipeline.batch import (
    BatchCompilationError,
    BatchCompiler,
    BatchResult,
    CompileJob,
    JobResult,
    run_jobs,
)
from repro.pipeline.cache import (
    CacheStats,
    CompilationCache,
    DEFAULT_CACHE_DIR,
    STAGE_SCHEMA_VERSION,
    fingerprint_sources,
    normalize_sources,
)
from repro.pipeline.incremental import IncrementalCompiler, IncrementalReport
from repro.pipeline.remote import DEFAULT_CACHE_PORT, RemoteCacheClient, parse_endpoint
from repro.pipeline.stages import StageCache, StageStats, file_fingerprint

__all__ = [
    "BatchCompilationError",
    "BatchCompiler",
    "BatchResult",
    "CacheStats",
    "CompilationCache",
    "CompileJob",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_CACHE_PORT",
    "IncrementalCompiler",
    "IncrementalReport",
    "JobResult",
    "RemoteCacheClient",
    "STAGE_SCHEMA_VERSION",
    "StageCache",
    "StageStats",
    "file_fingerprint",
    "fingerprint_sources",
    "normalize_sources",
    "parse_endpoint",
    "run_jobs",
]
