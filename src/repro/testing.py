"""Randomized design builders for differential testing and benchmarks.

:func:`build_random_design` generates always-valid multi-file Tydi-lang
designs; :func:`mutate_design` applies validity-preserving single-file
edits.  Together they are the substrate of the staged-vs-monolithic
differential harness (``tests/test_stage_differential.py``) and of the
one-file-edit throughput benchmark
(``benchmarks/test_pipeline_throughput.py``): both need the same notion of
"an N-file design with a one-file edit", so it lives in the package where
either suite can import it.

The generated shape is a processing *chain*: one source file per step
(an external streamlet implementation consuming the previous step's link
type), plus a top file wiring the chain together.  Randomness covers file
count, bit widths, stream depths, spare (never-connected) ports -- voider
insertion -- and an optional duplicated tap -- duplicator insertion -- so
sugaring and the DRC see different work per seed.
"""

from __future__ import annotations

import random


def _chain_file(index: int, width: int, depth: int, unused: bool) -> str:
    """One source file declaring a processing step of the design's chain.

    Step ``k`` consumes the previous step's link type and produces its own
    ``link{k}_t`` (so chained connections always type-check), plus an
    optional never-connected ``spare`` output for sugaring to void.
    """
    in_type = f"link{index - 1}_t" if index > 0 else f"link{index}_t"
    spare = f" spare: link{index}_t out," if unused else ""
    return (
        f"type link{index}_t = Stream(Bit({width}), d={depth});\n"
        f"streamlet step{index}_s {{ i: {in_type} in, o: link{index}_t out,{spare} }}\n"
        f"external impl step{index}_i of step{index}_s;\n"
    )


def _top_file(num_steps: int, tap_step: int | None) -> str:
    """The design's top: instantiate every step and wire a straight chain.

    ``feed`` drives the first step, step ``k`` feeds step ``k+1``, and the
    last step drives ``result``.  When ``tap_step`` is set, that step's
    output additionally drives a ``tap`` port -- two sinks on one source,
    exercising duplicator insertion.
    """
    last = num_steps - 1
    ports = ["feed: link0_t in", f"result: link{last}_t out"]
    if tap_step is not None:
        ports.append(f"tap: link{tap_step}_t out")
    lines = ["streamlet chain_s { " + ", ".join(ports) + ", }"]
    lines.append("impl chain_i of chain_s {")
    for index in range(num_steps):
        lines.append(f"    instance u{index}(step{index}_i),")
    lines.append("    feed => u0.i,")
    for index in range(num_steps - 1):
        lines.append(f"    u{index}.o => u{index + 1}.i,")
    lines.append(f"    u{last}.o => result,")
    if tap_step is not None:
        lines.append(f"    u{tap_step}.o => tap,")
    lines.append("}")
    lines.append("top chain_i;")
    return "\n".join(lines) + "\n"


def build_random_design(
    rng: random.Random,
    *,
    min_files: int = 2,
    max_files: int = 6,
) -> list[tuple[str, str]]:
    """A randomized, always-valid multi-file design as (text, filename) pairs."""
    num_steps = rng.randint(max(1, min_files - 1), max_files - 1)
    sources: list[tuple[str, str]] = []
    for index in range(num_steps):
        width = rng.choice([4, 8, 12, 16, 24, 32])
        depth = rng.randint(1, 2)
        unused = rng.random() < 0.5
        sources.append((_chain_file(index, width, depth, unused), f"step{index}.td"))
    tap_step = rng.randrange(num_steps) if rng.random() < 0.6 else None
    sources.append((_top_file(num_steps, tap_step), "chain_top.td"))
    return sources


def build_chain_design(num_steps: int) -> list[tuple[str, str]]:
    """A deterministic N+1-file chain design (for benchmarks: fixed shape)."""
    sources = [
        (_chain_file(index, width=8 + 4 * (index % 4), depth=1, unused=index % 2 == 0), f"step{index}.td")
        for index in range(num_steps)
    ]
    sources.append((_top_file(num_steps, tap_step=num_steps // 2), "chain_top.td"))
    return sources


def mutate_design(
    rng: random.Random,
    sources: list[tuple[str, str]],
) -> tuple[list[tuple[str, str]], int]:
    """Apply a random validity-preserving edit to one randomly chosen file.

    Returns the edited source list and the index of the edited file.  Edits
    cover the interesting cache cases: a semantic change (bit width), a
    fingerprint-only change (appended comment), and a new declaration
    (an unused constant).
    """
    index = rng.randrange(len(sources))
    text, filename = sources[index]
    kind = rng.choice(["width", "comment", "const"])
    if kind == "width" and "Bit(" not in text:
        kind = "comment"  # the top file declares no Bit types
    if kind == "width":
        start = text.index("Bit(") + len("Bit(")
        end = text.index(")", start)
        old_width = int(text[start:end])
        new_width = old_width + rng.choice([1, 2, 8])
        text = text[:start] + str(new_width) + text[end:]
    elif kind == "const":
        text += f"const tweak_{rng.randrange(10_000)} = {rng.randrange(1, 100)};\n"
    else:
        text += f"// edit {rng.randrange(10_000)}\n"
    edited = list(sources)
    edited[index] = (text, filename)
    return edited, index
