"""Opt-in per-stage wall/CPU timers for the frontend pipeline.

Profiling the cold path (parse -> evaluate -> sugar -> DRC -> backends)
guided every frontend optimisation in this repo, so the instrumentation is
kept as a first-class, always-available (but default-off) facility instead
of ad-hoc ``cProfile`` runs:

* the stage functions in :mod:`repro.lang.compile` wrap their bodies in
  :meth:`StageProfiler.stage`, which is a no-op unless profiling is on;
* enabling is opt-in via the ``TYDI_PROFILE_STAGES`` environment variable
  (read once at import, so forked pool workers inherit it) or the
  ``--profile-stages`` flag of ``tydi-compile`` / ``tydi-serve serve``;
* the numbers ride the existing stats plumbing:
  :meth:`repro.workspace.Workspace.stats` includes a ``"profiling"`` block
  when enabled, which the compile service's ``stats`` endpoint (and the
  worker pool's per-worker aggregation) forwards unchanged.

Timers record both wall time (``perf_counter``) and CPU time
(``process_time``) so a stage that blocks on I/O (disk cache, remote L2)
is distinguishable from one that burns cycles.

Overhead when disabled is one attribute check per stage call; when enabled,
two clock reads per stage plus a dict update under a lock -- negligible
against stage costs, so it is safe to leave on in a long-lived daemon.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager

#: Environment switch: any value other than ``"" / "0" / "false" / "no"``
#: (case-insensitive) enables the global profiler at import time.
ENV_VAR = "TYDI_PROFILE_STAGES"


def _env_enabled(value: str | None) -> bool:
    if value is None:
        return False
    return value.strip().lower() not in ("", "0", "false", "no", "off")


class StageProfiler:
    """Accumulates per-stage wall/CPU timings; thread-safe, default-off."""

    def __init__(self, enabled: bool = False) -> None:
        self._enabled = enabled
        self._lock = threading.Lock()
        #: stage name -> [count, wall_seconds, cpu_seconds]
        self._stages: dict[str, list[float]] = {}

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def reset(self) -> None:
        """Drop every accumulated timing (the enabled flag is untouched)."""
        with self._lock:
            self._stages.clear()

    def record(self, name: str, wall_seconds: float, cpu_seconds: float) -> None:
        """Fold one timed run of ``name`` into the accumulators."""
        with self._lock:
            entry = self._stages.get(name)
            if entry is None:
                self._stages[name] = [1, wall_seconds, cpu_seconds]
            else:
                entry[0] += 1
                entry[1] += wall_seconds
                entry[2] += cpu_seconds

    @contextmanager
    def stage(self, name: str):
        """Time one stage run; a no-op context manager while disabled.

        Exceptions propagate unchanged; a failing stage still records the
        time it spent before raising (a slow *failing* DRC is exactly the
        kind of regression the timers exist to surface).
        """
        if not self._enabled:
            yield
            return
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        try:
            yield
        finally:
            self.record(name, time.perf_counter() - wall0, time.process_time() - cpu0)

    def snapshot(self) -> dict[str, object]:
        """JSON-ready copy: per-stage counts and millisecond totals."""
        with self._lock:
            stages = {
                name: {
                    "count": int(entry[0]),
                    "wall_ms": round(entry[1] * 1000, 3),
                    "cpu_ms": round(entry[2] * 1000, 3),
                }
                for name, entry in sorted(self._stages.items())
            }
        return {"enabled": self._enabled, "stages": stages}


#: The process-wide profiler every stage function reports to.
PROFILER = StageProfiler(enabled=_env_enabled(os.environ.get(ENV_VAR)))


def enable_profiling() -> None:
    """Turn the global profiler on (same effect as ``TYDI_PROFILE_STAGES=1``)."""
    PROFILER.enable()


def disable_profiling() -> None:
    PROFILER.disable()


def profiling_enabled() -> bool:
    return PROFILER.enabled


def profile_snapshot() -> dict[str, object]:
    """The global profiler's :meth:`StageProfiler.snapshot`."""
    return PROFILER.snapshot()


def format_profile(snapshot: dict[str, object] | None = None) -> str:
    """Render a snapshot as an aligned text table (CLI ``--profile-stages``)."""
    if snapshot is None:
        snapshot = profile_snapshot()
    stages = snapshot.get("stages") or {}
    if not stages:
        return "no stage timings recorded"
    width = max(len(name) for name in stages)
    lines = [f"{'stage':<{width}}  {'runs':>5}  {'wall ms':>10}  {'cpu ms':>10}"]
    for name, entry in stages.items():
        lines.append(
            f"{name:<{width}}  {entry['count']:>5}  "
            f"{entry['wall_ms']:>10.3f}  {entry['cpu_ms']:>10.3f}"
        )
    return "\n".join(lines)
