"""Evaluation and expansion: from parsed Tydi-lang to a flat Tydi-IR design.

This module implements the "code expansion & evaluation" stage of Figure 3 in
the paper.  Its responsibilities are:

* resolving (immutable) constants and named logical types,
* evaluating type expressions to :class:`repro.spec.LogicalType` objects,
* instantiating streamlet and implementation *templates* for each distinct
  set of template arguments (name mangling keeps instances distinct),
* unrolling the generative ``for`` / ``if`` syntax into plain instances and
  connections, and checking ``assert`` statements,
* expanding port arrays and instance arrays into individually named ports
  and instances.

The result is an :class:`repro.ir.Project` whose implementations contain only
concrete instances and connections -- exactly what Tydi-IR can express.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import (
    DiagnosticSink,
    TydiAssertionError,
    TydiEvaluationError,
    TydiNameError,
    TydiTypeError,
)
from repro.ir.model import (
    ClockDomain,
    Connection,
    Implementation,
    Instance,
    Port,
    PortDirection,
    PortRef,
    Project,
    Streamlet,
)
from repro.lang import ast
from repro.lang.expr import evaluate_expr
from repro.lang.values import (
    PARAM_KIND_CHECKS,
    ClockDomainValue,
    ImplValue,
    Scope,
    StreamletValue,
    TypeValue,
    describe_value,
)
from repro.spec.logical_types import Bit, Group, LogicalType, Null, Stream, Union
from repro.utils.names import mangle


@dataclass
class Program:
    """All declarations of a compilation, indexed by name."""

    constants: dict[str, ast.ConstDecl] = field(default_factory=dict)
    types: dict[str, ast.Declaration] = field(default_factory=dict)
    streamlets: dict[str, ast.StreamletDecl] = field(default_factory=dict)
    implementations: dict[str, ast.ImplDecl] = field(default_factory=dict)
    tops: list[ast.TopDecl] = field(default_factory=list)
    packages: list[str] = field(default_factory=list)

    @classmethod
    def from_units(cls, units: list[ast.SourceUnit]) -> "Program":
        program = cls()
        for unit in units:
            program.packages.append(unit.package)
            for decl in unit.declarations:
                program._add(decl)
        return program

    def _add(self, decl: ast.Declaration) -> None:
        if isinstance(decl, (ast.PackageDecl, ast.UseDecl)):
            return
        if isinstance(decl, ast.ConstDecl):
            self._check_duplicate(decl.name, decl)
            self.constants[decl.name] = decl
        elif isinstance(decl, (ast.TypeAliasDecl, ast.GroupDecl, ast.UnionDecl)):
            self._check_duplicate(decl.name, decl)
            self.types[decl.name] = decl
        elif isinstance(decl, ast.StreamletDecl):
            self._check_duplicate(decl.name, decl)
            self.streamlets[decl.name] = decl
        elif isinstance(decl, ast.ImplDecl):
            self._check_duplicate(decl.name, decl)
            self.implementations[decl.name] = decl
        elif isinstance(decl, ast.TopDecl):
            self.tops.append(decl)
        else:
            raise TydiEvaluationError(
                f"unsupported top-level declaration {type(decl).__name__}", decl.span
            )

    def _check_duplicate(self, name: str, decl: ast.Declaration) -> None:
        for table in (self.constants, self.types, self.streamlets, self.implementations):
            if name in table:
                raise TydiEvaluationError(f"duplicate declaration of {name!r}", decl.span)


class Evaluator:
    """Evaluates a :class:`Program` into an :class:`repro.ir.Project`."""

    def __init__(
        self,
        program: Program,
        diagnostics: Optional[DiagnosticSink] = None,
        project_name: str = "design",
    ) -> None:
        self.program = program
        self.diagnostics = diagnostics if diagnostics is not None else DiagnosticSink()
        self.project = Project(name=project_name)
        self.global_scope = Scope(name="<global>")
        self._type_cache: dict[str, LogicalType] = {}
        self._types_in_progress: set[str] = set()
        self._streamlet_cache: dict[str, Streamlet] = {}
        self._impl_cache: dict[str, Implementation] = {}
        self._impl_in_progress: set[str] = set()

    # -- constants and named types --------------------------------------------

    def resolve_constants(self) -> None:
        """Evaluate all global ``const`` declarations (forward references ok)."""
        pending = dict(self.program.constants)
        while pending:
            progressed = False
            errors: dict[str, Exception] = {}
            for name, decl in list(pending.items()):
                try:
                    value = evaluate_expr(decl.value, self.global_scope)
                except TydiNameError as exc:
                    errors[name] = exc
                    continue
                self.global_scope.define(name, value, kind="const", span=decl.span)
                del pending[name]
                progressed = True
            if not progressed:
                name, error = next(iter(errors.items()))
                raise TydiEvaluationError(
                    f"cannot resolve constant {name!r}: {error.message}",
                    self.program.constants[name].span,
                )

    def resolve_named_type(self, name: str, span: object | None = None) -> LogicalType:
        """Resolve a globally declared type by name (memoized, cycle-checked)."""
        if name in self._type_cache:
            return self._type_cache[name]
        decl = self.program.types.get(name)
        if decl is None:
            raise TydiNameError(f"undefined type {name!r}", span)
        if name in self._types_in_progress:
            raise TydiTypeError(f"cyclic type definition involving {name!r}", span)
        self._types_in_progress.add(name)
        try:
            if isinstance(decl, ast.TypeAliasDecl):
                logical = self.evaluate_type_expr(decl.type_expr, self.global_scope)
            elif isinstance(decl, ast.GroupDecl):
                fields = tuple(
                    (field_name, self.evaluate_type_expr(t, self.global_scope))
                    for field_name, t in decl.fields
                )
                logical = Group(fields=fields, name=decl.name)
            elif isinstance(decl, ast.UnionDecl):
                variants = tuple(
                    (variant_name, self.evaluate_type_expr(t, self.global_scope))
                    for variant_name, t in decl.variants
                )
                logical = Union(variants=variants, name=decl.name)
            else:  # pragma: no cover - Program only stores the three kinds
                raise TydiTypeError(f"{name!r} is not a type declaration", span)
        finally:
            self._types_in_progress.discard(name)
        self._type_cache[name] = logical
        return logical

    def evaluate_type_expr(self, type_expr: ast.TypeExpr, scope: Scope) -> LogicalType:
        """Evaluate a type expression in ``scope`` to a logical type."""
        if isinstance(type_expr, ast.NullTypeExpr):
            return Null()
        if isinstance(type_expr, ast.BitTypeExpr):
            width = evaluate_expr(type_expr.width, scope)
            if isinstance(width, bool) or not isinstance(width, int):
                raise TydiTypeError(
                    f"Bit width must evaluate to an integer, got {describe_value(width)}",
                    type_expr.span,
                )
            return Bit(width)
        if isinstance(type_expr, ast.NamedTypeExpr):
            binding = scope.find(type_expr.name)
            if binding is not None:
                value = binding.value
                if isinstance(value, TypeValue):
                    return value.logical_type
                raise TydiTypeError(
                    f"{type_expr.name!r} is a {describe_value(value)}, not a type", type_expr.span
                )
            return self.resolve_named_type(type_expr.name, type_expr.span)
        if isinstance(type_expr, ast.StreamTypeExpr):
            element = self.evaluate_type_expr(type_expr.element, scope)
            kwargs: dict[str, object] = {}
            for key, value_expr in type_expr.arguments:
                value = evaluate_expr(value_expr, scope)
                key_lower = key.lower()
                if key_lower in ("d", "dimension"):
                    kwargs["dimension"] = value
                elif key_lower in ("t", "throughput"):
                    kwargs["throughput"] = value
                elif key_lower in ("c", "complexity"):
                    kwargs["complexity"] = value
                elif key_lower in ("dir", "direction"):
                    kwargs["direction"] = str(value)
                elif key_lower in ("sync", "synchronicity"):
                    kwargs["synchronicity"] = str(value)
                elif key_lower == "keep":
                    kwargs["keep"] = bool(value)
                else:
                    raise TydiTypeError(f"unknown Stream argument {key!r}", type_expr.span)
            try:
                return Stream.new(element, **kwargs)  # type: ignore[arg-type]
            except (TydiTypeError, ValueError) as exc:
                raise TydiTypeError(f"invalid Stream type: {exc}", type_expr.span) from exc
        raise TydiTypeError(
            f"cannot evaluate type expression {type(type_expr).__name__}", type_expr.span
        )

    # -- template arguments ----------------------------------------------------

    def evaluate_template_arg(self, arg: ast.TemplateArg, scope: Scope) -> object:
        if isinstance(arg, ast.TypeArg):
            return TypeValue(self.evaluate_type_expr(arg.type_expr, scope))
        if isinstance(arg, ast.ImplArg):
            binding = scope.find(arg.name)
            if binding is not None and isinstance(binding.value, ImplValue):
                base = binding.value
            else:
                decl = self.program.implementations.get(arg.name)
                if decl is None:
                    raise TydiNameError(f"undefined implementation {arg.name!r}", arg.span)
                base = ImplValue(name=arg.name, declaration=decl)
            if arg.arguments:
                bound = tuple(self.evaluate_template_arg(a, scope) for a in arg.arguments)
                return ImplValue(
                    name=base.name, declaration=base.declaration, bound_arguments=bound
                )
            return base
        if isinstance(arg, ast.ExprArg):
            # An identifier naming a type or impl may also appear without the
            # `type` / `impl` keyword; resolve it helpfully.
            if isinstance(arg.expr, ast.Identifier):
                name = arg.expr.name
                binding = scope.find(name)
                if binding is not None and isinstance(binding.value, (TypeValue, ImplValue)):
                    return binding.value
                if binding is None:
                    if name in self.program.types:
                        return TypeValue(self.resolve_named_type(name, arg.span))
                    if name in self.program.implementations:
                        return ImplValue(
                            name=name, declaration=self.program.implementations[name]
                        )
            return evaluate_expr(arg.expr, scope)
        raise TydiEvaluationError(f"unsupported template argument {type(arg).__name__}", arg.span)

    def _check_param_kinds(
        self,
        params: tuple[ast.TemplateParam, ...],
        args: tuple[object, ...],
        what: str,
        span: object,
    ) -> None:
        if len(params) != len(args):
            raise TydiEvaluationError(
                f"{what} expects {len(params)} template argument(s), got {len(args)}", span
            )
        for param, value in zip(params, args):
            check = PARAM_KIND_CHECKS.get(param.kind)
            if check is None:
                raise TydiEvaluationError(f"unknown parameter kind {param.kind!r}", span)
            if not check(value):
                raise TydiTypeError(
                    f"template argument {param.name!r} of {what} must be a {param.kind}, "
                    f"got {describe_value(value)}",
                    span,
                )
            if param.kind == "impl" and param.of_streamlet is not None:
                impl_value = value  # type: ignore[assignment]
                assert isinstance(impl_value, ImplValue)
                derived_from = impl_value.declaration.streamlet
                if derived_from != param.of_streamlet:
                    raise TydiTypeError(
                        f"implementation {impl_value.name!r} passed for parameter "
                        f"{param.name!r} must be derived from streamlet "
                        f"{param.of_streamlet!r}, but it is derived from {derived_from!r}",
                        span,
                    )

    def _bind_params(
        self,
        scope: Scope,
        params: tuple[ast.TemplateParam, ...],
        args: tuple[object, ...],
    ) -> None:
        for param, value in zip(params, args):
            scope.define(param.name, value, kind="param", span=param.span)

    # -- streamlet instantiation -------------------------------------------------

    def instantiate_streamlet(
        self,
        decl: ast.StreamletDecl,
        args: tuple[object, ...] = (),
        span: object | None = None,
    ) -> Streamlet:
        """Instantiate a streamlet (template), returning the concrete Streamlet."""
        self._check_param_kinds(decl.params, args, f"streamlet {decl.name!r}", span or decl.span)
        concrete_name = decl.name if not decl.params else mangle(decl.name, args)
        if concrete_name in self._streamlet_cache:
            return self._streamlet_cache[concrete_name]

        scope = self.global_scope.child(f"streamlet {concrete_name}")
        self._bind_params(scope, decl.params, args)

        streamlet = Streamlet(name=concrete_name, documentation=decl.documentation)
        for port_decl in decl.ports:
            logical = self.evaluate_type_expr(port_decl.type_expr, scope)
            direction = PortDirection.IN if port_decl.direction == "in" else PortDirection.OUT
            clock = ClockDomain(port_decl.clock_domain) if port_decl.clock_domain else ClockDomain()
            if port_decl.array_size is not None:
                count = evaluate_expr(port_decl.array_size, scope)
                if isinstance(count, bool) or not isinstance(count, int) or count < 0:
                    raise TydiEvaluationError(
                        f"port array size of {port_decl.name!r} must be a non-negative integer, "
                        f"got {describe_value(count)}",
                        port_decl.span,
                    )
                for index in range(count):
                    streamlet.add_port(
                        Port(
                            name=f"{port_decl.name}_{index}",
                            logical_type=logical,
                            direction=direction,
                            clock_domain=clock,
                        )
                    )
            else:
                streamlet.add_port(
                    Port(
                        name=port_decl.name,
                        logical_type=logical,
                        direction=direction,
                        clock_domain=clock,
                    )
                )
        self._streamlet_cache[concrete_name] = streamlet
        self.project.add_streamlet(streamlet)
        return streamlet

    # -- implementation instantiation ---------------------------------------------

    def instantiate_impl(
        self,
        decl: ast.ImplDecl,
        args: tuple[object, ...] = (),
        span: object | None = None,
    ) -> Implementation:
        """Instantiate an implementation (template), recursively expanding its body."""
        self._check_param_kinds(decl.params, args, f"impl {decl.name!r}", span or decl.span)
        concrete_name = decl.name if not decl.params else mangle(decl.name, args)
        if concrete_name in self._impl_in_progress:
            raise TydiEvaluationError(
                f"recursive instantiation of implementation {decl.name!r}", span or decl.span
            )
        if concrete_name in self._impl_cache:
            return self._impl_cache[concrete_name]
        self._impl_in_progress.add(concrete_name)
        try:
            scope = self.global_scope.child(f"impl {concrete_name}")
            self._bind_params(scope, decl.params, args)

            streamlet_decl = self.program.streamlets.get(decl.streamlet)
            if streamlet_decl is None:
                raise TydiNameError(
                    f"implementation {decl.name!r} references undefined streamlet "
                    f"{decl.streamlet!r}",
                    decl.span,
                )
            streamlet_args = tuple(
                self.evaluate_template_arg(a, scope) for a in decl.streamlet_args
            )
            streamlet = self.instantiate_streamlet(streamlet_decl, streamlet_args, decl.span)

            implementation = Implementation(
                name=concrete_name,
                streamlet=streamlet.name,
                external=decl.external,
                documentation=decl.documentation,
                simulation=decl.simulation,
                metadata={
                    "template": decl.name,
                    "streamlet_template": decl.streamlet,
                    "arguments": args,
                },
            )
            self.project.add_streamlet(streamlet)
            # Register the (possibly still-empty) implementation before
            # walking the body so that statistics and diagnostics can refer
            # to it; the body is filled in place.
            self.project.add_implementation(implementation)
            self._impl_cache[concrete_name] = implementation

            if not decl.external:
                self._expand_items(decl.body, scope, implementation, streamlet)
            elif decl.body:
                raise TydiEvaluationError(
                    f"external implementation {decl.name!r} may not contain instances or "
                    "connections",
                    decl.span,
                )
            return implementation
        finally:
            self._impl_in_progress.discard(concrete_name)

    def _instantiate_impl_by_name(
        self,
        name: str,
        args: tuple[object, ...],
        scope: Scope,
        span: object,
    ) -> Implementation:
        """Resolve an instance target: template param, or global implementation."""
        binding = scope.find(name)
        if binding is not None and isinstance(binding.value, ImplValue):
            impl_value = binding.value
            use_args = args if args else impl_value.bound_arguments
            return self.instantiate_impl(impl_value.declaration, use_args, span)
        decl = self.program.implementations.get(name)
        if decl is None:
            raise TydiNameError(f"undefined implementation {name!r}", span)
        return self.instantiate_impl(decl, args, span)

    # -- implementation body expansion -----------------------------------------------

    def _expand_items(
        self,
        items: tuple[ast.ImplItem, ...],
        scope: Scope,
        implementation: Implementation,
        streamlet: Streamlet,
        loop_suffix: str = "",
    ) -> None:
        for item in items:
            self._expand_item(item, scope, implementation, streamlet, loop_suffix)

    def _expand_item(
        self,
        item: ast.ImplItem,
        scope: Scope,
        implementation: Implementation,
        streamlet: Streamlet,
        loop_suffix: str = "",
    ) -> None:
        if isinstance(item, ast.LocalConstDecl):
            value = evaluate_expr(item.value, scope)
            scope.define(item.name, value, kind="const", span=item.span)
            return

        if isinstance(item, ast.AssertStmt):
            condition = evaluate_expr(item.condition, scope)
            if not isinstance(condition, bool):
                raise TydiTypeError(
                    f"assert() condition must be a boolean, got {describe_value(condition)}",
                    item.span,
                )
            if not condition:
                message = ""
                if item.message is not None:
                    message = f": {evaluate_expr(item.message, scope)}"
                raise TydiAssertionError(
                    f"assertion failed in implementation {implementation.name!r}{message}",
                    item.span,
                )
            return

        if isinstance(item, ast.IfStmt):
            condition = evaluate_expr(item.condition, scope)
            if not isinstance(condition, bool):
                raise TydiTypeError(
                    f"if condition must be a boolean, got {describe_value(condition)}", item.span
                )
            body = item.then_body if condition else item.else_body
            # Items expanded from an if-scope land in the surrounding scope
            # (the paper: "expanded to the external scope"), but constants
            # declared inside shadow within a child scope.
            inner = scope.child("if")
            self._expand_items(body, inner, implementation, streamlet, loop_suffix)
            return

        if isinstance(item, ast.ForStmt):
            iterable = evaluate_expr(item.iterable, scope)
            if not isinstance(iterable, (list, tuple)):
                raise TydiTypeError(
                    f"for loop iterable must be an array or range, got {describe_value(iterable)}",
                    item.span,
                )
            for value in iterable:
                inner = scope.child(f"for {item.variable}")
                inner.define(item.variable, value, kind="loop", span=item.span)
                # Instances declared inside a loop iteration get a unique name
                # suffix derived from the loop value ("comparator" declared in
                # `for i in 0->4` becomes comparator_0 .. comparator_3, which
                # is also how `comparator[i]` references resolve).
                from repro.utils.names import render_argument

                suffix = f"{loop_suffix}_{render_argument(value)}" if loop_suffix else f"_{render_argument(value)}"
                self._expand_items(item.body, inner, implementation, streamlet, suffix)
            return

        if isinstance(item, ast.InstanceDecl):
            self._expand_instance(item, scope, implementation, loop_suffix)
            return

        if isinstance(item, ast.ConnectionStmt):
            self._expand_connection(item, scope, implementation, streamlet, loop_suffix)
            return

        raise TydiEvaluationError(
            f"unsupported implementation item {type(item).__name__}", item.span
        )

    def _expand_instance(
        self,
        item: ast.InstanceDecl,
        scope: Scope,
        implementation: Implementation,
        loop_suffix: str = "",
    ) -> None:
        args = tuple(self.evaluate_template_arg(a, scope) for a in item.arguments)
        target = self._instantiate_impl_by_name(item.target, args, scope, item.span)
        item = ast.InstanceDecl(
            span=item.span,
            name=f"{item.name}{loop_suffix}",
            target=item.target,
            arguments=item.arguments,
            array_size=item.array_size,
        )
        if item.array_size is not None:
            count = evaluate_expr(item.array_size, scope)
            if isinstance(count, bool) or not isinstance(count, int) or count < 0:
                raise TydiEvaluationError(
                    f"instance array size of {item.name!r} must be a non-negative integer, "
                    f"got {describe_value(count)}",
                    item.span,
                )
            for index in range(count):
                implementation.add_instance(
                    Instance(
                        name=f"{item.name}_{index}",
                        implementation=target.name,
                        metadata={"array": item.name, "index": index},
                    )
                )
        else:
            implementation.add_instance(Instance(name=item.name, implementation=target.name))

    def _resolve_port_ref(
        self,
        ref: ast.PortRefExpr,
        scope: Scope,
        implementation: Implementation,
        streamlet: Streamlet,
        loop_suffix: str = "",
    ) -> PortRef:
        def indexed(base: str, index_expr: Optional[ast.Expr]) -> str:
            if index_expr is None:
                return base
            index = evaluate_expr(index_expr, scope)
            if isinstance(index, bool) or not isinstance(index, int):
                raise TydiEvaluationError(
                    f"index of {base!r} must be an integer, got {describe_value(index)}", ref.span
                )
            return f"{base}_{index}"

        if ref.owner is None:
            port_name = indexed(ref.port, ref.port_index)
            if not streamlet.has_port(port_name):
                raise TydiNameError(
                    f"implementation {implementation.name!r} has no port {port_name!r} "
                    f"on its streamlet {streamlet.name!r}",
                    ref.span,
                )
            return PortRef(port=port_name)

        instance_name = indexed(ref.owner, ref.owner_index)
        if not implementation.has_instance(instance_name):
            # Inside (possibly nested) for loops, a plain reference to an
            # instance declared in an enclosing iteration resolves to its
            # suffixed name; try the longest suffix first so the innermost
            # declaration wins.
            resolved = None
            if loop_suffix and ref.owner_index is None:
                parts = loop_suffix.split("_")[1:]  # leading "" from the first "_"
                for depth in range(len(parts), 0, -1):
                    candidate = instance_name + "_" + "_".join(parts[:depth])
                    if implementation.has_instance(candidate):
                        resolved = candidate
                        break
            if resolved is not None:
                instance_name = resolved
            else:
                raise TydiNameError(
                    f"implementation {implementation.name!r} has no instance {instance_name!r}",
                    ref.span,
                )
        inner_impl = self.project.implementation(
            implementation.instance(instance_name).implementation
        )
        inner_streamlet = self.project.streamlet(inner_impl.streamlet)
        port_name = indexed(ref.port, ref.port_index)
        if not inner_streamlet.has_port(port_name):
            raise TydiNameError(
                f"instance {instance_name!r} ({inner_impl.name}) has no port {port_name!r}",
                ref.span,
            )
        return PortRef(port=port_name, instance=instance_name)

    def _expand_connection(
        self,
        item: ast.ConnectionStmt,
        scope: Scope,
        implementation: Implementation,
        streamlet: Streamlet,
        loop_suffix: str = "",
    ) -> None:
        source = self._resolve_port_ref(item.source, scope, implementation, streamlet, loop_suffix)
        sink = self._resolve_port_ref(item.sink, scope, implementation, streamlet, loop_suffix)
        source_port = self.project.resolve_port(implementation, source)
        implementation.add_connection(
            Connection(
                source=source,
                sink=sink,
                logical_type=source_port.logical_type,
                structural="structural" in item.attributes,
            )
        )

    # -- driver ------------------------------------------------------------------

    def evaluate(self, top: Optional[str] = None, top_args: tuple[object, ...] = ()) -> Project:
        """Run the evaluation.

        ``top`` selects the top-level implementation; when omitted, the
        program's ``top`` declaration is used if present, otherwise every
        non-template implementation is instantiated.
        """
        self.resolve_constants()

        if top is not None:
            decl = self.program.implementations.get(top)
            if decl is None:
                raise TydiNameError(f"top implementation {top!r} is not declared")
            implementation = self.instantiate_impl(decl, top_args)
            self.project.top = implementation.name
        elif self.program.tops:
            top_decl = self.program.tops[-1]
            decl = self.program.implementations.get(top_decl.name)
            if decl is None:
                raise TydiNameError(
                    f"top implementation {top_decl.name!r} is not declared", top_decl.span
                )
            args = tuple(
                self.evaluate_template_arg(a, self.global_scope) for a in top_decl.arguments
            )
            implementation = self.instantiate_impl(decl, args, top_decl.span)
            self.project.top = implementation.name
        else:
            for decl in self.program.implementations.values():
                if not decl.is_template():
                    self.instantiate_impl(decl)

        self.project.validate()
        return self.project
