"""Tydi-lang frontend: lexer, parser, evaluator, sugaring, DRC and compile driver.

The public entry point is :func:`repro.lang.compile.compile_project`, which
runs the full frontend pipeline of Figure 3 in the paper:

    source text -> parser -> AST
        -> evaluation (variables, templates, for/if/assert expansion)
        -> sugaring (automatic duplicator/voider insertion)
        -> design rule check
        -> Tydi-IR (:class:`repro.ir.Project`)
"""

from repro.lang.compile import (
    CompilationResult,
    CompileOptions,
    compile_project,
    compile_sources,
)
from repro.lang.parser import parse_source
from repro.lang.lexer import tokenize

__all__ = [
    "CompilationResult",
    "CompileOptions",
    "compile_project",
    "compile_sources",
    "parse_source",
    "tokenize",
]
