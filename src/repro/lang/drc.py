"""Design rule check (DRC).

The paper's frontend (Figure 3) runs a DRC over the evaluated design and
produces a report.  Two rules are called out explicitly in Section III:

1. **Type equality on connections** -- the logical types of two connected
   ports must be identical (strict equality by default, structural equality
   when the connection carries the ``@structural`` attribute), because the
   type information is erased in the generated VHDL.
2. **Port usage count** -- every port must be used exactly once, because the
   stream handshake is point-to-point.

We additionally check connection *direction legality* (a connection must go
from a data source to a data sink within the implementation), protocol
complexity compatibility, clock-domain agreement, and that ports carry Stream
types (a warning otherwise, since non-stream ports have no physical mapping).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DiagnosticSink, TydiDRCError
from repro.ir.model import (
    Connection,
    Implementation,
    Port,
    PortDirection,
    PortRef,
    Project,
)
from repro.spec.compat import check_connection_compatibility
from repro.spec.logical_types import Stream


@dataclass
class DRCViolation:
    """One violated design rule."""

    rule: str
    implementation: str
    message: str
    severity: str = "error"  # "error" | "warning"

    def __str__(self) -> str:
        return f"[{self.severity}] {self.rule} in {self.implementation}: {self.message}"


@dataclass
class DRCReport:
    """Aggregated result of the design rule check."""

    violations: list[DRCViolation] = field(default_factory=list)
    connections_checked: int = 0
    ports_checked: int = 0

    @property
    def errors(self) -> list[DRCViolation]:
        return [v for v in self.violations if v.severity == "error"]

    @property
    def warnings(self) -> list[DRCViolation]:
        return [v for v in self.violations if v.severity == "warning"]

    def passed(self) -> bool:
        return not self.errors

    def summary(self) -> str:
        return (
            f"DRC checked {self.connections_checked} connection(s) and "
            f"{self.ports_checked} port endpoint(s): "
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        )

    def raise_if_failed(self) -> None:
        if not self.passed():
            details = "\n".join(str(v) for v in self.errors)
            raise TydiDRCError(f"design rule check failed:\n{details}")


def _endpoint_role(
    project: Project, implementation: Implementation, ref: PortRef
) -> tuple[str, Port]:
    """Classify a connection endpoint as a "source" or "sink" within the impl.

    Within an implementation, data is *sourced* by the implementation's own
    input ports and by instance output ports; it is *sunk* by the
    implementation's own output ports and by instance input ports.
    """
    port = project.resolve_port(implementation, ref)
    if ref.instance is None:
        role = "source" if port.direction is PortDirection.IN else "sink"
    else:
        role = "source" if port.direction is PortDirection.OUT else "sink"
    return role, port


def check_project(
    project: Project,
    diagnostics: DiagnosticSink | None = None,
    *,
    require_streams: bool = True,
) -> DRCReport:
    """Run the design rule check over every non-external implementation."""
    diagnostics = diagnostics if diagnostics is not None else DiagnosticSink()
    report = DRCReport()

    for implementation in project.implementations.values():
        if implementation.external:
            continue
        _check_implementation(project, implementation, report, require_streams)

    for violation in report.violations:
        if violation.severity == "error":
            diagnostics.error("drc", str(violation))
        else:
            diagnostics.warning("drc", str(violation))
    return report


def _check_implementation(
    project: Project,
    implementation: Implementation,
    report: DRCReport,
    require_streams: bool,
) -> None:
    streamlet = project.streamlet_of(implementation)

    # Rule 0: ports should carry Stream types (warning otherwise).
    if require_streams:
        for port in streamlet.ports:
            if not isinstance(port.logical_type, Stream) and not port.logical_type.is_null():
                report.violations.append(
                    DRCViolation(
                        rule="stream-port",
                        implementation=implementation.name,
                        message=(
                            f"port {port.name!r} has non-stream type "
                            f"{port.logical_type.to_tydi()}; it has no physical mapping"
                        ),
                        severity="warning",
                    )
                )

    # Collect all endpoints that must be used exactly once.
    source_usage: dict[str, int] = {}
    sink_usage: dict[str, int] = {}
    endpoint_ports: dict[str, Port] = {}

    def register(ref: PortRef, role: str, port: Port) -> None:
        key = str(ref)
        endpoint_ports[key] = port
        if role == "source":
            source_usage.setdefault(key, 0)
        else:
            sink_usage.setdefault(key, 0)

    for port in streamlet.ports:
        ref = PortRef(port=port.name)
        role = "source" if port.direction is PortDirection.IN else "sink"
        register(ref, role, port)
        report.ports_checked += 1
    for instance in implementation.instances:
        inner = project.streamlet_of(project.implementation(instance.implementation))
        for port in inner.ports:
            ref = PortRef(port=port.name, instance=instance.name)
            role = "source" if port.direction is PortDirection.OUT else "sink"
            register(ref, role, port)
            report.ports_checked += 1

    # Rule 1 & 2 prerequisites: walk the connections.
    for connection in implementation.connections:
        report.connections_checked += 1
        _check_connection(project, implementation, connection, report)
        source_role, _ = _endpoint_role(project, implementation, connection.source)
        sink_role, _ = _endpoint_role(project, implementation, connection.sink)
        if source_role == "source":
            source_usage[str(connection.source)] = source_usage.get(str(connection.source), 0) + 1
        if sink_role == "sink":
            sink_usage[str(connection.sink)] = sink_usage.get(str(connection.sink), 0) + 1

    # Rule 2: port usage count -- every endpoint used exactly once.
    for key, count in source_usage.items():
        if count == 0:
            report.violations.append(
                DRCViolation(
                    rule="port-usage",
                    implementation=implementation.name,
                    message=f"source endpoint {key} is never used (enable sugaring to auto-void it)",
                )
            )
        elif count > 1:
            report.violations.append(
                DRCViolation(
                    rule="port-usage",
                    implementation=implementation.name,
                    message=(
                        f"source endpoint {key} drives {count} sinks "
                        "(enable sugaring to auto-insert a duplicator)"
                    ),
                )
            )
    for key, count in sink_usage.items():
        if count == 0:
            report.violations.append(
                DRCViolation(
                    rule="port-usage",
                    implementation=implementation.name,
                    message=f"sink endpoint {key} is never driven",
                )
            )
        elif count > 1:
            report.violations.append(
                DRCViolation(
                    rule="port-usage",
                    implementation=implementation.name,
                    message=f"sink endpoint {key} is driven {count} times",
                )
            )


def _check_connection(
    project: Project,
    implementation: Implementation,
    connection: Connection,
    report: DRCReport,
) -> None:
    source_role, source_port = _endpoint_role(project, implementation, connection.source)
    sink_role, sink_port = _endpoint_role(project, implementation, connection.sink)

    # Direction legality.
    if source_role != "source" or sink_role != "sink":
        report.violations.append(
            DRCViolation(
                rule="direction",
                implementation=implementation.name,
                message=(
                    f"connection {connection} has illegal direction: "
                    f"{connection.source} acts as a {source_role} and "
                    f"{connection.sink} acts as a {sink_role}"
                ),
            )
        )
        return

    # Type equality, complexity, throughput and clock domain.
    compatibility = check_connection_compatibility(
        source_port.logical_type,
        sink_port.logical_type,
        strict=not connection.structural,
        source_clock=source_port.clock_domain.name,
        sink_clock=sink_port.clock_domain.name,
    )
    if not compatibility:
        for reason in compatibility.reasons:
            report.violations.append(
                DRCViolation(
                    rule="type-equality",
                    implementation=implementation.name,
                    message=f"connection {connection}: {reason}",
                )
            )
