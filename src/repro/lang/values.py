"""Runtime values and scopes of the Tydi-lang evaluator.

Section IV-A of the paper: Tydi-lang has five variable types -- integer,
floating-point number, string, boolean and clock domain -- plus arrays of
basic values.  All variables are immutable; *shadowing* in a nested scope is
allowed and useful.

Besides basic values, evaluation also passes around logical types, streamlet
templates, implementation templates and concrete (already instantiated)
implementations.  These are represented by small wrapper classes so that the
evaluator can check the kind of every template argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import TydiEvaluationError, TydiNameError
from repro.spec.logical_types import LogicalType


@dataclass(frozen=True)
class ClockDomainValue:
    """A clock-domain variable value (a name, compared by equality)."""

    name: str

    def __str__(self) -> str:
        return f"clockdomain({self.name})"


@dataclass(frozen=True)
class TypeValue:
    """A logical type used as a value (e.g. a ``type`` template argument)."""

    logical_type: LogicalType

    def __str__(self) -> str:
        return self.logical_type.to_tydi()

    def mangle_name(self) -> str:
        return self.logical_type.mangle_name()


@dataclass(frozen=True)
class StreamletValue:
    """Reference to a streamlet declaration (possibly a template)."""

    name: str
    declaration: object  # ast.StreamletDecl
    package: str = "main"

    def __str__(self) -> str:
        return f"streamlet {self.name}"


@dataclass(frozen=True)
class ImplValue:
    """Reference to an implementation declaration (possibly a template).

    When the implementation template has already been partially applied (an
    ``impl adder_32`` passed as a template argument), ``bound_arguments``
    carries the evaluated arguments to use at instantiation time.
    """

    name: str
    declaration: object  # ast.ImplDecl
    package: str = "main"
    bound_arguments: tuple[object, ...] = ()

    def __str__(self) -> str:
        return f"impl {self.name}"

    def mangle_name(self) -> str:
        return self.name


#: The kinds a template parameter may declare, mapped to a predicate.
def _is_int(v: object) -> bool:
    return isinstance(v, int) and not isinstance(v, bool)


def _is_float(v: object) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


PARAM_KIND_CHECKS = {
    "int": _is_int,
    "float": _is_float,
    "string": lambda v: isinstance(v, str),
    "bool": lambda v: isinstance(v, bool),
    "clockdomain": lambda v: isinstance(v, ClockDomainValue),
    "type": lambda v: isinstance(v, TypeValue),
    "impl": lambda v: isinstance(v, ImplValue),
}


def describe_value(value: object) -> str:
    """Human-readable kind name of a runtime value, for diagnostics."""
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "string"
    if isinstance(value, ClockDomainValue):
        return "clockdomain"
    if isinstance(value, TypeValue):
        return "type"
    if isinstance(value, StreamletValue):
        return "streamlet"
    if isinstance(value, ImplValue):
        return "impl"
    if isinstance(value, (list, tuple)):
        return "array"
    return type(value).__name__


@dataclass
class Binding:
    """One immutable name binding inside a scope."""

    name: str
    value: object
    kind: str = "const"  # const | param | loop | builtin
    span: Optional[object] = None


class Scope:
    """A lexical scope with immutable bindings and shadowing.

    Redefining a name *within the same scope* is an error (variables are
    immutable); defining the same name in a *nested* scope shadows the outer
    binding, which the paper explicitly allows.
    """

    def __init__(self, parent: Optional["Scope"] = None, name: str = "<scope>") -> None:
        self.parent = parent
        self.name = name
        self._bindings: dict[str, Binding] = {}

    def define(self, name: str, value: object, kind: str = "const", span: object | None = None) -> Binding:
        if name in self._bindings:
            raise TydiEvaluationError(
                f"variable {name!r} is already defined in this scope; "
                "Tydi-lang variables are immutable (shadow it in a nested scope instead)",
                span,
            )
        binding = Binding(name=name, value=value, kind=kind, span=span)
        self._bindings[name] = binding
        return binding

    def lookup(self, name: str, span: object | None = None) -> object:
        binding = self.find(name)
        if binding is None:
            raise TydiNameError(f"undefined identifier {name!r}", span)
        return binding.value

    def find(self, name: str) -> Optional[Binding]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope._bindings:
                return scope._bindings[name]
            scope = scope.parent
        return None

    def contains(self, name: str) -> bool:
        return self.find(name) is not None

    def defined_here(self, name: str) -> bool:
        return name in self._bindings

    def child(self, name: str = "<scope>") -> "Scope":
        return Scope(parent=self, name=name)

    def local_names(self) -> list[str]:
        return list(self._bindings)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        chain = []
        scope: Optional[Scope] = self
        while scope is not None:
            chain.append(scope.name)
            scope = scope.parent
        return f"Scope({' -> '.join(chain)})"
