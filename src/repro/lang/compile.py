"""Compile driver: the full Tydi-lang frontend pipeline of Figure 3.

``compile_sources`` runs:

1. **parse** every source file into an AST (:mod:`repro.lang.parser`),
2. **evaluate / expand** templates and generative syntax into a flat design
   (:mod:`repro.lang.evaluate`),
3. **sugar** the design -- automatic duplicator/voider insertion
   (:mod:`repro.lang.sugaring`),
4. **design rule check** (:mod:`repro.lang.drc`),
5. hand back the Tydi-IR :class:`repro.ir.Project` together with all reports.

Each of the four boxes is exposed as a composable function --
:func:`parse_stage`, :func:`evaluate_stage`, :func:`sugar_stage`,
:func:`drc_stage` -- each returning its artefact together with the
:class:`CompilationStage` log entry it contributes.  ``compile_sources``
is the monolithic composition of the four; the per-stage cache
(:class:`repro.pipeline.stages.StageCache`) composes the *same* functions
with memoised parse and evaluate artefacts, which is what makes the
staged and monolithic pipelines provably equivalent (see
``tests/test_stage_differential.py``).

The stage log recorded on the result mirrors the "code structure #1..#4"
progression in the paper's Figure 3 and is what the figure-3 benchmark
regenerates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Optional, Protocol, Sequence

from repro.errors import DiagnosticSink
from repro.ir.emit import emit_project
from repro.ir.model import Project
from repro.lang.ast import SourceUnit
from repro.lang.drc import DRCReport, check_project
from repro.lang.evaluate import Evaluator, Program
from repro.lang.parser import parse_source
from repro.lang.sugaring import SugaringReport, apply_sugaring
from repro.stdlib.source import STDLIB_SOURCE


def normalize_sources(
    sources: Sequence[tuple[str, str]] | Sequence[str],
) -> tuple[tuple[str, str], ...]:
    """Normalise compile inputs to ``(source_text, filename)`` pairs.

    The single definition shared by :func:`compile_sources` and the pipeline
    cache's fingerprinting (:func:`repro.pipeline.cache.fingerprint_sources`),
    so content addresses can never drift from what actually gets compiled.
    """
    normalized: list[tuple[str, str]] = []
    for index, entry in enumerate(sources):
        if isinstance(entry, tuple):
            normalized.append(entry)
        else:
            normalized.append((entry, f"source_{index}.td"))
    return tuple(normalized)


def normalize_targets(targets: Sequence[str] | None) -> tuple[str, ...]:
    """Normalise a backend target list: ordered, duplicates dropped.

    Shared by :func:`compile_sources`, the per-stage cache and
    :class:`repro.pipeline.batch.CompileJob` so that ``("vhdl", "vhdl")``
    and ``("vhdl",)`` produce the same outputs *and* the same content
    address.
    """
    return tuple(dict.fromkeys(targets or ()))


class ResultCache(Protocol):
    """What :func:`compile_sources` needs from a cache (duck-typed so the
    lang layer never imports :mod:`repro.pipeline`; pass a
    :class:`repro.pipeline.CompilationCache`)."""

    def key_for(self, sources, options) -> str: ...  # pragma: no cover

    def get(self, key: str) -> Optional["CompilationResult"]: ...  # pragma: no cover

    def put(self, key: str, result: "CompilationResult") -> None: ...  # pragma: no cover


@lru_cache(maxsize=4)
def _parsed_stdlib(source_text: str) -> SourceUnit:
    """Parse the standard library once per distinct source text.

    Every compilation with ``include_stdlib=True`` prepends the same ~200
    lines of stdlib source; lexing and parsing them dominated short compiles,
    so the parsed AST is memoised.  The AST is treated as immutable by every
    later stage (evaluation only reads declarations), which makes sharing one
    unit across compilations safe.
    """
    return parse_source(source_text, "std.td")


@dataclass
class CompilationStage:
    """One entry of the stage log (name plus a human-readable detail line)."""

    name: str
    detail: str

    def __str__(self) -> str:
        return f"{self.name}: {self.detail}"


@dataclass
class CompilationResult:
    """Everything the frontend produces for one compilation."""

    project: Project
    diagnostics: DiagnosticSink
    stages: list[CompilationStage] = field(default_factory=list)
    sugaring: Optional[SugaringReport] = None
    drc: Optional[DRCReport] = None
    units: list[SourceUnit] = field(default_factory=list)
    #: Backend outputs requested via ``targets``: backend name -> files.
    outputs: dict[str, dict[str, str]] = field(default_factory=dict)

    def ir_text(self) -> str:
        """The textual Tydi-IR of the compiled project."""
        return emit_project(self.project)

    def output_files(self, target: str) -> dict[str, str]:
        """The emitted files of one requested backend target."""
        try:
            return self.outputs[target]
        except KeyError as exc:
            requested = ", ".join(self.outputs) or "none"
            raise KeyError(
                f"no {target!r} output on this result (requested targets: {requested})"
            ) from exc

    def stage_names(self) -> list[str]:
        return [stage.name for stage in self.stages]


# ---------------------------------------------------------------------------
# The four Figure-3 stages as composable functions.
#
# Every function returns ``(artefact, CompilationStage)`` so that any caller
# -- the monolithic ``compile_sources`` or the per-stage-cached pipeline --
# produces byte-identical stage logs from the same inputs.
# ---------------------------------------------------------------------------


def parse_stage(
    normalized: Sequence[tuple[str, str]],
    *,
    include_stdlib: bool = True,
    parse_file: Callable[[str, str], SourceUnit] = parse_source,
) -> tuple[list[SourceUnit], CompilationStage]:
    """Stage 1: parse every source file (stdlib first) into ASTs.

    ``parse_file`` is the per-file parser; the staged pipeline passes a
    memoising wrapper (:meth:`repro.pipeline.stages.StageCache.cached_parse`)
    so unchanged files skip lexing and parsing entirely.  Returned units are
    treated as immutable by all later stages (evaluation only reads
    declarations), which is what makes sharing cached ASTs safe.
    """
    units: list[SourceUnit] = []
    if include_stdlib:
        units.append(_parsed_stdlib(STDLIB_SOURCE))
    units.extend(parse_file(text, filename) for text, filename in normalized)
    total_decls = sum(len(u.declarations) for u in units)
    entry = CompilationStage(
        "parse", f"parsed {len(units)} source file(s), {total_decls} declaration(s)"
    )
    return units, entry


def evaluate_stage(
    units: Sequence[SourceUnit],
    diagnostics: DiagnosticSink,
    *,
    top: Optional[str] = None,
    top_args: tuple[object, ...] = (),
    project_name: str = "design",
) -> tuple[Project, CompilationStage]:
    """Stage 2: evaluation / expansion ("code expansion & evaluation")."""
    program = Program.from_units(list(units))
    evaluator = Evaluator(program, diagnostics, project_name=project_name)
    project = evaluator.evaluate(top=top, top_args=top_args)
    stats = project.statistics()
    entry = CompilationStage(
        "evaluate",
        f"expanded to {stats['streamlets']} streamlet(s), "
        f"{stats['implementations']} implementation(s), "
        f"{stats['instances']} instance(s), {stats['connections']} connection(s)",
    )
    return project, entry


def sugar_stage(
    project: Project,
    diagnostics: DiagnosticSink,
) -> tuple[SugaringReport, CompilationStage]:
    """Stage 3: sugaring ("desugaring" box of Figure 3).  Mutates ``project``."""
    report = apply_sugaring(project, diagnostics)
    return report, CompilationStage("sugaring", report.summary())


def drc_stage(
    project: Project,
    diagnostics: DiagnosticSink,
    *,
    strict: bool = True,
) -> tuple[DRCReport, CompilationStage]:
    """Stage 4: design rule check; ``strict`` raises on DRC errors."""
    report = check_project(project, diagnostics)
    entry = CompilationStage("drc", report.summary())
    if strict:
        report.raise_if_failed()
    return report, entry


IR_STAGE_DETAIL = "Tydi-IR available via CompilationResult.ir_text()"


def backend_stage(
    project: Project,
    targets: Sequence[str],
    *,
    stage_cache=None,
) -> tuple[dict[str, dict[str, str]], list[CompilationStage]]:
    """Stage 6: run every requested backend over the compiled project.

    ``stage_cache`` (a :class:`repro.pipeline.stages.StageCache`, duck-typed
    so the lang layer never imports the pipeline) serves memoised
    per-implementation unit outputs; without one every backend emits from
    scratch.  Both paths produce identical outputs *and* identical stage-log
    entries -- the differential harness asserts it -- so the log detail
    deliberately carries no hit/miss counts.
    """
    outputs: dict[str, dict[str, str]] = {}
    entries: list[CompilationStage] = []
    if not targets:
        return outputs, entries
    from repro.backends import get_backend

    for target in normalize_targets(targets):
        backend = get_backend(target)
        if stage_cache is not None:
            files = stage_cache.emit_backend(project, backend)
        else:
            files = backend.emit(project)
        outputs[backend.name] = files
        entries.append(
            CompilationStage(f"backend:{backend.name}", f"emitted {len(files)} file(s)")
        )
    return outputs, entries


def compile_sources(
    sources: Sequence[tuple[str, str]] | Sequence[str],
    *,
    top: Optional[str] = None,
    top_args: tuple[object, ...] = (),
    include_stdlib: bool = True,
    sugaring: bool = True,
    run_drc: bool = True,
    strict_drc: bool = True,
    project_name: str = "design",
    targets: Sequence[str] = (),
    cache: Optional[ResultCache] = None,
) -> CompilationResult:
    """Compile one or more Tydi-lang sources to Tydi-IR.

    Parameters
    ----------
    sources:
        Either plain source strings or ``(source_text, filename)`` pairs.
    top:
        Name of the top-level implementation to instantiate.  When omitted,
        an in-source ``top name;`` declaration is honoured, and failing that
        every non-template implementation is instantiated.
    top_args:
        Evaluated template arguments for ``top`` when it is a template.
    include_stdlib:
        Prepend the Tydi-lang standard library source.
    sugaring:
        Apply automatic duplicator/voider insertion (Section IV-D).
    run_drc / strict_drc:
        Run the design rule check; ``strict_drc`` raises on DRC errors.
    targets:
        Names of registered output backends (see :mod:`repro.backends`,
        e.g. ``("vhdl", "dot")``) to run after the frontend; their files
        land on :attr:`CompilationResult.outputs`.  Duplicates are dropped,
        order is preserved.
    cache:
        Optional content-addressed result cache (see
        :class:`repro.pipeline.CompilationCache`).  On a hit the stored
        :class:`CompilationResult` is returned as-is (treat it as
        immutable); on a miss the fresh result is stored before returning.
        When the cache exposes a per-stage sub-cache as a ``stages``
        attribute (:class:`repro.pipeline.stages.StageCache`), whole-result
        misses compile through the staged pipeline, reusing cached per-file
        ASTs and evaluate snapshots.
    """
    normalized = normalize_sources(sources)
    targets = normalize_targets(targets)
    options = {
        "top": top,
        "top_args": top_args,
        "include_stdlib": include_stdlib,
        "sugaring": sugaring,
        "run_drc": run_drc,
        "strict_drc": strict_drc,
        "project_name": project_name,
        "targets": targets,
    }

    cache_key: Optional[str] = None
    if cache is not None:
        cache_key = cache.key_for(normalized, options)
        cached = cache.get(cache_key)
        if cached is not None:
            return cached
        stage_cache = getattr(cache, "stages", None)
        if stage_cache is not None:
            result = stage_cache.compile(normalized, options)
            cache.put(cache_key, result)
            return result

    diagnostics = DiagnosticSink()
    stages: list[CompilationStage] = []

    # Stage 1: parse (the stdlib AST is parsed once and shared, see
    # :func:`_parsed_stdlib`).
    units, parse_entry = parse_stage(normalized, include_stdlib=include_stdlib)
    stages.append(parse_entry)

    # Stage 2: evaluation / expansion ("code expansion & evaluation").
    project, evaluate_entry = evaluate_stage(
        units, diagnostics, top=top, top_args=top_args, project_name=project_name
    )
    stages.append(evaluate_entry)

    # Stage 3: sugaring ("desugaring" box of Figure 3).
    sugaring_report: Optional[SugaringReport] = None
    if sugaring:
        sugaring_report, sugar_entry = sugar_stage(project, diagnostics)
        stages.append(sugar_entry)

    # Stage 4: design rule check.
    drc_report: Optional[DRCReport] = None
    if run_drc:
        drc_report, drc_entry = drc_stage(project, diagnostics, strict=strict_drc)
        stages.append(drc_entry)

    # Stage 5: Tydi-IR generation is on-demand via CompilationResult.ir_text().
    stages.append(CompilationStage("ir", IR_STAGE_DETAIL))

    # Stage 6: requested output backends (uncached on the monolithic path;
    # the staged pipeline memoises per-implementation unit outputs).
    outputs, backend_entries = backend_stage(project, targets)
    stages.extend(backend_entries)

    result = CompilationResult(
        project=project,
        diagnostics=diagnostics,
        stages=stages,
        sugaring=sugaring_report,
        drc=drc_report,
        units=units,
        outputs=outputs,
    )
    if cache is not None and cache_key is not None:
        cache.put(cache_key, result)
    return result


def compile_project(
    source: str,
    *,
    filename: str = "<string>",
    **kwargs,
) -> CompilationResult:
    """Compile a single Tydi-lang source string (see :func:`compile_sources`)."""
    return compile_sources([(source, filename)], **kwargs)
