"""Compile driver: the full Tydi-lang frontend pipeline of Figure 3.

This module owns the *definitions* the whole toolchain shares: the stage
functions, :func:`normalize_sources` (strictly-validated input normal
form), and :class:`CompileOptions` -- the one frozen dataclass every layer
(one-shot compiles, :class:`repro.workspace.Workspace` designs,
:class:`repro.pipeline.batch.CompileJob`, the CLI) uses to describe a
compilation, with one ``fingerprint()`` recipe behind every cache key.

``compile_sources`` -- now a one-shot shim over a throwaway
:class:`repro.workspace.Workspace` session -- runs:

1. **parse** every source file into an AST (:mod:`repro.lang.parser`),
2. **evaluate / expand** templates and generative syntax into a flat design
   (:mod:`repro.lang.evaluate`),
3. **sugar** the design -- automatic duplicator/voider insertion
   (:mod:`repro.lang.sugaring`),
4. **design rule check** (:mod:`repro.lang.drc`),
5. hand back the Tydi-IR :class:`repro.ir.Project` together with all reports.

Each of the four boxes is exposed as a composable function --
:func:`parse_stage`, :func:`evaluate_stage`, :func:`sugar_stage`,
:func:`drc_stage` -- each returning its artefact together with the
:class:`CompilationStage` log entry it contributes.  ``compile_sources``
is the monolithic composition of the four; the per-stage cache
(:class:`repro.pipeline.stages.StageCache`) composes the *same* functions
with memoised parse and evaluate artefacts, which is what makes the
staged and monolithic pipelines provably equivalent (see
``tests/test_stage_differential.py``).

The stage log recorded on the result mirrors the "code structure #1..#4"
progression in the paper's Figure 3 and is what the figure-3 benchmark
regenerates.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Mapping, Optional, Protocol, Sequence

from repro.errors import DiagnosticSink, TydiInputError, did_you_mean
from repro.ir.emit import emit_project
from repro.ir.model import Project
from repro.lang.ast import SourceUnit
from repro.lang.drc import DRCReport, check_project
from repro.lang.evaluate import Evaluator, Program
from repro.lang.parser import parse_source
from repro.lang.sugaring import SugaringReport, apply_sugaring
from repro.profiling import PROFILER
from repro.stdlib.source import STDLIB_SOURCE


def normalize_sources(
    sources: Sequence[tuple[str, str]] | Sequence[str] | Mapping[str, str],
) -> tuple[tuple[str, str], ...]:
    """Normalise compile inputs to ``(source_text, filename)`` pairs.

    The single definition shared by :func:`compile_sources`, the
    :class:`repro.workspace.Workspace` design store and the pipeline cache's
    fingerprinting (:func:`repro.pipeline.cache.fingerprint_sources`), so
    content addresses can never drift from what actually gets compiled.

    Accepted entry shapes: a bare source string (named ``source_<i>.td``),
    a ``(source_text, filename)`` pair (tuple or list), or -- for the whole
    argument -- a ``{filename: source_text}`` mapping.  Anything else is
    rejected up front with a :class:`~repro.errors.TydiInputError` naming
    the offending index, instead of failing later inside a stage with an
    opaque unpack or attribute error.  Duplicate filenames are rejected for
    the same reason: the second entry would silently shadow the first in
    every file-keyed tier (stage cache, workspace, diagnostics).
    """
    if isinstance(sources, Mapping):
        entries: Sequence[object] = [(text, filename) for filename, text in sources.items()]
    elif isinstance(sources, (str, bytes)):
        raise TydiInputError(
            "sources must be a sequence of source entries, not a single string "
            "(wrap it in a list, or use compile_project)"
        )
    else:
        entries = list(sources)
    normalized: list[tuple[str, str]] = []
    seen: dict[str, int] = {}
    for index, entry in enumerate(entries):
        if isinstance(entry, str):
            pair = (entry, f"source_{index}.td")
        elif isinstance(entry, (tuple, list)):
            if len(entry) != 2:
                raise TydiInputError(
                    f"sources[{index}]: expected a (source_text, filename) pair, "
                    f"got a {len(entry)}-element {type(entry).__name__}"
                )
            text, filename = entry
            if not isinstance(text, str) or not isinstance(filename, str):
                raise TydiInputError(
                    f"sources[{index}]: expected (source_text, filename) strings, "
                    f"got ({type(text).__name__}, {type(filename).__name__})"
                )
            pair = (text, filename)
        else:
            raise TydiInputError(
                f"sources[{index}]: expected a source string or a "
                f"(source_text, filename) pair, got {type(entry).__name__}"
            )
        previous = seen.get(pair[1])
        if previous is not None:
            raise TydiInputError(
                f"sources[{index}]: duplicate filename {pair[1]!r} "
                f"(already used by sources[{previous}])"
            )
        seen[pair[1]] = index
        normalized.append(pair)
    return tuple(normalized)


def normalize_targets(targets: Sequence[str] | None) -> tuple[str, ...]:
    """Normalise a backend target list: ordered, duplicates dropped.

    Shared by :func:`compile_sources`, the per-stage cache and
    :class:`repro.pipeline.batch.CompileJob` so that ``("vhdl", "vhdl")``
    and ``("vhdl",)`` produce the same outputs *and* the same content
    address.
    """
    return tuple(dict.fromkeys(targets or ()))


def normalize_backend_options(value) -> tuple[tuple[str, object], ...]:
    """Normalise per-backend options to a sorted ``((name, options), ...)``.

    Accepts ``None``/``()``, a mapping ``{backend_name: options}`` or an
    iterable of ``(backend_name, options)`` pairs, where each ``options``
    is either the backend's frozen options dataclass instance or a loose
    ``{key: value}`` mapping (coerced through
    :func:`repro.backends.options.options_for_backend`, with did-you-mean
    errors for unknown keys).  Backend names are validated against the
    registry immediately -- an unknown name fails here, at option-building
    time, not later inside the emit stage.
    """
    if not value:
        return ()
    from repro.backends import backend_class
    from repro.backends.options import options_for_backend

    if isinstance(value, Mapping):
        items = list(value.items())
    else:
        items = list(value)
    resolved: dict[str, object] = {}
    for index, entry in enumerate(items):
        if not isinstance(entry, (tuple, list)) or len(entry) != 2:
            raise TydiInputError(
                f"backend_options[{index}]: expected a (backend_name, options) "
                f"pair, got {type(entry).__name__}"
            )
        name, options = entry
        if not isinstance(name, str):
            raise TydiInputError(
                f"backend_options[{index}]: backend name must be a string, "
                f"got {type(name).__name__}"
            )
        cls = backend_class(name)
        if isinstance(options, Mapping):
            options = options_for_backend(cls, options)
        elif not isinstance(options, cls.options_type):
            raise TydiInputError(
                f"backend_options[{index}]: backend {name!r} expects "
                f"{cls.options_type.__name__} (or a key/value mapping), "
                f"got {type(options).__name__}"
            )
        resolved[name] = options
    return tuple(sorted(resolved.items()))


#: The legacy keyword names of :func:`compile_sources`, in the (stable)
#: order the options dict is built in -- the one definition
#: :meth:`CompileOptions.as_dict` and :meth:`CompileOptions.from_kwargs`
#: share with the cache fingerprints.
OPTION_FIELD_NAMES = (
    "top",
    "top_args",
    "include_stdlib",
    "sugaring",
    "run_drc",
    "strict_drc",
    "project_name",
    "targets",
    "backend_options",
)


@dataclass(frozen=True)
class CompileOptions:
    """Every knob of one frontend compilation, as one frozen value.

    This is the single definition of "compile options" across the
    toolchain: :func:`compile_sources` keyword arguments build one,
    :class:`repro.workspace.Workspace` designs carry one,
    :meth:`repro.pipeline.batch.CompileJob.options` derives its legacy
    dict from one, and the cache layers key artefacts by
    :meth:`fingerprint`.  Being frozen (and normalised on construction:
    ``top_args``/``targets`` become tuples, duplicate targets collapse,
    ``backend_options`` sort by backend name) makes an instance safe to
    share across threads and to use as part of a cache identity.

    ``backend_options`` carries per-backend emission options -- see
    :func:`normalize_backend_options` for the accepted shapes; loose
    mappings like ``{"dot": {"rankdir": "TB"}}`` are coerced to the
    backend's frozen options dataclass with did-you-mean validation.
    """

    top: Optional[str] = None
    top_args: tuple[object, ...] = ()
    include_stdlib: bool = True
    sugaring: bool = True
    run_drc: bool = True
    strict_drc: bool = True
    project_name: str = "design"
    targets: tuple[str, ...] = ()
    backend_options: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "top_args", tuple(self.top_args))
        object.__setattr__(self, "targets", normalize_targets(self.targets))
        object.__setattr__(
            self, "backend_options", normalize_backend_options(self.backend_options)
        )

    @classmethod
    def from_kwargs(cls, **kwargs: object) -> "CompileOptions":
        """Build options from keyword arguments, rejecting unknown names.

        Unlike the raw constructor's ``TypeError``, the error is a
        :class:`~repro.errors.TydiInputError` naming the bad key with a
        did-you-mean suggestion -- the validation layer behind
        ``Workspace.add_design(options={...})`` and the CLI.
        """
        for key in kwargs:
            if key not in OPTION_FIELD_NAMES:
                raise TydiInputError(
                    f"unknown compile option {key!r}"
                    f"{did_you_mean(key, OPTION_FIELD_NAMES)} "
                    f"(valid options: {', '.join(OPTION_FIELD_NAMES)})"
                )
        return cls(**kwargs)  # type: ignore[arg-type]

    @classmethod
    def coerce(cls, value: "CompileOptions | Mapping[str, object] | None") -> "CompileOptions":
        """Normalise ``None`` / a mapping / an instance to an instance."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, Mapping):
            return cls.from_kwargs(**value)
        raise TydiInputError(
            f"options must be a CompileOptions, a mapping or None, "
            f"got {type(value).__name__}"
        )

    def replace(self, **changes: object) -> "CompileOptions":
        """A copy with some fields replaced (unknown names rejected)."""
        for key in changes:
            if key not in OPTION_FIELD_NAMES:
                return self.from_kwargs(**changes)  # raises with did-you-mean
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]

    def as_dict(self) -> dict[str, object]:
        """The legacy ``compile_sources`` options dict (the fingerprint form).

        The returned dict is fresh and mutable; its key set and value
        normal forms are what every cache fingerprint hashes, so two paths
        that agree on an instance agree on every content address.
        """
        return {name: getattr(self, name) for name in OPTION_FIELD_NAMES}

    def backend_options_for(self, name: str):
        """The options instance configured for backend ``name`` (or None)."""
        for backend_name, options in self.backend_options:
            if backend_name == name:
                return options
        return None

    def fingerprint(self, sources: Sequence[tuple[str, str]] | Sequence[str]) -> str:
        """Content address of one compilation: these options over ``sources``.

        The one fingerprint definition shared by ``compile_sources``' cache
        hook, :meth:`repro.pipeline.batch.CompileJob.fingerprint`,
        :class:`repro.workspace.Workspace` invalidation and the CLI
        (delegates to :func:`repro.pipeline.cache.fingerprint_sources`).
        """
        from repro.pipeline.cache import fingerprint_sources

        return fingerprint_sources(sources, self.as_dict())


class ResultCache(Protocol):
    """What :func:`compile_sources` needs from a cache (duck-typed so the
    lang layer never imports :mod:`repro.pipeline`; pass a
    :class:`repro.pipeline.CompilationCache`)."""

    def key_for(self, sources, options) -> str: ...  # pragma: no cover

    def get(self, key: str) -> Optional["CompilationResult"]: ...  # pragma: no cover

    def put(self, key: str, result: "CompilationResult") -> None: ...  # pragma: no cover


@lru_cache(maxsize=4)
def _parsed_stdlib(source_text: str) -> SourceUnit:
    """Parse the standard library once per distinct source text.

    Every compilation with ``include_stdlib=True`` prepends the same ~200
    lines of stdlib source; lexing and parsing them dominated short compiles,
    so the parsed AST is memoised.  On a *cold* process the first call is
    served from the precompiled pickled snapshot shipped with the package
    (:mod:`repro.stdlib.snapshot`) when its version stamp matches -- any
    mismatch falls back to a live parse.  The AST is treated as immutable by
    every later stage (evaluation only reads declarations), which makes
    sharing one unit across compilations safe.
    """
    if source_text == STDLIB_SOURCE:
        from repro.stdlib.snapshot import load_stdlib_unit

        unit = load_stdlib_unit()
        if unit is not None:
            return unit
    return parse_source(source_text, "std.td")


@dataclass
class CompilationStage:
    """One entry of the stage log (name plus a human-readable detail line)."""

    name: str
    detail: str

    def __str__(self) -> str:
        return f"{self.name}: {self.detail}"


@dataclass
class CompilationResult:
    """Everything the frontend produces for one compilation."""

    project: Project
    diagnostics: DiagnosticSink
    stages: list[CompilationStage] = field(default_factory=list)
    sugaring: Optional[SugaringReport] = None
    drc: Optional[DRCReport] = None
    units: list[SourceUnit] = field(default_factory=list)
    #: Backend outputs requested via ``targets``: backend name -> files.
    outputs: dict[str, dict[str, str]] = field(default_factory=dict)

    def ir_text(self) -> str:
        """The textual Tydi-IR of the compiled project."""
        return emit_project(self.project)

    def output_files(self, target: str) -> dict[str, str]:
        """The emitted files of one requested backend target."""
        try:
            return self.outputs[target]
        except KeyError as exc:
            requested = ", ".join(self.outputs) or "none"
            raise KeyError(
                f"no {target!r} output on this result (requested targets: {requested})"
            ) from exc

    def stage_names(self) -> list[str]:
        return [stage.name for stage in self.stages]


# ---------------------------------------------------------------------------
# The four Figure-3 stages as composable functions.
#
# Every function returns ``(artefact, CompilationStage)`` so that any caller
# -- the monolithic ``compile_sources`` or the per-stage-cached pipeline --
# produces byte-identical stage logs from the same inputs.
# ---------------------------------------------------------------------------


def parse_stage(
    normalized: Sequence[tuple[str, str]],
    *,
    include_stdlib: bool = True,
    parse_file: Callable[[str, str], SourceUnit] = parse_source,
) -> tuple[list[SourceUnit], CompilationStage]:
    """Stage 1: parse every source file (stdlib first) into ASTs.

    ``parse_file`` is the per-file parser; the staged pipeline passes a
    memoising wrapper (:meth:`repro.pipeline.stages.StageCache.cached_parse`)
    so unchanged files skip lexing and parsing entirely.  Returned units are
    treated as immutable by all later stages (evaluation only reads
    declarations), which is what makes sharing cached ASTs safe.
    """
    units: list[SourceUnit] = []
    with PROFILER.stage("parse"):
        if include_stdlib:
            units.append(_parsed_stdlib(STDLIB_SOURCE))
        units.extend(parse_file(text, filename) for text, filename in normalized)
    total_decls = sum(len(u.declarations) for u in units)
    entry = CompilationStage(
        "parse", f"parsed {len(units)} source file(s), {total_decls} declaration(s)"
    )
    return units, entry


def evaluate_stage(
    units: Sequence[SourceUnit],
    diagnostics: DiagnosticSink,
    *,
    top: Optional[str] = None,
    top_args: tuple[object, ...] = (),
    project_name: str = "design",
) -> tuple[Project, CompilationStage]:
    """Stage 2: evaluation / expansion ("code expansion & evaluation")."""
    with PROFILER.stage("evaluate"):
        program = Program.from_units(list(units))
        evaluator = Evaluator(program, diagnostics, project_name=project_name)
        project = evaluator.evaluate(top=top, top_args=top_args)
    stats = project.statistics()
    entry = CompilationStage(
        "evaluate",
        f"expanded to {stats['streamlets']} streamlet(s), "
        f"{stats['implementations']} implementation(s), "
        f"{stats['instances']} instance(s), {stats['connections']} connection(s)",
    )
    return project, entry


def sugar_stage(
    project: Project,
    diagnostics: DiagnosticSink,
) -> tuple[SugaringReport, CompilationStage]:
    """Stage 3: sugaring ("desugaring" box of Figure 3).  Mutates ``project``."""
    with PROFILER.stage("sugaring"):
        report = apply_sugaring(project, diagnostics)
    return report, CompilationStage("sugaring", report.summary())


def drc_stage(
    project: Project,
    diagnostics: DiagnosticSink,
    *,
    strict: bool = True,
) -> tuple[DRCReport, CompilationStage]:
    """Stage 4: design rule check; ``strict`` raises on DRC errors."""
    with PROFILER.stage("drc"):
        report = check_project(project, diagnostics)
    entry = CompilationStage("drc", report.summary())
    if strict:
        report.raise_if_failed()
    return report, entry


IR_STAGE_DETAIL = "Tydi-IR available via CompilationResult.ir_text()"


def backend_stage(
    project: Project,
    targets: Sequence[str],
    *,
    backend_options: Sequence[tuple[str, object]] = (),
    stage_cache=None,
) -> tuple[dict[str, dict[str, str]], list[CompilationStage]]:
    """Stage 6: run every requested backend over the compiled project.

    ``backend_options`` is the normalised per-backend options of
    :attr:`CompileOptions.backend_options`; a backend without an entry runs
    with its defaults.  ``stage_cache`` (a :class:`repro.pipeline.stages.
    StageCache`, duck-typed so the lang layer never imports the pipeline)
    serves memoised per-implementation unit outputs; without one every
    backend emits from scratch.  Both paths produce identical outputs *and*
    identical stage-log entries -- the differential harness asserts it --
    so the log detail deliberately carries no hit/miss counts.
    """
    outputs: dict[str, dict[str, str]] = {}
    entries: list[CompilationStage] = []
    if not targets:
        return outputs, entries
    from repro.backends import get_backend

    options_by_name = dict(backend_options or ())
    for target in normalize_targets(targets):
        backend = get_backend(target, options_by_name.get(target))
        with PROFILER.stage(f"backend:{backend.name}"):
            if stage_cache is not None:
                files = stage_cache.emit_backend(project, backend)
            else:
                files = backend.emit(project)
        outputs[backend.name] = files
        entries.append(
            CompilationStage(f"backend:{backend.name}", f"emitted {len(files)} file(s)")
        )
    return outputs, entries


def run_pipeline(
    normalized: Sequence[tuple[str, str]],
    options: CompileOptions,
) -> CompilationResult:
    """The monolithic Figure-3 pipeline: every stage from scratch, no caches.

    This is the reference composition of the stage functions above; the
    staged pipeline (:meth:`repro.pipeline.stages.StageCache.compile`)
    composes the *same* functions with memoised artefacts and is
    differential-tested byte-identical against this one.  Callers that want
    caching or session state go through :class:`repro.workspace.Workspace`
    (or its :func:`compile_sources` shim) instead of calling this directly.
    """
    diagnostics = DiagnosticSink()
    stages: list[CompilationStage] = []

    # Stage 1: parse (the stdlib AST is parsed once and shared, see
    # :func:`_parsed_stdlib`).
    units, parse_entry = parse_stage(normalized, include_stdlib=options.include_stdlib)
    stages.append(parse_entry)

    # Stage 2: evaluation / expansion ("code expansion & evaluation").
    project, evaluate_entry = evaluate_stage(
        units,
        diagnostics,
        top=options.top,
        top_args=options.top_args,
        project_name=options.project_name,
    )
    stages.append(evaluate_entry)

    # Stage 3: sugaring ("desugaring" box of Figure 3).
    sugaring_report: Optional[SugaringReport] = None
    if options.sugaring:
        sugaring_report, sugar_entry = sugar_stage(project, diagnostics)
        stages.append(sugar_entry)

    # Stage 4: design rule check.
    drc_report: Optional[DRCReport] = None
    if options.run_drc:
        drc_report, drc_entry = drc_stage(project, diagnostics, strict=options.strict_drc)
        stages.append(drc_entry)

    # Stage 5: Tydi-IR generation is on-demand via CompilationResult.ir_text().
    stages.append(CompilationStage("ir", IR_STAGE_DETAIL))

    # Stage 6: requested output backends (uncached on the monolithic path;
    # the staged pipeline memoises per-implementation unit outputs).
    outputs, backend_entries = backend_stage(
        project, options.targets, backend_options=options.backend_options
    )
    stages.extend(backend_entries)

    return CompilationResult(
        project=project,
        diagnostics=diagnostics,
        stages=stages,
        sugaring=sugaring_report,
        drc=drc_report,
        units=units,
        outputs=outputs,
    )


def compile_sources(
    sources: Sequence[tuple[str, str]] | Sequence[str] | Mapping[str, str],
    *,
    options: CompileOptions | Mapping[str, object] | None = None,
    top: Optional[str] = None,
    top_args: tuple[object, ...] = (),
    include_stdlib: bool = True,
    sugaring: bool = True,
    run_drc: bool = True,
    strict_drc: bool = True,
    project_name: str = "design",
    targets: Sequence[str] = (),
    backend_options: Sequence[tuple[str, object]] | Mapping[str, object] = (),
    cache: Optional[ResultCache] = None,
) -> CompilationResult:
    """Compile one or more Tydi-lang sources to Tydi-IR.

    This is the one-shot entry point: it builds a throwaway
    :class:`repro.workspace.Workspace` session around the given ``cache``
    (or no cache at all), registers the sources as a single design, and
    returns the session's ``result`` query.  Long-lived callers -- editors,
    services, anything that compiles the same design more than once --
    should hold a ``Workspace`` of their own instead; see
    ``docs/workspace.md``.

    Parameters
    ----------
    sources:
        Plain source strings, ``(source_text, filename)`` pairs, or a
        ``{filename: source_text}`` mapping (see :func:`normalize_sources`;
        malformed entries raise :class:`~repro.errors.TydiInputError`).
    options:
        A :class:`CompileOptions` (or ``{option: value}`` mapping) carrying
        every compile option as one value.  When given, the individual
        option keywords below must be left at their defaults -- mixing the
        two forms raises :class:`~repro.errors.TydiInputError`.
    top:
        Name of the top-level implementation to instantiate.  When omitted,
        an in-source ``top name;`` declaration is honoured, and failing that
        every non-template implementation is instantiated.
    top_args:
        Evaluated template arguments for ``top`` when it is a template.
    include_stdlib:
        Prepend the Tydi-lang standard library source.
    sugaring:
        Apply automatic duplicator/voider insertion (Section IV-D).
    run_drc / strict_drc:
        Run the design rule check; ``strict_drc`` raises on DRC errors.
    targets:
        Names of registered output backends (see :mod:`repro.backends`,
        e.g. ``("vhdl", "dot")``) to run after the frontend; their files
        land on :attr:`CompilationResult.outputs`.  Duplicates are dropped,
        order is preserved.
    backend_options:
        Per-backend emission options, e.g. ``{"dot": {"rankdir": "TB"}}``
        (see :attr:`CompileOptions.backend_options`).
    cache:
        Optional content-addressed result cache (see
        :class:`repro.pipeline.CompilationCache`).  On a hit the stored
        :class:`CompilationResult` is returned as-is (treat it as
        immutable); on a miss the fresh result is stored before returning.
        When the cache exposes a per-stage sub-cache as a ``stages``
        attribute (:class:`repro.pipeline.stages.StageCache`), whole-result
        misses compile through the staged pipeline, reusing cached per-file
        ASTs and evaluate snapshots.
    """
    from_keywords = CompileOptions(
        top=top,
        top_args=top_args,
        include_stdlib=include_stdlib,
        sugaring=sugaring,
        run_drc=run_drc,
        strict_drc=strict_drc,
        project_name=project_name,
        targets=tuple(targets or ()),
        backend_options=tuple(
            backend_options.items()
            if isinstance(backend_options, Mapping)
            else backend_options or ()
        ),
    )
    if options is not None:
        # Keyword values are compared post-normalisation (tuple coercion,
        # target dedup), so e.g. an explicit ``top_args=[]`` is still "the
        # default" and only a *semantic* conflict with options= is rejected.
        defaults = CompileOptions()
        conflicting = sorted(
            name
            for name in OPTION_FIELD_NAMES
            if getattr(from_keywords, name) != getattr(defaults, name)
        )
        if conflicting:
            raise TydiInputError(
                f"pass either options= or individual option keywords, not both "
                f"(got options= plus {', '.join(conflicting)})"
            )
        resolved = CompileOptions.coerce(options)
    else:
        resolved = from_keywords

    # One-shot shim over a throwaway session: the Workspace owns the cache
    # interaction (result cache, staged sub-pipeline) and the query memo is
    # simply discarded with the session.
    from repro.workspace import Workspace

    workspace = Workspace(cache=cache)
    workspace.add_design(resolved.project_name or "design", sources, resolved)
    return workspace.result(resolved.project_name or "design")


def compile_project(
    source: str,
    *,
    filename: str = "<string>",
    **kwargs,
) -> CompilationResult:
    """Compile a single Tydi-lang source string (see :func:`compile_sources`)."""
    return compile_sources([(source, filename)], **kwargs)
