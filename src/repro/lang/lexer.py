"""Hand-written lexer for Tydi-lang.

The original compiler uses a Pest PEG grammar; we use a single-pass scanner
built around first-character dispatch:

* one-character and two-character operators live in dict tables consulted at
  most twice per token (the two-character table first, so ``=>`` wins over
  ``=``) instead of the historical longest-first linear scan over every
  operator literal;
* identifier, number and whitespace runs are consumed through frozen ASCII
  character-class sets (C-speed membership tests) with a per-character
  Unicode fallback that replicates the original ``str.isalpha`` /
  ``str.isdigit`` / ``str.isalnum`` checks exactly, so non-ASCII source
  bytes tokenize byte-identically to the pre-dispatch scanner
  (``tests/test_frontend_differential.py`` pins this against a reference
  implementation);
* identifier text is passed through :func:`sys.intern`, so the thousands of
  repeated names a design mentions (port/instance/type identifiers) share
  one string object -- downstream ``==`` comparisons on hot evaluator paths
  short-circuit on pointer equality.

Comments (``//`` line and ``/* */`` block) and whitespace are skipped; every
other character must belong to a token or a
:class:`~repro.errors.TydiSyntaxError` is raised with the offending location.
"""

from __future__ import annotations

import sys

from repro.errors import TydiSyntaxError
from repro.lang.tokens import Token, TokenKind
from repro.utils.source import SourceFile

#: Two-character operators, consulted before the one-character table.
_TWO_CHAR_OPERATORS: dict[str, TokenKind] = {
    "=>": TokenKind.ARROW,
    "->": TokenKind.RANGE,
    "==": TokenKind.EQ,
    "!=": TokenKind.NEQ,
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
    "&&": TokenKind.AND,
    "||": TokenKind.OR,
}

#: Single-character operators and punctuation.
_ONE_CHAR_OPERATORS: dict[str, TokenKind] = {
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    "<": TokenKind.LANGLE,
    ">": TokenKind.RANGLE,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMICOLON,
    ":": TokenKind.COLON,
    ".": TokenKind.DOT,
    "@": TokenKind.AT,
    "=": TokenKind.ASSIGN,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "^": TokenKind.CARET,
    "!": TokenKind.NOT,
}

#: The legacy operator list (longest first), kept public because external
#: tooling and tests introspect it; the tokenizer itself uses the dispatch
#: tables above, which are derived-compatible by construction.
_OPERATORS: list[tuple[str, TokenKind]] = [
    *_TWO_CHAR_OPERATORS.items(),
    *_ONE_CHAR_OPERATORS.items(),
]

# ASCII character classes as frozensets: membership is a hash probe instead
# of a method call per character.  Non-ASCII characters fall back to the
# exact Unicode predicates the original scanner used.
_WHITESPACE = frozenset(" \t\r\n")
_ASCII_DIGITS = frozenset("0123456789")
_ASCII_IDENT_START = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_ASCII_IDENT_CONT = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_")

_intern = sys.intern


def _scan_number(text: str, i: int, n: int) -> tuple[int, bool]:
    """Scan a number literal starting at ``i``; returns (end, is_float).

    Continuation uses the ASCII digit set first and falls back to
    ``str.isdigit`` so non-ASCII digit characters behave exactly as in the
    pre-dispatch scanner (including its failure modes).
    """
    j = i
    is_float = False
    while j < n:
        c = text[j]
        if c in _ASCII_DIGITS or c == "_" or c.isdigit():
            j += 1
        else:
            break
    if j < n and text[j] == "." and j + 1 < n and text[j + 1].isdigit():
        is_float = True
        j += 1
        while j < n:
            c = text[j]
            if c in _ASCII_DIGITS or c == "_" or c.isdigit():
                j += 1
            else:
                break
    if j < n and text[j] in "eE" and (
        (j + 1 < n and text[j + 1].isdigit())
        or (j + 2 < n and text[j + 1] in "+-" and text[j + 2].isdigit())
    ):
        is_float = True
        j += 1
        if text[j] in "+-":
            j += 1
        while j < n and text[j].isdigit():
            j += 1
    return j, is_float


def _scan_identifier(text: str, i: int, n: int) -> int:
    """Scan an identifier starting at ``i``; returns the end offset."""
    j = i + 1
    while j < n:
        c = text[j]
        if c in _ASCII_IDENT_CONT:
            j += 1
        elif c >= "\x80" and c.isalnum():
            # Unicode alphanumeric continuation, as str.isalnum() defines it.
            j += 1
        else:
            break
    return j


def tokenize(text: str, filename: str = "<string>") -> list[Token]:
    """Tokenize Tydi-lang source text into a list of tokens ending with EOF."""
    source = SourceFile(text, filename)
    span = source.span
    tokens: list[Token] = []
    append = tokens.append
    i = 0
    n = len(text)

    ident_kind = TokenKind.IDENT
    while i < n:
        ch = text[i]

        # Whitespace (consume the whole run in one inner loop).
        if ch in _WHITESPACE:
            i += 1
            while i < n and text[i] in _WHITESPACE:
                i += 1
            continue

        # Identifier / keyword
        if ch in _ASCII_IDENT_START:
            j = _scan_identifier(text, i, n)
            word = _intern(text[i:j])
            append(Token(ident_kind, word, span(i, j), word))
            i = j
            continue

        # Number literal (integer or float)
        if ch in _ASCII_DIGITS:
            j, is_float = _scan_number(text, i, n)
            literal = text[i:j].replace("_", "")
            if is_float:
                append(Token(TokenKind.FLOAT, text[i:j], span(i, j), float(literal)))
            else:
                append(Token(TokenKind.INT, text[i:j], span(i, j), int(literal)))
            i = j
            continue

        # Comments and the slash operator share a first character.
        if ch == "/":
            nxt = text[i + 1] if i + 1 < n else ""
            if nxt == "/":
                end = text.find("\n", i)
                i = n if end == -1 else end + 1
                continue
            if nxt == "*":
                end = text.find("*/", i + 2)
                if end == -1:
                    raise TydiSyntaxError("unterminated block comment", span(i, n))
                i = end + 2
                continue
            append(Token(TokenKind.SLASH, "/", span(i, i + 1)))
            i += 1
            continue

        # String literal (single or double quoted, with backslash escapes)
        if ch == '"' or ch == "'":
            quote = ch
            j = i + 1
            chars: list[str] = []
            while j < n and text[j] != quote:
                if text[j] == "\\" and j + 1 < n:
                    escape = text[j + 1]
                    chars.append({"n": "\n", "t": "\t", "\\": "\\", quote: quote}.get(escape, escape))
                    j += 2
                else:
                    chars.append(text[j])
                    j += 1
            if j >= n:
                raise TydiSyntaxError("unterminated string literal", span(i, n))
            append(Token(TokenKind.STRING, text[i : j + 1], span(i, j + 1), "".join(chars)))
            i = j + 1
            continue

        # Operators and punctuation: two-character table first.
        kind = _TWO_CHAR_OPERATORS.get(text[i : i + 2])
        if kind is not None:
            append(Token(kind, text[i : i + 2], span(i, i + 2)))
            i += 2
            continue
        kind = _ONE_CHAR_OPERATORS.get(ch)
        if kind is not None:
            append(Token(kind, ch, span(i, i + 1)))
            i += 1
            continue

        # Non-ASCII fallback, in the original scanner's check order:
        # number first (str.isdigit), then identifier (str.isalpha).
        if ch >= "\x80":
            if ch.isdigit():
                j, is_float = _scan_number(text, i, n)
                literal = text[i:j].replace("_", "")
                if is_float:
                    append(Token(TokenKind.FLOAT, text[i:j], span(i, j), float(literal)))
                else:
                    append(Token(TokenKind.INT, text[i:j], span(i, j), int(literal)))
                i = j
                continue
            if ch.isalpha():
                j = _scan_identifier(text, i, n)
                word = _intern(text[i:j])
                append(Token(ident_kind, word, span(i, j), word))
                i = j
                continue

        raise TydiSyntaxError(f"unexpected character {ch!r}", span(i, i + 1))

    append(Token(TokenKind.EOF, "", span(n, n)))
    return tokens
