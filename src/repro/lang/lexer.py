"""Hand-written lexer for Tydi-lang.

The original compiler uses a Pest PEG grammar; we use a straightforward
single-pass scanner.  Comments (``//`` line and ``/* */`` block) and
whitespace are skipped; every other character must belong to a token or a
:class:`~repro.errors.TydiSyntaxError` is raised with the offending location.
"""

from __future__ import annotations

from repro.errors import TydiSyntaxError
from repro.lang.tokens import Token, TokenKind
from repro.utils.source import SourceFile

# Multi-character operators, longest first so that e.g. "=>" wins over "=".
_OPERATORS: list[tuple[str, TokenKind]] = [
    ("=>", TokenKind.ARROW),
    ("->", TokenKind.RANGE),
    ("==", TokenKind.EQ),
    ("!=", TokenKind.NEQ),
    ("<=", TokenKind.LE),
    (">=", TokenKind.GE),
    ("&&", TokenKind.AND),
    ("||", TokenKind.OR),
    ("{", TokenKind.LBRACE),
    ("}", TokenKind.RBRACE),
    ("(", TokenKind.LPAREN),
    (")", TokenKind.RPAREN),
    ("[", TokenKind.LBRACKET),
    ("]", TokenKind.RBRACKET),
    ("<", TokenKind.LANGLE),
    (">", TokenKind.RANGLE),
    (",", TokenKind.COMMA),
    (";", TokenKind.SEMICOLON),
    (":", TokenKind.COLON),
    (".", TokenKind.DOT),
    ("@", TokenKind.AT),
    ("=", TokenKind.ASSIGN),
    ("+", TokenKind.PLUS),
    ("-", TokenKind.MINUS),
    ("*", TokenKind.STAR),
    ("/", TokenKind.SLASH),
    ("%", TokenKind.PERCENT),
    ("^", TokenKind.CARET),
    ("!", TokenKind.NOT),
]


def tokenize(text: str, filename: str = "<string>") -> list[Token]:
    """Tokenize Tydi-lang source text into a list of tokens ending with EOF."""
    source = SourceFile(text, filename)
    tokens: list[Token] = []
    i = 0
    n = len(text)

    while i < n:
        ch = text[i]

        # Whitespace
        if ch in " \t\r\n":
            i += 1
            continue

        # Line comment
        if text.startswith("//", i):
            end = text.find("\n", i)
            i = n if end == -1 else end + 1
            continue

        # Block comment
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end == -1:
                raise TydiSyntaxError("unterminated block comment", source.span(i, n))
            i = end + 2
            continue

        # String literal (single or double quoted, with backslash escapes)
        if ch in "\"'":
            quote = ch
            j = i + 1
            chars: list[str] = []
            while j < n and text[j] != quote:
                if text[j] == "\\" and j + 1 < n:
                    escape = text[j + 1]
                    chars.append({"n": "\n", "t": "\t", "\\": "\\", quote: quote}.get(escape, escape))
                    j += 2
                else:
                    chars.append(text[j])
                    j += 1
            if j >= n:
                raise TydiSyntaxError("unterminated string literal", source.span(i, n))
            tokens.append(
                Token(TokenKind.STRING, text[i : j + 1], source.span(i, j + 1), "".join(chars))
            )
            i = j + 1
            continue

        # Number literal (integer or float)
        if ch.isdigit():
            j = i
            is_float = False
            while j < n and (text[j].isdigit() or text[j] == "_"):
                j += 1
            if j < n and text[j] == "." and j + 1 < n and text[j + 1].isdigit():
                is_float = True
                j += 1
                while j < n and (text[j].isdigit() or text[j] == "_"):
                    j += 1
            if j < n and text[j] in "eE" and (
                (j + 1 < n and text[j + 1].isdigit())
                or (j + 2 < n and text[j + 1] in "+-" and text[j + 2].isdigit())
            ):
                is_float = True
                j += 1
                if text[j] in "+-":
                    j += 1
                while j < n and text[j].isdigit():
                    j += 1
            literal = text[i:j].replace("_", "")
            if is_float:
                tokens.append(Token(TokenKind.FLOAT, text[i:j], source.span(i, j), float(literal)))
            else:
                tokens.append(Token(TokenKind.INT, text[i:j], source.span(i, j), int(literal)))
            i = j
            continue

        # Identifier / keyword
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            tokens.append(Token(TokenKind.IDENT, word, source.span(i, j), word))
            i = j
            continue

        # Operators and punctuation
        matched = False
        for literal, kind in _OPERATORS:
            if text.startswith(literal, i):
                tokens.append(Token(kind, literal, source.span(i, i + len(literal))))
                i += len(literal)
                matched = True
                break
        if matched:
            continue

        raise TydiSyntaxError(f"unexpected character {ch!r}", source.span(i, i + 1))

    tokens.append(Token(TokenKind.EOF, "", source.span(n, n)))
    return tokens
