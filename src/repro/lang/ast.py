"""Abstract syntax tree node definitions for Tydi-lang.

The parser (:mod:`repro.lang.parser`) produces these nodes; the evaluator
(:mod:`repro.lang.evaluate`) walks them.  Nodes are plain dataclasses holding
their source span for diagnostics.

The node families are:

* expressions (:class:`Expr` subclasses) -- the "math system" of Section IV-A,
* type expressions (:class:`TypeExpr` subclasses) -- Bit/Null/Stream/named,
* declarations (:class:`Declaration` subclasses) -- consts, types, groups,
  unions, streamlets, implementations,
* implementation body items (:class:`ImplItem` subclasses) -- instances,
  connections, ``for``/``if``/``assert`` and local constants,
* simulation constructs (:class:`SimulationBlock` and friends) -- Section V-A.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.utils.source import SourceSpan


@dataclass(frozen=True, slots=True)
class Node:
    """Base class of all AST nodes."""

    span: SourceSpan


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Expr(Node):
    """Base class of value expressions."""


@dataclass(frozen=True, slots=True)
class Literal(Expr):
    """An int, float, string or boolean literal."""

    value: object


@dataclass(frozen=True, slots=True)
class Identifier(Expr):
    """A reference to a variable, constant or template parameter."""

    name: str


@dataclass(frozen=True, slots=True)
class BinaryOp(Expr):
    """A binary operation: arithmetic, comparison or boolean."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True, slots=True)
class UnaryOp(Expr):
    """Unary minus or boolean not."""

    op: str
    operand: Expr


@dataclass(frozen=True, slots=True)
class Call(Expr):
    """A builtin function call such as ``ceil(log2(x))``."""

    function: str
    arguments: tuple[Expr, ...]


@dataclass(frozen=True, slots=True)
class ArrayLiteral(Expr):
    """An array literal ``[a, b, c]``."""

    items: tuple[Expr, ...]


@dataclass(frozen=True, slots=True)
class IndexExpr(Expr):
    """Indexing into an array value: ``values[i]``."""

    base: Expr
    index: Expr


@dataclass(frozen=True, slots=True)
class RangeExpr(Expr):
    """A half-open integer range ``start -> end`` used by ``for`` loops."""

    start: Expr
    end: Expr


# ---------------------------------------------------------------------------
# Type expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class TypeExpr(Node):
    """Base class of logical-type expressions."""


@dataclass(frozen=True, slots=True)
class NullTypeExpr(TypeExpr):
    """The ``Null`` type."""


@dataclass(frozen=True, slots=True)
class BitTypeExpr(TypeExpr):
    """``Bit(width_expression)``."""

    width: Expr


@dataclass(frozen=True, slots=True)
class NamedTypeExpr(TypeExpr):
    """A reference to a named type or a ``type`` template parameter."""

    name: str


@dataclass(frozen=True, slots=True)
class StreamTypeExpr(TypeExpr):
    """``Stream(element, d=..., t=..., c=..., dir=..., sync=...)``."""

    element: TypeExpr
    arguments: tuple[tuple[str, Expr], ...] = ()


# ---------------------------------------------------------------------------
# Template parameters and arguments
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class TemplateParam(Node):
    """One template parameter declaration.

    ``kind`` is one of ``int``, ``float``, ``string``, ``bool``,
    ``clockdomain``, ``type`` or ``impl``; when ``impl``, ``of_streamlet``
    names the streamlet the supplied implementation must be derived from.
    """

    name: str
    kind: str
    of_streamlet: Optional[str] = None


@dataclass(frozen=True, slots=True)
class TemplateArg(Node):
    """Base class of template arguments at an instantiation site."""


@dataclass(frozen=True, slots=True)
class TypeArg(TemplateArg):
    """``type <type-expression>`` argument."""

    type_expr: TypeExpr


@dataclass(frozen=True, slots=True)
class ImplArg(TemplateArg):
    """``impl <name>`` argument (an implementation passed as a value)."""

    name: str
    arguments: tuple["TemplateArg", ...] = ()


@dataclass(frozen=True, slots=True)
class ExprArg(TemplateArg):
    """A plain value argument."""

    expr: Expr


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Declaration(Node):
    """Base class of top-level declarations."""


@dataclass(frozen=True, slots=True)
class PackageDecl(Declaration):
    """``package name;`` -- names the current source file's package."""

    name: str


@dataclass(frozen=True, slots=True)
class UseDecl(Declaration):
    """``use name;`` -- imports another package's declarations."""

    name: str


@dataclass(frozen=True, slots=True)
class ConstDecl(Declaration):
    """``const name = expression;`` -- an immutable variable."""

    name: str
    value: Expr


@dataclass(frozen=True, slots=True)
class TypeAliasDecl(Declaration):
    """``type name = type-expression;``"""

    name: str
    type_expr: TypeExpr


@dataclass(frozen=True, slots=True)
class GroupDecl(Declaration):
    """``Group name { field: type, ... }``"""

    name: str
    fields: tuple[tuple[str, TypeExpr], ...]


@dataclass(frozen=True, slots=True)
class UnionDecl(Declaration):
    """``Union name { variant: type, ... }``"""

    name: str
    variants: tuple[tuple[str, TypeExpr], ...]


@dataclass(frozen=True, slots=True)
class PortDecl(Node):
    """A port of a streamlet, optionally an array of ports."""

    name: str
    type_expr: TypeExpr
    direction: str  # "in" | "out"
    array_size: Optional[Expr] = None
    clock_domain: Optional[str] = None


@dataclass(frozen=True, slots=True)
class StreamletDecl(Declaration):
    """``streamlet name<params> { ports }``"""

    name: str
    params: tuple[TemplateParam, ...]
    ports: tuple[PortDecl, ...]
    documentation: str = ""

    def is_template(self) -> bool:
        return bool(self.params)


# ---------------------------------------------------------------------------
# Implementation body items
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ImplItem(Node):
    """Base class of statements allowed inside an implementation body."""


@dataclass(frozen=True, slots=True)
class InstanceDecl(ImplItem):
    """``instance name(target<args>)[count]``"""

    name: str
    target: str
    arguments: tuple[TemplateArg, ...] = ()
    array_size: Optional[Expr] = None


@dataclass(frozen=True, slots=True)
class PortRefExpr(Node):
    """A reference to a port in a connection.

    ``owner`` is the instance name (``None`` for a port of the enclosing
    implementation); both the owner and the port may carry an index when
    referring to instance arrays or port arrays.
    """

    port: str
    owner: Optional[str] = None
    owner_index: Optional[Expr] = None
    port_index: Optional[Expr] = None


@dataclass(frozen=True, slots=True)
class ConnectionStmt(ImplItem):
    """``source => sink`` with optional attributes (e.g. ``@structural``)."""

    source: PortRefExpr
    sink: PortRefExpr
    attributes: tuple[str, ...] = ()


@dataclass(frozen=True, slots=True)
class ForStmt(ImplItem):
    """``for i in <array-or-range> { body }``"""

    variable: str
    iterable: Expr
    body: tuple[ImplItem, ...]


@dataclass(frozen=True, slots=True)
class IfStmt(ImplItem):
    """``if (cond) { body } else { body }``"""

    condition: Expr
    then_body: tuple[ImplItem, ...]
    else_body: tuple[ImplItem, ...] = ()


@dataclass(frozen=True, slots=True)
class AssertStmt(ImplItem):
    """``assert(expression)`` with an optional message string."""

    condition: Expr
    message: Optional[Expr] = None


@dataclass(frozen=True, slots=True)
class LocalConstDecl(ImplItem):
    """A ``const`` declaration local to an implementation body."""

    name: str
    value: Expr


# ---------------------------------------------------------------------------
# Simulation syntax (Section V-A)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class SimStmt(Node):
    """Base class of simulation statements inside an event handler."""


@dataclass(frozen=True, slots=True)
class StateDecl(Node):
    """``state name = "initial";`` -- a string-valued state variable."""

    name: str
    initial: Expr


@dataclass(frozen=True, slots=True)
class EventExpr(Node):
    """Base class of event expressions (receive events and combinations)."""


@dataclass(frozen=True, slots=True)
class ReceiveEvent(EventExpr):
    """``receive(port)`` -- fires when a data packet arrives on ``port``."""

    port: str


@dataclass(frozen=True, slots=True)
class CombinedEvent(EventExpr):
    """Boolean combination of events (``&&`` / ``||``)."""

    op: str
    left: EventExpr
    right: EventExpr


@dataclass(frozen=True, slots=True)
class SendStmt(SimStmt):
    """``send(port, expression);`` -- emit a data packet on an output port."""

    port: str
    value: Expr


@dataclass(frozen=True, slots=True)
class AckStmt(SimStmt):
    """``ack(port);`` -- acknowledge the handshake on an input port."""

    port: str


@dataclass(frozen=True, slots=True)
class DelayStmt(SimStmt):
    """``delay n;`` -- advance simulated time by ``n`` cycles."""

    cycles: Expr


@dataclass(frozen=True, slots=True)
class SetStateStmt(SimStmt):
    """``state name = expression;`` -- update a state variable."""

    name: str
    value: Expr


@dataclass(frozen=True, slots=True)
class SimIfStmt(SimStmt):
    """``if (cond) { ... } else { ... }`` inside an event handler."""

    condition: Expr
    then_body: tuple[SimStmt, ...]
    else_body: tuple[SimStmt, ...] = ()


@dataclass(frozen=True, slots=True)
class EventHandler(Node):
    """``on <event-expression> { statements }``"""

    event: EventExpr
    body: tuple[SimStmt, ...]


@dataclass(frozen=True, slots=True)
class SimulationBlock(Node):
    """``simulation { state ...; on ... { ... } }`` inside an implementation."""

    states: tuple[StateDecl, ...]
    handlers: tuple[EventHandler, ...]


# ---------------------------------------------------------------------------
# Implementations and source files
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ImplDecl(Declaration):
    """``impl name<params> of streamlet<args> { body }``.

    ``external=True`` marks implementations whose behaviour lives outside the
    Tydi world; their body may only contain a simulation block.
    """

    name: str
    params: tuple[TemplateParam, ...]
    streamlet: str
    streamlet_args: tuple[TemplateArg, ...]
    body: tuple[ImplItem, ...]
    external: bool = False
    simulation: Optional[SimulationBlock] = None
    documentation: str = ""

    def is_template(self) -> bool:
        return bool(self.params)


@dataclass(frozen=True, slots=True)
class TopDecl(Declaration):
    """``top name<args>;`` -- designates the top-level implementation."""

    name: str
    arguments: tuple[TemplateArg, ...] = ()


@dataclass(slots=True)
class SourceUnit:
    """One parsed source file: package name plus its declarations."""

    package: str
    declarations: list[Declaration] = field(default_factory=list)
    uses: list[str] = field(default_factory=list)
    filename: str = "<string>"
