"""Expression evaluator: the "math system" of Tydi-lang (Section IV-A).

The paper's motivating example is computing the bit width of a SQL decimal:
``Bit(ceil(log2(10^15 - 1)))``.  The evaluator therefore supports integer and
floating-point arithmetic (``+ - * / % ^``), comparisons, boolean logic,
string concatenation, array literals and indexing, half-open ranges
(``a -> b``) for ``for`` loops, and a small library of builtin math functions
(``ceil``, ``floor``, ``round``, ``log2``, ``log10``, ``log``, ``sqrt``,
``abs``, ``min``, ``max``, ``pow``, ``len``, ``range``, ``clockdomain``).

Integer-preserving semantics: operations on two ints yield an int where the
mathematical result is integral (``/`` yields a float unless it divides
evenly), and ``ceil``/``floor``/``round`` always return ints so they can be
used directly as ``Bit`` widths.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.errors import TydiEvaluationError, TydiTypeError
from repro.lang import ast
from repro.lang.values import ClockDomainValue, Scope, describe_value


def _require_number(value: object, span: object, context: str) -> float | int:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TydiTypeError(f"{context} requires a number, got {describe_value(value)}", span)
    return value


def _require_int(value: object, span: object, context: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise TydiTypeError(f"{context} requires an integer, got {describe_value(value)}", span)
    return value


def _require_bool(value: object, span: object, context: str) -> bool:
    if not isinstance(value, bool):
        raise TydiTypeError(f"{context} requires a boolean, got {describe_value(value)}", span)
    return value


def _normalize_number(value: float | int) -> float | int:
    """Collapse floats that are exactly integral back to int."""
    if isinstance(value, float) and value.is_integer() and abs(value) < 2**63:
        return int(value)
    return value


def _builtin_range(args: list[object], span: object) -> list[int]:
    if len(args) == 1:
        stop = _require_int(args[0], span, "range()")
        return list(range(stop))
    if len(args) == 2:
        start = _require_int(args[0], span, "range()")
        stop = _require_int(args[1], span, "range()")
        return list(range(start, stop))
    if len(args) == 3:
        start = _require_int(args[0], span, "range()")
        stop = _require_int(args[1], span, "range()")
        step = _require_int(args[2], span, "range()")
        if step == 0:
            raise TydiEvaluationError("range() step must not be zero", span)
        return list(range(start, stop, step))
    raise TydiEvaluationError(f"range() takes 1-3 arguments, got {len(args)}", span)


def _one_number(name: str, fn: Callable[[float], float], integral: bool = False):
    def wrapper(args: list[object], span: object) -> object:
        if len(args) != 1:
            raise TydiEvaluationError(f"{name}() takes exactly 1 argument, got {len(args)}", span)
        x = _require_number(args[0], span, f"{name}()")
        try:
            result = fn(x)
        except ValueError as exc:
            raise TydiEvaluationError(f"{name}({x}) is not defined: {exc}", span) from exc
        return int(result) if integral else _normalize_number(result)

    return wrapper


def _builtin_min_max(name: str, fn: Callable) -> Callable:
    def wrapper(args: list[object], span: object) -> object:
        if not args:
            raise TydiEvaluationError(f"{name}() requires at least one argument", span)
        if len(args) == 1 and isinstance(args[0], (list, tuple)):
            items = list(args[0])
        else:
            items = args
        for item in items:
            _require_number(item, span, f"{name}()")
        return _normalize_number(fn(items))

    return wrapper


def _builtin_len(args: list[object], span: object) -> int:
    if len(args) != 1:
        raise TydiEvaluationError(f"len() takes exactly 1 argument, got {len(args)}", span)
    value = args[0]
    if isinstance(value, (list, tuple, str)):
        return len(value)
    raise TydiTypeError(f"len() requires an array or string, got {describe_value(value)}", span)


def _builtin_pow(args: list[object], span: object) -> object:
    if len(args) != 2:
        raise TydiEvaluationError(f"pow() takes exactly 2 arguments, got {len(args)}", span)
    base = _require_number(args[0], span, "pow()")
    exponent = _require_number(args[1], span, "pow()")
    return _normalize_number(base**exponent)


def _builtin_clockdomain(args: list[object], span: object) -> ClockDomainValue:
    if len(args) != 1 or not isinstance(args[0], str):
        raise TydiEvaluationError("clockdomain() takes exactly one string argument", span)
    return ClockDomainValue(args[0])


def _builtin_concat(args: list[object], span: object) -> str:
    return "".join(str(a) for a in args)


BUILTIN_FUNCTIONS: dict[str, Callable[[list[object], object], object]] = {
    "ceil": _one_number("ceil", math.ceil, integral=True),
    "floor": _one_number("floor", math.floor, integral=True),
    "round": _one_number("round", round, integral=True),
    "log2": _one_number("log2", math.log2),
    "log10": _one_number("log10", math.log10),
    "log": _one_number("log", math.log),
    "sqrt": _one_number("sqrt", math.sqrt),
    "abs": _one_number("abs", abs),
    "min": _builtin_min_max("min", min),
    "max": _builtin_min_max("max", max),
    "pow": _builtin_pow,
    "len": _builtin_len,
    "range": _builtin_range,
    "clockdomain": _builtin_clockdomain,
    "concat": _builtin_concat,
}


def evaluate_expr(expr: ast.Expr, scope: Scope) -> object:
    """Evaluate an expression AST node to a runtime value."""
    if isinstance(expr, ast.Literal):
        return expr.value

    if isinstance(expr, ast.Identifier):
        return scope.lookup(expr.name, expr.span)

    if isinstance(expr, ast.ArrayLiteral):
        return [evaluate_expr(item, scope) for item in expr.items]

    if isinstance(expr, ast.IndexExpr):
        base = evaluate_expr(expr.base, scope)
        index = evaluate_expr(expr.index, scope)
        if not isinstance(base, (list, tuple)):
            raise TydiTypeError(
                f"only arrays can be indexed, got {describe_value(base)}", expr.span
            )
        idx = _require_int(index, expr.span, "array index")
        if idx < 0 or idx >= len(base):
            raise TydiEvaluationError(
                f"array index {idx} out of bounds for array of length {len(base)}", expr.span
            )
        return base[idx]

    if isinstance(expr, ast.RangeExpr):
        start = _require_int(evaluate_expr(expr.start, scope), expr.span, "range start")
        end = _require_int(evaluate_expr(expr.end, scope), expr.span, "range end")
        return list(range(start, end))

    if isinstance(expr, ast.Call):
        function = BUILTIN_FUNCTIONS.get(expr.function)
        if function is None:
            raise TydiEvaluationError(f"unknown function {expr.function!r}", expr.span)
        arguments = [evaluate_expr(a, scope) for a in expr.arguments]
        return function(arguments, expr.span)

    if isinstance(expr, ast.UnaryOp):
        operand = evaluate_expr(expr.operand, scope)
        if expr.op == "-":
            return _normalize_number(-_require_number(operand, expr.span, "unary '-'"))
        if expr.op == "!":
            return not _require_bool(operand, expr.span, "unary '!'")
        raise TydiEvaluationError(f"unknown unary operator {expr.op!r}", expr.span)

    if isinstance(expr, ast.BinaryOp):
        return _evaluate_binary(expr, scope)

    raise TydiEvaluationError(f"cannot evaluate expression node {type(expr).__name__}", expr.span)


def _evaluate_binary(expr: ast.BinaryOp, scope: Scope) -> object:
    op = expr.op

    # Short-circuiting boolean operators.
    if op in ("&&", "||"):
        left = _require_bool(evaluate_expr(expr.left, scope), expr.span, f"operator {op!r}")
        if op == "&&" and not left:
            return False
        if op == "||" and left:
            return True
        return _require_bool(evaluate_expr(expr.right, scope), expr.span, f"operator {op!r}")

    left = evaluate_expr(expr.left, scope)
    right = evaluate_expr(expr.right, scope)

    if op in ("==", "!="):
        equal = _values_equal(left, right)
        return equal if op == "==" else not equal

    if op == "+":
        # String concatenation and array concatenation are allowed.
        if isinstance(left, str) or isinstance(right, str):
            if isinstance(left, str) and isinstance(right, str):
                return left + right
            raise TydiTypeError(
                f"cannot add {describe_value(left)} and {describe_value(right)}", expr.span
            )
        if isinstance(left, list) and isinstance(right, list):
            return left + right

    if op in ("+", "-", "*", "/", "%", "^"):
        lnum = _require_number(left, expr.span, f"operator {op!r}")
        rnum = _require_number(right, expr.span, f"operator {op!r}")
        try:
            if op == "+":
                result: float | int = lnum + rnum
            elif op == "-":
                result = lnum - rnum
            elif op == "*":
                result = lnum * rnum
            elif op == "/":
                if rnum == 0:
                    raise TydiEvaluationError("division by zero", expr.span)
                result = lnum / rnum
            elif op == "%":
                if rnum == 0:
                    raise TydiEvaluationError("modulo by zero", expr.span)
                result = lnum % rnum
            else:  # "^"
                result = lnum**rnum
        except OverflowError as exc:
            raise TydiEvaluationError(f"arithmetic overflow: {exc}", expr.span) from exc
        return _normalize_number(result)

    if op in ("<", "<=", ">", ">="):
        if isinstance(left, str) and isinstance(right, str):
            pass  # lexicographic comparison of strings is allowed
        else:
            _require_number(left, expr.span, f"operator {op!r}")
            _require_number(right, expr.span, f"operator {op!r}")
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        return left >= right

    raise TydiEvaluationError(f"unknown binary operator {op!r}", expr.span)


def _values_equal(left: object, right: object) -> bool:
    """Equality across value kinds; numbers compare numerically."""
    if isinstance(left, bool) or isinstance(right, bool):
        return isinstance(left, bool) and isinstance(right, bool) and left == right
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return float(left) == float(right)
    if isinstance(left, ClockDomainValue) and isinstance(right, ClockDomainValue):
        return left.name == right.name
    return type(left) is type(right) and left == right
