"""Recursive-descent parser for Tydi-lang.

The grammar accepted here follows the constructs used throughout the paper
(Sections IV and V); a compact summary:

.. code-block:: text

    file          := (package | use | const | type | group | union
                      | streamlet | impl | top)*
    package       := "package" IDENT ";"
    use           := "use" IDENT ";"
    const         := "const" IDENT "=" expr ";"
    type          := "type" IDENT "=" type_expr ";"
    group         := "Group" IDENT "{" (IDENT ":" type_expr ","?)* "}"
    union         := "Union" IDENT "{" (IDENT ":" type_expr ","?)* "}"
    streamlet     := "streamlet" IDENT params? "{" port* "}"
    port          := IDENT ":" type_expr ("in"|"out") ("[" expr "]")?
                     ("@" IDENT)? ","?
    impl          := "external"? "impl" IDENT params? "of" IDENT args?
                     ("{" impl_item* "}" | ";")
    impl_item     := instance | connection | for | if | assert | const
                     | simulation
    instance      := "instance" IDENT "(" IDENT args? ")" ("[" expr "]")? ","?
    connection    := port_ref "=>" port_ref ("@" IDENT)* ","?
    for           := "for" IDENT "in" expr "{" impl_item* "}"
    if            := "if" "(" expr ")" "{" impl_item* "}"
                     ("else" "{" impl_item* "}")?
    assert        := "assert" "(" expr ("," expr)? ")" ";"?
    params        := "<" IDENT ":" kind ("," IDENT ":" kind)* ">"
    kind          := "int"|"float"|"string"|"bool"|"clockdomain"|"type"
                     | "impl" "of" IDENT
    args          := "<" arg ("," arg)* ">"
    arg           := "type" type_expr | "impl" IDENT args? | expr
    type_expr     := "Null" | "Bit" "(" expr ")" | IDENT
                     | "Stream" "(" type_expr ("," IDENT "=" expr)* ")"
    expr          := standard precedence-climbing expression grammar with
                     ``|| && == != < <= > >= + - * / % ^ unary- !`` plus
                     calls, arrays, indexing and ``a -> b`` ranges
    simulation    := "simulation" "{" (state | handler)* "}"
    state         := "state" IDENT "=" expr ";"
    handler       := "on" event "{" sim_stmt* "}"
    event         := "receive" "(" IDENT ")" (("&&"|"||") event)*
    sim_stmt      := "send" "(" IDENT "," expr ")" ";" | "ack" "(" IDENT ")" ";"
                     | "delay" expr ";" | "state" IDENT "=" expr ";"
                     | "if" "(" expr ")" "{" sim_stmt* "}" ("else" ...)?
"""

from __future__ import annotations

from typing import Optional

from repro.errors import TydiSyntaxError
from repro.lang import ast
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token, TokenKind
from repro.utils.source import SourceSpan


class Parser:
    """Token-stream parser producing a :class:`repro.lang.ast.SourceUnit`."""

    def __init__(self, tokens: list[Token], filename: str = "<string>") -> None:
        self.tokens = tokens
        self.filename = filename
        self.position = 0

    # -- token-stream helpers ------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def at(self, kind: TokenKind, text: Optional[str] = None, offset: int = 0) -> bool:
        token = self.peek(offset)
        if token.kind is not kind:
            return False
        return text is None or token.text == text

    def at_keyword(self, word: str, offset: int = 0) -> bool:
        return self.at(TokenKind.IDENT, word, offset)

    def advance(self) -> Token:
        token = self.peek()
        if token.kind is not TokenKind.EOF:
            self.position += 1
        return token

    def expect(self, kind: TokenKind, text: Optional[str] = None) -> Token:
        token = self.peek()
        if token.kind is not kind or (text is not None and token.text != text):
            expected = text if text is not None else kind.value
            raise TydiSyntaxError(
                f"expected {expected!r} but found {token.text or token.kind.value!r}", token.span
            )
        return self.advance()

    def expect_keyword(self, word: str) -> Token:
        return self.expect(TokenKind.IDENT, word)

    def expect_identifier(self) -> Token:
        token = self.peek()
        if token.kind is not TokenKind.IDENT:
            raise TydiSyntaxError(
                f"expected an identifier but found {token.text or token.kind.value!r}", token.span
            )
        return self.advance()

    def optional(self, kind: TokenKind, text: Optional[str] = None) -> Optional[Token]:
        if self.at(kind, text):
            return self.advance()
        return None

    def span_from(self, start: Token) -> SourceSpan:
        end = self.tokens[max(0, self.position - 1)]
        return start.span.merge(end.span)

    # -- top level -----------------------------------------------------------

    def parse_unit(self) -> ast.SourceUnit:
        unit = ast.SourceUnit(package="main", filename=self.filename)
        while not self.at(TokenKind.EOF):
            declaration = self.parse_declaration()
            if isinstance(declaration, ast.PackageDecl):
                unit.package = declaration.name
            elif isinstance(declaration, ast.UseDecl):
                unit.uses.append(declaration.name)
            unit.declarations.append(declaration)
        return unit

    def parse_declaration(self) -> ast.Declaration:
        token = self.peek()
        if token.kind is not TokenKind.IDENT:
            raise TydiSyntaxError(
                f"expected a declaration but found {token.text or token.kind.value!r}", token.span
            )
        word = token.text
        if word == "package":
            return self.parse_package()
        if word == "use":
            return self.parse_use()
        if word == "const":
            return self.parse_const()
        if word == "type":
            return self.parse_type_alias()
        if word == "Group":
            return self.parse_group()
        if word == "Union":
            return self.parse_union()
        if word == "streamlet":
            return self.parse_streamlet()
        if word in ("impl", "external"):
            return self.parse_impl()
        if word == "top":
            return self.parse_top()
        raise TydiSyntaxError(f"unexpected declaration keyword {word!r}", token.span)

    def parse_package(self) -> ast.PackageDecl:
        start = self.expect_keyword("package")
        name = self.expect_identifier().text
        self.expect(TokenKind.SEMICOLON)
        return ast.PackageDecl(span=self.span_from(start), name=name)

    def parse_use(self) -> ast.UseDecl:
        start = self.expect_keyword("use")
        name = self.expect_identifier().text
        self.expect(TokenKind.SEMICOLON)
        return ast.UseDecl(span=self.span_from(start), name=name)

    def parse_const(self) -> ast.ConstDecl:
        start = self.expect_keyword("const")
        name = self.expect_identifier().text
        self.expect(TokenKind.ASSIGN)
        value = self.parse_expression()
        self.expect(TokenKind.SEMICOLON)
        return ast.ConstDecl(span=self.span_from(start), name=name, value=value)

    def parse_type_alias(self) -> ast.TypeAliasDecl:
        start = self.expect_keyword("type")
        name = self.expect_identifier().text
        self.expect(TokenKind.ASSIGN)
        type_expr = self.parse_type_expr()
        self.expect(TokenKind.SEMICOLON)
        return ast.TypeAliasDecl(span=self.span_from(start), name=name, type_expr=type_expr)

    def _parse_field_list(self) -> tuple[tuple[str, ast.TypeExpr], ...]:
        fields: list[tuple[str, ast.TypeExpr]] = []
        self.expect(TokenKind.LBRACE)
        while not self.at(TokenKind.RBRACE):
            field_name = self.expect_identifier().text
            self.expect(TokenKind.COLON)
            field_type = self.parse_type_expr()
            fields.append((field_name, field_type))
            if not self.optional(TokenKind.COMMA):
                break
        self.expect(TokenKind.RBRACE)
        return tuple(fields)

    def parse_group(self) -> ast.GroupDecl:
        start = self.expect_keyword("Group")
        name = self.expect_identifier().text
        fields = self._parse_field_list()
        return ast.GroupDecl(span=self.span_from(start), name=name, fields=fields)

    def parse_union(self) -> ast.UnionDecl:
        start = self.expect_keyword("Union")
        name = self.expect_identifier().text
        variants = self._parse_field_list()
        return ast.UnionDecl(span=self.span_from(start), name=name, variants=variants)

    def parse_top(self) -> ast.TopDecl:
        start = self.expect_keyword("top")
        name = self.expect_identifier().text
        arguments = self.parse_template_args() if self.at(TokenKind.LANGLE) else ()
        self.expect(TokenKind.SEMICOLON)
        return ast.TopDecl(span=self.span_from(start), name=name, arguments=arguments)

    # -- template parameters and arguments ------------------------------------

    def parse_template_params(self) -> tuple[ast.TemplateParam, ...]:
        params: list[ast.TemplateParam] = []
        self.expect(TokenKind.LANGLE)
        while not self.at(TokenKind.RANGLE):
            start = self.expect_identifier()
            self.expect(TokenKind.COLON)
            kind_token = self.expect_identifier()
            kind = kind_token.text
            of_streamlet: Optional[str] = None
            if kind == "impl":
                self.expect_keyword("of")
                of_streamlet = self.expect_identifier().text
            elif kind not in ("int", "float", "string", "bool", "clockdomain", "type"):
                raise TydiSyntaxError(f"unknown template parameter kind {kind!r}", kind_token.span)
            params.append(
                ast.TemplateParam(
                    span=self.span_from(start), name=start.text, kind=kind, of_streamlet=of_streamlet
                )
            )
            if not self.optional(TokenKind.COMMA):
                break
        self.expect(TokenKind.RANGLE)
        return tuple(params)

    def parse_template_args(self) -> tuple[ast.TemplateArg, ...]:
        args: list[ast.TemplateArg] = []
        self.expect(TokenKind.LANGLE)
        while not self.at(TokenKind.RANGLE):
            args.append(self.parse_template_arg())
            if not self.optional(TokenKind.COMMA):
                break
        self.expect(TokenKind.RANGLE)
        return tuple(args)

    def parse_template_arg(self) -> ast.TemplateArg:
        token = self.peek()
        if token.is_keyword("type"):
            start = self.advance()
            type_expr = self.parse_type_expr()
            return ast.TypeArg(span=self.span_from(start), type_expr=type_expr)
        if token.is_keyword("impl"):
            start = self.advance()
            name = self.expect_identifier().text
            inner_args: tuple[ast.TemplateArg, ...] = ()
            if self.at(TokenKind.LANGLE):
                inner_args = self.parse_template_args()
            return ast.ImplArg(span=self.span_from(start), name=name, arguments=inner_args)
        start = token
        expr = self.parse_expression(inside_template_args=True)
        return ast.ExprArg(span=self.span_from(start), expr=expr)

    # -- streamlets ------------------------------------------------------------

    def parse_streamlet(self) -> ast.StreamletDecl:
        start = self.expect_keyword("streamlet")
        name = self.expect_identifier().text
        params = self.parse_template_params() if self.at(TokenKind.LANGLE) else ()
        ports: list[ast.PortDecl] = []
        self.expect(TokenKind.LBRACE)
        while not self.at(TokenKind.RBRACE):
            ports.append(self.parse_port())
            if not self.optional(TokenKind.COMMA):
                self.optional(TokenKind.SEMICOLON)
        self.expect(TokenKind.RBRACE)
        return ast.StreamletDecl(
            span=self.span_from(start), name=name, params=params, ports=tuple(ports)
        )

    def parse_port(self) -> ast.PortDecl:
        start = self.expect_identifier()
        self.expect(TokenKind.COLON)
        type_expr = self.parse_type_expr()
        direction_token = self.expect_identifier()
        if direction_token.text not in ("in", "out"):
            raise TydiSyntaxError(
                f"port direction must be 'in' or 'out', got {direction_token.text!r}",
                direction_token.span,
            )
        array_size: Optional[ast.Expr] = None
        if self.optional(TokenKind.LBRACKET):
            array_size = self.parse_expression()
            self.expect(TokenKind.RBRACKET)
        clock_domain: Optional[str] = None
        if self.optional(TokenKind.AT):
            clock_domain = self.expect_identifier().text
        return ast.PortDecl(
            span=self.span_from(start),
            name=start.text,
            type_expr=type_expr,
            direction=direction_token.text,
            array_size=array_size,
            clock_domain=clock_domain,
        )

    # -- implementations -------------------------------------------------------

    def parse_impl(self) -> ast.ImplDecl:
        start = self.peek()
        external = False
        if self.at_keyword("external"):
            external = True
            self.advance()
        self.expect_keyword("impl")
        name = self.expect_identifier().text
        params = self.parse_template_params() if self.at(TokenKind.LANGLE) else ()
        self.expect_keyword("of")
        streamlet = self.expect_identifier().text
        streamlet_args = self.parse_template_args() if self.at(TokenKind.LANGLE) else ()

        body: tuple[ast.ImplItem, ...] = ()
        simulation: Optional[ast.SimulationBlock] = None
        if self.optional(TokenKind.SEMICOLON):
            pass  # external impl with no body
        else:
            body, simulation = self.parse_impl_body()
        return ast.ImplDecl(
            span=self.span_from(start),
            name=name,
            params=params,
            streamlet=streamlet,
            streamlet_args=streamlet_args,
            body=body,
            external=external,
            simulation=simulation,
        )

    def parse_impl_body(self) -> tuple[tuple[ast.ImplItem, ...], Optional[ast.SimulationBlock]]:
        self.expect(TokenKind.LBRACE)
        items: list[ast.ImplItem] = []
        simulation: Optional[ast.SimulationBlock] = None
        while not self.at(TokenKind.RBRACE):
            if self.at_keyword("simulation"):
                if simulation is not None:
                    raise TydiSyntaxError(
                        "an implementation may contain at most one simulation block",
                        self.peek().span,
                    )
                simulation = self.parse_simulation_block()
                continue
            items.append(self.parse_impl_item())
        self.expect(TokenKind.RBRACE)
        return tuple(items), simulation

    def parse_impl_items_block(self) -> tuple[ast.ImplItem, ...]:
        self.expect(TokenKind.LBRACE)
        items: list[ast.ImplItem] = []
        while not self.at(TokenKind.RBRACE):
            items.append(self.parse_impl_item())
        self.expect(TokenKind.RBRACE)
        return tuple(items)

    def parse_impl_item(self) -> ast.ImplItem:
        token = self.peek()
        if token.is_keyword("instance"):
            return self.parse_instance()
        if token.is_keyword("for"):
            return self.parse_for()
        if token.is_keyword("if"):
            return self.parse_if()
        if token.is_keyword("assert"):
            return self.parse_assert()
        if token.is_keyword("const"):
            start = self.advance()
            name = self.expect_identifier().text
            self.expect(TokenKind.ASSIGN)
            value = self.parse_expression()
            self._end_statement()
            return ast.LocalConstDecl(span=self.span_from(start), name=name, value=value)
        return self.parse_connection()

    def _end_statement(self) -> None:
        """Consume a statement terminator: ``,`` or ``;`` (either accepted)."""
        if not (self.optional(TokenKind.COMMA) or self.optional(TokenKind.SEMICOLON)):
            # Allow the last statement before '}' to omit its terminator.
            if not self.at(TokenKind.RBRACE):
                token = self.peek()
                raise TydiSyntaxError(
                    f"expected ',' or ';' after statement, found {token.text or token.kind.value!r}",
                    token.span,
                )

    def parse_instance(self) -> ast.InstanceDecl:
        start = self.expect_keyword("instance")
        name = self.expect_identifier().text
        self.expect(TokenKind.LPAREN)
        target = self.expect_identifier().text
        arguments = self.parse_template_args() if self.at(TokenKind.LANGLE) else ()
        self.expect(TokenKind.RPAREN)
        array_size: Optional[ast.Expr] = None
        if self.optional(TokenKind.LBRACKET):
            array_size = self.parse_expression()
            self.expect(TokenKind.RBRACKET)
        self._end_statement()
        return ast.InstanceDecl(
            span=self.span_from(start),
            name=name,
            target=target,
            arguments=arguments,
            array_size=array_size,
        )

    def parse_port_ref(self) -> ast.PortRefExpr:
        start = self.expect_identifier()
        first = start.text
        first_index: Optional[ast.Expr] = None
        if self.optional(TokenKind.LBRACKET):
            first_index = self.parse_expression()
            self.expect(TokenKind.RBRACKET)
        if self.optional(TokenKind.DOT):
            port = self.expect_identifier().text
            port_index: Optional[ast.Expr] = None
            if self.optional(TokenKind.LBRACKET):
                port_index = self.parse_expression()
                self.expect(TokenKind.RBRACKET)
            return ast.PortRefExpr(
                span=self.span_from(start),
                port=port,
                owner=first,
                owner_index=first_index,
                port_index=port_index,
            )
        return ast.PortRefExpr(
            span=self.span_from(start), port=first, owner=None, owner_index=None, port_index=first_index
        )

    def parse_connection(self) -> ast.ConnectionStmt:
        start = self.peek()
        source = self.parse_port_ref()
        self.expect(TokenKind.ARROW)
        sink = self.parse_port_ref()
        attributes: list[str] = []
        while self.optional(TokenKind.AT):
            attributes.append(self.expect_identifier().text)
        self._end_statement()
        return ast.ConnectionStmt(
            span=self.span_from(start), source=source, sink=sink, attributes=tuple(attributes)
        )

    def parse_for(self) -> ast.ForStmt:
        start = self.expect_keyword("for")
        variable = self.expect_identifier().text
        self.expect_keyword("in")
        iterable = self.parse_expression()
        body = self.parse_impl_items_block()
        self.optional(TokenKind.COMMA) or self.optional(TokenKind.SEMICOLON)
        return ast.ForStmt(span=self.span_from(start), variable=variable, iterable=iterable, body=body)

    def parse_if(self) -> ast.IfStmt:
        start = self.expect_keyword("if")
        self.expect(TokenKind.LPAREN)
        condition = self.parse_expression()
        self.expect(TokenKind.RPAREN)
        then_body = self.parse_impl_items_block()
        else_body: tuple[ast.ImplItem, ...] = ()
        if self.at_keyword("else"):
            self.advance()
            if self.at_keyword("if"):
                else_body = (self.parse_if(),)
            else:
                else_body = self.parse_impl_items_block()
        self.optional(TokenKind.COMMA) or self.optional(TokenKind.SEMICOLON)
        return ast.IfStmt(
            span=self.span_from(start), condition=condition, then_body=then_body, else_body=else_body
        )

    def parse_assert(self) -> ast.AssertStmt:
        start = self.expect_keyword("assert")
        self.expect(TokenKind.LPAREN)
        condition = self.parse_expression()
        message: Optional[ast.Expr] = None
        if self.optional(TokenKind.COMMA):
            message = self.parse_expression()
        self.expect(TokenKind.RPAREN)
        self._end_statement()
        return ast.AssertStmt(span=self.span_from(start), condition=condition, message=message)

    # -- simulation blocks -----------------------------------------------------

    def parse_simulation_block(self) -> ast.SimulationBlock:
        self.expect_keyword("simulation")
        self.expect(TokenKind.LBRACE)
        states: list[ast.StateDecl] = []
        handlers: list[ast.EventHandler] = []
        while not self.at(TokenKind.RBRACE):
            if self.at_keyword("state"):
                start = self.advance()
                name = self.expect_identifier().text
                self.expect(TokenKind.ASSIGN)
                initial = self.parse_expression()
                self.expect(TokenKind.SEMICOLON)
                states.append(ast.StateDecl(span=self.span_from(start), name=name, initial=initial))
            elif self.at_keyword("on"):
                handlers.append(self.parse_event_handler())
            else:
                token = self.peek()
                raise TydiSyntaxError(
                    f"expected 'state' or 'on' in simulation block, found {token.text!r}", token.span
                )
        self.expect(TokenKind.RBRACE)
        # Use the block's closing brace span as the block span.
        span = self.tokens[self.position - 1].span
        return ast.SimulationBlock(span=span, states=tuple(states), handlers=tuple(handlers))

    def parse_event_handler(self) -> ast.EventHandler:
        start = self.expect_keyword("on")
        event = self.parse_event_expr()
        body = self.parse_sim_body()
        return ast.EventHandler(span=self.span_from(start), event=event, body=body)

    def parse_event_expr(self) -> ast.EventExpr:
        left = self.parse_event_atom()
        while self.at(TokenKind.AND) or self.at(TokenKind.OR):
            op_token = self.advance()
            right = self.parse_event_atom()
            left = ast.CombinedEvent(
                span=left.span.merge(right.span),
                op="&&" if op_token.kind is TokenKind.AND else "||",
                left=left,
                right=right,
            )
        return left

    def parse_event_atom(self) -> ast.EventExpr:
        if self.optional(TokenKind.LPAREN):
            event = self.parse_event_expr()
            self.expect(TokenKind.RPAREN)
            return event
        start = self.expect_keyword("receive")
        self.expect(TokenKind.LPAREN)
        port = self.expect_identifier().text
        self.expect(TokenKind.RPAREN)
        return ast.ReceiveEvent(span=self.span_from(start), port=port)

    def parse_sim_body(self) -> tuple[ast.SimStmt, ...]:
        self.expect(TokenKind.LBRACE)
        statements: list[ast.SimStmt] = []
        while not self.at(TokenKind.RBRACE):
            statements.append(self.parse_sim_stmt())
        self.expect(TokenKind.RBRACE)
        return tuple(statements)

    def parse_sim_stmt(self) -> ast.SimStmt:
        token = self.peek()
        if token.is_keyword("send"):
            start = self.advance()
            self.expect(TokenKind.LPAREN)
            port = self.expect_identifier().text
            self.expect(TokenKind.COMMA)
            value = self.parse_expression()
            self.expect(TokenKind.RPAREN)
            self.expect(TokenKind.SEMICOLON)
            return ast.SendStmt(span=self.span_from(start), port=port, value=value)
        if token.is_keyword("ack"):
            start = self.advance()
            self.expect(TokenKind.LPAREN)
            port = self.expect_identifier().text
            self.expect(TokenKind.RPAREN)
            self.expect(TokenKind.SEMICOLON)
            return ast.AckStmt(span=self.span_from(start), port=port)
        if token.is_keyword("delay"):
            start = self.advance()
            cycles = self.parse_expression()
            self.expect(TokenKind.SEMICOLON)
            return ast.DelayStmt(span=self.span_from(start), cycles=cycles)
        if token.is_keyword("state"):
            start = self.advance()
            name = self.expect_identifier().text
            self.expect(TokenKind.ASSIGN)
            value = self.parse_expression()
            self.expect(TokenKind.SEMICOLON)
            return ast.SetStateStmt(span=self.span_from(start), name=name, value=value)
        if token.is_keyword("if"):
            start = self.advance()
            self.expect(TokenKind.LPAREN)
            condition = self.parse_expression()
            self.expect(TokenKind.RPAREN)
            then_body = self.parse_sim_body()
            else_body: tuple[ast.SimStmt, ...] = ()
            if self.at_keyword("else"):
                self.advance()
                else_body = self.parse_sim_body()
            return ast.SimIfStmt(
                span=self.span_from(start), condition=condition, then_body=then_body, else_body=else_body
            )
        raise TydiSyntaxError(
            f"expected a simulation statement, found {token.text or token.kind.value!r}", token.span
        )

    # -- type expressions --------------------------------------------------------

    def parse_type_expr(self) -> ast.TypeExpr:
        token = self.peek()
        if token.is_keyword("Null"):
            start = self.advance()
            return ast.NullTypeExpr(span=self.span_from(start))
        if token.is_keyword("Bit"):
            start = self.advance()
            self.expect(TokenKind.LPAREN)
            width = self.parse_expression()
            self.expect(TokenKind.RPAREN)
            return ast.BitTypeExpr(span=self.span_from(start), width=width)
        if token.is_keyword("Stream"):
            start = self.advance()
            self.expect(TokenKind.LPAREN)
            element = self.parse_type_expr()
            arguments: list[tuple[str, ast.Expr]] = []
            while self.optional(TokenKind.COMMA):
                if self.at(TokenKind.RPAREN):
                    break
                key = self.expect_identifier().text
                self.expect(TokenKind.ASSIGN)
                value = self.parse_expression()
                arguments.append((key, value))
            self.expect(TokenKind.RPAREN)
            return ast.StreamTypeExpr(
                span=self.span_from(start), element=element, arguments=tuple(arguments)
            )
        if token.kind is TokenKind.IDENT:
            start = self.advance()
            return ast.NamedTypeExpr(span=self.span_from(start), name=start.text)
        raise TydiSyntaxError(
            f"expected a type expression, found {token.text or token.kind.value!r}", token.span
        )

    # -- expressions ---------------------------------------------------------------

    def parse_expression(self, inside_template_args: bool = False) -> ast.Expr:
        return self._parse_range(inside_template_args)

    def _parse_range(self, ita: bool) -> ast.Expr:
        left = self._parse_or(ita)
        if self.at(TokenKind.RANGE):
            self.advance()
            right = self._parse_or(ita)
            return ast.RangeExpr(span=left.span.merge(right.span), start=left, end=right)
        return left

    def _parse_or(self, ita: bool) -> ast.Expr:
        left = self._parse_and(ita)
        while self.at(TokenKind.OR):
            self.advance()
            right = self._parse_and(ita)
            left = ast.BinaryOp(span=left.span.merge(right.span), op="||", left=left, right=right)
        return left

    def _parse_and(self, ita: bool) -> ast.Expr:
        left = self._parse_comparison(ita)
        while self.at(TokenKind.AND):
            self.advance()
            right = self._parse_comparison(ita)
            left = ast.BinaryOp(span=left.span.merge(right.span), op="&&", left=left, right=right)
        return left

    def _parse_comparison(self, ita: bool) -> ast.Expr:
        left = self._parse_additive(ita)
        while True:
            op: Optional[str] = None
            if self.at(TokenKind.EQ):
                op = "=="
            elif self.at(TokenKind.NEQ):
                op = "!="
            elif self.at(TokenKind.LE):
                op = "<="
            elif self.at(TokenKind.GE):
                op = ">="
            elif self.at(TokenKind.LANGLE) and not ita:
                op = "<"
            elif self.at(TokenKind.RANGLE) and not ita:
                op = ">"
            if op is None:
                return left
            self.advance()
            right = self._parse_additive(ita)
            left = ast.BinaryOp(span=left.span.merge(right.span), op=op, left=left, right=right)

    def _parse_additive(self, ita: bool) -> ast.Expr:
        left = self._parse_multiplicative(ita)
        while self.at(TokenKind.PLUS) or self.at(TokenKind.MINUS):
            op = "+" if self.at(TokenKind.PLUS) else "-"
            self.advance()
            right = self._parse_multiplicative(ita)
            left = ast.BinaryOp(span=left.span.merge(right.span), op=op, left=left, right=right)
        return left

    def _parse_multiplicative(self, ita: bool) -> ast.Expr:
        left = self._parse_power(ita)
        while self.at(TokenKind.STAR) or self.at(TokenKind.SLASH) or self.at(TokenKind.PERCENT):
            if self.at(TokenKind.STAR):
                op = "*"
            elif self.at(TokenKind.SLASH):
                op = "/"
            else:
                op = "%"
            self.advance()
            right = self._parse_power(ita)
            left = ast.BinaryOp(span=left.span.merge(right.span), op=op, left=left, right=right)
        return left

    def _parse_power(self, ita: bool) -> ast.Expr:
        base = self._parse_unary(ita)
        if self.at(TokenKind.CARET):
            self.advance()
            exponent = self._parse_power(ita)  # right-associative
            return ast.BinaryOp(span=base.span.merge(exponent.span), op="^", left=base, right=exponent)
        return base

    def _parse_unary(self, ita: bool) -> ast.Expr:
        if self.at(TokenKind.MINUS):
            start = self.advance()
            operand = self._parse_unary(ita)
            return ast.UnaryOp(span=start.span.merge(operand.span), op="-", operand=operand)
        if self.at(TokenKind.NOT):
            start = self.advance()
            operand = self._parse_unary(ita)
            return ast.UnaryOp(span=start.span.merge(operand.span), op="!", operand=operand)
        return self._parse_postfix(ita)

    def _parse_postfix(self, ita: bool) -> ast.Expr:
        expr = self._parse_primary(ita)
        while self.at(TokenKind.LBRACKET):
            self.advance()
            index = self.parse_expression()
            self.expect(TokenKind.RBRACKET)
            expr = ast.IndexExpr(span=expr.span, base=expr, index=index)
        return expr

    def _parse_primary(self, ita: bool) -> ast.Expr:
        token = self.peek()
        if token.kind is TokenKind.INT or token.kind is TokenKind.FLOAT:
            self.advance()
            return ast.Literal(span=token.span, value=token.value)
        if token.kind is TokenKind.STRING:
            self.advance()
            return ast.Literal(span=token.span, value=token.value)
        if token.is_keyword("true"):
            self.advance()
            return ast.Literal(span=token.span, value=True)
        if token.is_keyword("false"):
            self.advance()
            return ast.Literal(span=token.span, value=False)
        if token.kind is TokenKind.LPAREN:
            self.advance()
            expr = self.parse_expression()
            self.expect(TokenKind.RPAREN)
            return expr
        if token.kind is TokenKind.LBRACKET:
            start = self.advance()
            items: list[ast.Expr] = []
            while not self.at(TokenKind.RBRACKET):
                items.append(self.parse_expression())
                if not self.optional(TokenKind.COMMA):
                    break
            self.expect(TokenKind.RBRACKET)
            return ast.ArrayLiteral(span=self.span_from(start), items=tuple(items))
        if token.kind is TokenKind.IDENT:
            self.advance()
            if self.at(TokenKind.LPAREN):
                self.advance()
                arguments: list[ast.Expr] = []
                while not self.at(TokenKind.RPAREN):
                    arguments.append(self.parse_expression())
                    if not self.optional(TokenKind.COMMA):
                        break
                self.expect(TokenKind.RPAREN)
                return ast.Call(span=token.span, function=token.text, arguments=tuple(arguments))
            return ast.Identifier(span=token.span, name=token.text)
        raise TydiSyntaxError(
            f"expected an expression, found {token.text or token.kind.value!r}", token.span
        )


def parse_source(text: str, filename: str = "<string>") -> ast.SourceUnit:
    """Tokenize and parse one Tydi-lang source file."""
    tokens = tokenize(text, filename)
    return Parser(tokens, filename).parse_unit()
