"""Token definitions for the Tydi-lang lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.utils.source import SourceSpan


class TokenKind(enum.Enum):
    """All token categories produced by the lexer."""

    # Literals and identifiers
    IDENT = "identifier"
    INT = "integer"
    FLOAT = "float"
    STRING = "string"

    # Punctuation
    LBRACE = "{"
    RBRACE = "}"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    LANGLE = "<"
    RANGLE = ">"
    COMMA = ","
    SEMICOLON = ";"
    COLON = ":"
    DOT = "."
    AT = "@"

    # Operators
    ASSIGN = "="
    ARROW = "=>"
    RANGE = "->"
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    CARET = "^"
    EQ = "=="
    NEQ = "!="
    LE = "<="
    GE = ">="
    AND = "&&"
    OR = "||"
    NOT = "!"

    # End of file
    EOF = "eof"


#: Words with dedicated meaning.  They still lex as IDENT tokens (the parser
#: decides contextually) except where a construct is unambiguous; keeping them
#: listed here lets the parser reject their use as plain identifiers where it
#: would be confusing.
KEYWORDS = frozenset(
    {
        "package",
        "use",
        "const",
        "type",
        "Group",
        "Union",
        "Stream",
        "Bit",
        "Null",
        "streamlet",
        "impl",
        "external",
        "instance",
        "of",
        "in",
        "out",
        "for",
        "if",
        "else",
        "assert",
        "true",
        "false",
        "int",
        "float",
        "string",
        "bool",
        "clockdomain",
        "simulation",
        "state",
        "on",
        "send",
        "ack",
        "delay",
        "top",
    }
)


@dataclass(frozen=True, slots=True)
class Token:
    """A single lexed token with its source span."""

    kind: TokenKind
    text: str
    span: SourceSpan
    value: object = None

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.IDENT and self.text == word

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r})"
