"""Sugaring: automatic duplicator and voider insertion (Section IV-D).

Tydi streams are point-to-point: every output port may drive exactly one
input port (the handshake has a single ready).  Software-style designs,
however, routinely use one value several times or ignore values entirely.
Sugaring releases that restriction by rewriting the evaluated design:

* a **source endpoint** (an input port of the enclosing implementation, or an
  output port of an inner instance) that is connected to *multiple* sinks is
  rerouted through an automatically inserted **duplicator** whose channel
  count and logical type are inferred from the connections;
* a source endpoint that is connected to *no* sink at all is terminated with
  an automatically inserted **voider**.

Both primitives come from the standard library's hard-coded generators
(:mod:`repro.stdlib.components`).  The rewrite is recorded in a
:class:`SugaringReport` so the effect can be inspected (Figure 4) and counted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DiagnosticSink
from repro.ir.model import (
    Connection,
    Implementation,
    Instance,
    Port,
    PortDirection,
    PortRef,
    Project,
)
from repro.stdlib.components import build_duplicator, build_voider
from repro.utils.names import unique_namer


@dataclass
class SugaringAction:
    """One rewrite applied by sugaring."""

    kind: str  # "duplicator" | "voider"
    implementation: str
    source: str
    channels: int = 0
    inserted_instance: str = ""


@dataclass
class SugaringReport:
    """All rewrites applied across a project."""

    actions: list[SugaringAction] = field(default_factory=list)

    @property
    def duplicators_inserted(self) -> int:
        return sum(1 for a in self.actions if a.kind == "duplicator")

    @property
    def voiders_inserted(self) -> int:
        return sum(1 for a in self.actions if a.kind == "voider")

    def for_implementation(self, name: str) -> list[SugaringAction]:
        return [a for a in self.actions if a.implementation == name]

    def summary(self) -> str:
        return (
            f"sugaring inserted {self.duplicators_inserted} duplicator(s) and "
            f"{self.voiders_inserted} voider(s)"
        )


def _source_endpoints(project: Project, implementation: Implementation) -> dict[PortRef, Port]:
    """All legal source endpoints inside ``implementation`` with their ports.

    Inside an implementation, data is *sourced* by the implementation's own
    input ports (data entering the component) and by output ports of inner
    instances.
    """
    endpoints: dict[PortRef, Port] = {}
    streamlet = project.streamlet_of(implementation)
    for port in streamlet.ports:
        if port.direction is PortDirection.IN:
            endpoints[PortRef(port=port.name)] = port
    for instance in implementation.instances:
        inner = project.streamlet_of(project.implementation(instance.implementation))
        for port in inner.ports:
            if port.direction is PortDirection.OUT:
                endpoints[PortRef(port=port.name, instance=instance.name)] = port
    return endpoints


def apply_sugaring(
    project: Project,
    diagnostics: DiagnosticSink | None = None,
) -> SugaringReport:
    """Apply duplicator/voider insertion to every non-external implementation."""
    diagnostics = diagnostics if diagnostics is not None else DiagnosticSink()
    report = SugaringReport()
    namer = unique_namer("sugar")

    # Iterate over a snapshot because sugaring adds new (external, primitive)
    # implementations to the project while we walk it.
    for implementation in list(project.implementations.values()):
        if implementation.external:
            continue
        _sugar_implementation(project, implementation, report, diagnostics, namer)
    return report


def _sugar_implementation(
    project: Project,
    implementation: Implementation,
    report: SugaringReport,
    diagnostics: DiagnosticSink,
    namer,
) -> None:
    endpoints = _source_endpoints(project, implementation)

    usage: dict[PortRef, list[Connection]] = {ref: [] for ref in endpoints}
    for connection in implementation.connections:
        if connection.source in usage:
            usage[connection.source].append(connection)

    for ref, connections in usage.items():
        port = endpoints[ref]
        if len(connections) > 1:
            _insert_duplicator(
                project, implementation, ref, port, connections, report, diagnostics, namer
            )
        elif len(connections) == 0:
            _insert_voider(project, implementation, ref, port, report, diagnostics, namer)


def _insert_duplicator(
    project: Project,
    implementation: Implementation,
    source: PortRef,
    port: Port,
    connections: list[Connection],
    report: SugaringReport,
    diagnostics: DiagnosticSink,
    namer,
) -> None:
    channels = len(connections)
    primitive = build_duplicator(project, port.logical_type, channels, port.clock_domain)
    instance_name = namer(f"dup_{source.port}")
    implementation.add_instance(
        Instance(
            name=instance_name,
            implementation=primitive.name,
            metadata={"synthesized": True, "primitive": "duplicator"},
        )
    )

    # The original source now feeds the duplicator input...
    implementation.add_connection(
        Connection(
            source=source,
            sink=PortRef(port="input", instance=instance_name),
            logical_type=port.logical_type,
            synthesized=True,
        )
    )
    # ...and each previous sink is fed from one duplicator output.
    for index, connection in enumerate(connections):
        connection.source = PortRef(port=f"output_{index}", instance=instance_name)
        connection.synthesized = True

    report.actions.append(
        SugaringAction(
            kind="duplicator",
            implementation=implementation.name,
            source=str(source),
            channels=channels,
            inserted_instance=instance_name,
        )
    )
    diagnostics.info(
        "sugaring",
        f"inserted duplicator {instance_name!r} ({channels} channels) for source "
        f"{source} in {implementation.name!r}",
    )


def _insert_voider(
    project: Project,
    implementation: Implementation,
    source: PortRef,
    port: Port,
    report: SugaringReport,
    diagnostics: DiagnosticSink,
    namer,
) -> None:
    primitive = build_voider(project, port.logical_type, port.clock_domain)
    instance_name = namer(f"void_{source.port}")
    implementation.add_instance(
        Instance(
            name=instance_name,
            implementation=primitive.name,
            metadata={"synthesized": True, "primitive": "voider"},
        )
    )
    implementation.add_connection(
        Connection(
            source=source,
            sink=PortRef(port="input", instance=instance_name),
            logical_type=port.logical_type,
            synthesized=True,
        )
    )
    report.actions.append(
        SugaringAction(
            kind="voider",
            implementation=implementation.name,
            source=str(source),
            channels=1,
            inserted_instance=instance_name,
        )
    )
    diagnostics.info(
        "sugaring",
        f"inserted voider {instance_name!r} for unused source {source} in "
        f"{implementation.name!r}",
    )
