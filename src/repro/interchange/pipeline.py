"""The ingest pipeline: IR documents through the sugar/DRC/backend stages.

:func:`compile_ir_document` is the ingest twin of
:func:`repro.lang.compile.run_pipeline`: instead of parse + evaluate it runs
one **ingest** stage (:func:`ingest_stage`, wrapping
:func:`repro.interchange.parse.load_ir`), then composes the *same* sugar,
DRC, IR and backend stage functions the Tydi-lang frontend uses.  The
result is an ordinary :class:`~repro.lang.compile.CompilationResult`, so
everything downstream -- ``Workspace`` queries, served methods, backend
emission, simulation -- treats an ingested design exactly like a compiled
one.

Option semantics: an IR document is already evaluated, so the
evaluate-only options (``top`` / ``top_args`` / ``include_stdlib`` /
``project_name``) are ignored -- the document itself carries the project
name and top declaration.  ``sugaring`` / ``run_drc`` / ``strict_drc`` /
``targets`` / ``backend_options`` apply as usual.  Re-sugaring an already
sugared (or any DRC-clean) design is a no-op: duplicators/voiders are only
inserted for fan-out or unused outputs, which a DRC-clean design does not
have.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import DiagnosticSink
from repro.interchange.parse import load_ir
from repro.ir.model import Project
from repro.lang.compile import (
    IR_STAGE_DETAIL,
    CompilationResult,
    CompilationStage,
    CompileOptions,
    backend_stage,
    drc_stage,
    sugar_stage,
)
from repro.profiling import PROFILER


def ingest_stage(
    text: str, *, filename: str = "<tydi-ir>"
) -> tuple[Project, CompilationStage]:
    """The ingest stage: one IR document to a validated :class:`Project`.

    The stage-log entry mirrors the evaluate stage's statistics line, so
    logs of ingested and compiled designs read uniformly.
    """
    with PROFILER.stage("ingest"):
        project = load_ir(text, filename=filename)
    stats = project.statistics()
    entry = CompilationStage(
        "ingest",
        f"ingested {stats['streamlets']} streamlet(s), "
        f"{stats['implementations']} implementation(s), "
        f"{stats['instances']} instance(s), {stats['connections']} connection(s)",
    )
    return project, entry


def compile_ir_document(
    text: str,
    options: "CompileOptions | dict | None" = None,
    *,
    filename: str = "<tydi-ir>",
    stage_cache=None,
) -> CompilationResult:
    """Ingest one IR document and run the downstream pipeline stages.

    This is the uncached reference composition; the staged twin with a
    memoised ingest tier is :meth:`repro.pipeline.stages.StageCache.
    compile_ir`, differential-tested byte-identical against this one.
    ``stage_cache`` only serves the backend stage's per-implementation unit
    outputs (pass a :class:`~repro.pipeline.stages.StageCache`).
    """
    resolved = CompileOptions.coerce(options)
    diagnostics = DiagnosticSink()
    stages: list[CompilationStage] = []

    project, ingest_entry = ingest_stage(text, filename=filename)
    stages.append(ingest_entry)

    sugaring_report = None
    if resolved.sugaring:
        sugaring_report, sugar_entry = sugar_stage(project, diagnostics)
        stages.append(sugar_entry)

    drc_report = None
    if resolved.run_drc:
        drc_report, drc_entry = drc_stage(project, diagnostics, strict=resolved.strict_drc)
        stages.append(drc_entry)

    stages.append(CompilationStage("ir", IR_STAGE_DETAIL))

    outputs, backend_entries = backend_stage(
        project,
        resolved.targets,
        backend_options=resolved.backend_options,
        stage_cache=stage_cache,
    )
    stages.extend(backend_entries)

    return CompilationResult(
        project=project,
        diagnostics=diagnostics,
        stages=stages,
        sugaring=sugaring_report,
        drc=drc_report,
        units=[],
        outputs=outputs,
    )


def roundtrip_document(project: Project) -> str:
    """Emit, ingest and re-emit one project (test/debug helper).

    Returns the re-emitted document; callers assert it equals the first
    emission -- the correctness spine of the interchange subsystem.
    """
    from repro.interchange.emit import emit_document

    return emit_document(load_ir(emit_document(project)))


__all__ = ["compile_ir_document", "ingest_stage", "roundtrip_document"]
