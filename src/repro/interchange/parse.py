"""Parsing Tydi-IR interchange documents back into the object model.

:func:`load_ir` is the ingest half of the round trip: it turns the text
:func:`repro.interchange.emit.emit_document` produces (or a hand-written
document in the same grammar) back into a :class:`repro.ir.model.Project`
that flows through the existing sugar / DRC / backend stages exactly like an
evaluated Tydi-lang design.

Two properties carry the byte-identical round trip
``emit(ingest(emit(P))) == emit(P)``:

* **order preservation** -- streamlets, implementations, ports, instances
  and connections are inserted in document order, and the emitter walks
  them in insertion order;
* **per-document type interning** -- every parsed logical type is interned
  by its rendered text, so two ports that shared one type *object* in the
  source project share one object again after the round trip.  Strict type
  equality (:func:`repro.spec.compat.strictly_equal`) distinguishes
  anonymous structural twins by identity, so without this step a re-parsed
  design could fail a DRC its source passed.  Collapsing identically
  rendered types can only *add* identities, never remove them, so a design
  that passed the DRC before emission always passes it again after ingest.

All failures raise :class:`repro.errors.TydiIngestError` (stage
``ingest``) carrying the document location of the offending token -- the
same ``file:line:col`` envelope shape the Tydi-lang frontend produces, so
served ingest errors are structured like every other pipeline stage's.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Optional

from repro.errors import TydiBackendError, TydiIngestError, TydiTypeError
from repro.interchange.emit import FORMAT_VERSION
from repro.ir.model import (
    ClockDomain,
    Connection,
    Implementation,
    Instance,
    Port,
    PortDirection,
    PortRef,
    Project,
    Streamlet,
)
from repro.lang.values import ClockDomainValue, TypeValue
from repro.spec.logical_types import Bit, Group, LogicalType, Null, Stream, Union
from repro.spec.stream_params import Complexity, Direction, Synchronicity, Throughput
from repro.utils.source import SourceFile

_TOKEN_RE = re.compile(
    r"""
      (?P<ws>\s+)
    | (?P<comment>//[^\n]*)
    | (?P<number>\d+(?:\.\d+)*(?:[eE][+-]?\d+)?)
    | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
    | (?P<string>"(?:\\.|[^"\\])*")
    | (?P<punct>=>|[{}()\[\]:;,=@.\-])
    """,
    re.VERBOSE,
)

_INT_RE = re.compile(r"\d+\Z")

_VERSION_RE = re.compile(r"//\s*Tydi-IR interchange, format v(\d+)")

#: The identifiers that open a logical-type expression.
_TYPE_HEADS = ("Null", "Bit", "Group", "Union", "Stream")


@dataclass(frozen=True, slots=True)
class _Token:
    kind: str  # "ident" | "number" | "string" | "punct" | "eof"
    text: str
    start: int
    end: int


def _tokenize(source: SourceFile) -> list[_Token]:
    text = source.text
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            span = source.span(pos, pos + 1)
            if text[pos] == '"':
                raise TydiIngestError("unterminated string literal", span)
            raise TydiIngestError(f"unexpected character {text[pos]!r}", span)
        pos = match.end()
        kind = match.lastgroup
        if kind in ("ws", "comment"):
            continue
        tokens.append(_Token(kind, match.group(), match.start(), match.end()))
    tokens.append(_Token("eof", "", len(text), len(text)))
    return tokens


class _DocumentParser:
    """Recursive-descent parser over the interchange grammar."""

    def __init__(self, text: str, filename: str) -> None:
        self._file = SourceFile(text, filename)
        self._tokens = _tokenize(self._file)
        self._pos = 0
        #: Per-document intern table: rendered type text -> instance.
        self._types: dict[str, LogicalType] = {}

    # -- token plumbing -------------------------------------------------------

    def _peek(self) -> _Token:
        return self._tokens[self._pos]

    def _advance(self) -> _Token:
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _error(self, message: str, token: Optional[_Token] = None) -> TydiIngestError:
        if token is None:
            token = self._peek()
        return TydiIngestError(message, self._file.span(token.start, token.end))

    def _describe(self, token: _Token) -> str:
        if token.kind == "eof":
            return "end of document"
        return f"{token.text!r}"

    def _expect_punct(self, text: str) -> _Token:
        token = self._peek()
        if token.kind != "punct" or token.text != text:
            raise self._error(f"expected {text!r}, got {self._describe(token)}")
        return self._advance()

    def _at_punct(self, text: str) -> bool:
        token = self._peek()
        return token.kind == "punct" and token.text == text

    def _expect_ident(self, what: str = "an identifier") -> _Token:
        token = self._peek()
        if token.kind != "ident":
            raise self._error(f"expected {what}, got {self._describe(token)}")
        return self._advance()

    def _expect_keyword(self, word: str) -> _Token:
        token = self._peek()
        if token.kind != "ident" or token.text != word:
            raise self._error(f"expected {word!r}, got {self._describe(token)}")
        return self._advance()

    def _at_ident(self, word: str) -> bool:
        token = self._peek()
        return token.kind == "ident" and token.text == word

    def _expect_string(self, what: str = "a string literal") -> str:
        token = self._peek()
        if token.kind != "string":
            raise self._error(f"expected {what}, got {self._describe(token)}")
        self._advance()
        try:
            return json.loads(token.text)
        except ValueError as exc:
            raise self._error(f"invalid string literal: {exc}", token) from exc

    def _expect_int(self, what: str = "an integer") -> int:
        token = self._peek()
        if token.kind != "number" or not _INT_RE.match(token.text):
            raise self._error(f"expected {what}, got {self._describe(token)}")
        self._advance()
        return int(token.text)

    # -- logical types --------------------------------------------------------

    def _intern(self, logical_type: LogicalType) -> LogicalType:
        key = logical_type.to_tydi()
        found = self._types.get(key)
        if found is not None:
            return found
        self._types[key] = logical_type
        return logical_type

    def parse_type(self) -> LogicalType:
        head = self._peek()
        if head.kind != "ident" or head.text not in _TYPE_HEADS:
            raise self._error(
                f"expected a logical type (one of {', '.join(_TYPE_HEADS)}), "
                f"got {self._describe(head)}"
            )
        self._advance()
        try:
            if head.text == "Null":
                parsed: LogicalType = Null()
            elif head.text == "Bit":
                self._expect_punct("(")
                width = self._expect_int("a bit width")
                self._expect_punct(")")
                parsed = Bit(width)
            elif head.text in ("Group", "Union"):
                parsed = self._parse_compound(head.text)
            else:
                parsed = self._parse_stream()
        except TydiTypeError as exc:
            raise self._error(f"invalid {head.text} type: {exc.message}", head) from exc
        return self._intern(parsed)

    def _parse_compound(self, kind: str) -> LogicalType:
        cls = Group if kind == "Group" else Union
        name: Optional[str] = None
        token = self._peek()
        if token.kind == "ident":
            name = self._advance().text
            open_punct, close_punct = "{", "}"
        else:
            open_punct, close_punct = "(", ")"
        self._expect_punct(open_punct)
        fields: list[tuple[str, LogicalType]] = []
        if not self._at_punct(close_punct):
            while True:
                field_name = self._expect_ident(f"a {kind} field name").text
                self._expect_punct(":")
                fields.append((field_name, self.parse_type()))
                if not self._at_punct(","):
                    break
                self._advance()
        self._expect_punct(close_punct)
        if cls is Group:
            return Group(tuple(fields), name=name)
        return Union(tuple(fields), name=name)

    def _parse_stream(self) -> Stream:
        self._expect_punct("(")
        element = self.parse_type()
        kwargs: dict[str, object] = {}
        while self._at_punct(","):
            self._advance()
            arg = self._expect_ident("a Stream parameter name")
            self._expect_punct("=")
            if arg.text == "d":
                kwargs["dimension"] = self._expect_int("a dimension")
            elif arg.text == "dir":
                value = self._expect_ident("a direction")
                try:
                    kwargs["direction"] = Direction(value.text)
                except ValueError as exc:
                    raise self._error(f"invalid direction {value.text!r}", value) from exc
            elif arg.text == "sync":
                value = self._expect_ident("a synchronicity")
                try:
                    kwargs["synchronicity"] = Synchronicity(value.text)
                except ValueError as exc:
                    raise self._error(
                        f"invalid synchronicity {value.text!r}", value
                    ) from exc
            elif arg.text == "c":
                value = self._peek()
                if value.kind != "number":
                    raise self._error(
                        f"expected a complexity, got {self._describe(value)}"
                    )
                self._advance()
                kwargs["complexity"] = Complexity.parse(value.text)
            elif arg.text == "t":
                value = self._peek()
                if value.kind != "number":
                    raise self._error(
                        f"expected a throughput, got {self._describe(value)}"
                    )
                self._advance()
                kwargs["throughput"] = Throughput.of(value.text)
            elif arg.text == "user":
                kwargs["user"] = self.parse_type()
            elif arg.text == "keep":
                value = self._expect_ident("true or false")
                if value.text not in ("true", "false"):
                    raise self._error(
                        f"expected true or false, got {value.text!r}", value
                    )
                kwargs["keep"] = value.text == "true"
            else:
                raise self._error(f"unknown Stream parameter {arg.text!r}", arg)
        self._expect_punct(")")
        return Stream(element=element, **kwargs)  # type: ignore[arg-type]

    # -- literal values -------------------------------------------------------

    def parse_value(self) -> object:
        token = self._peek()
        if token.kind == "ident":
            if token.text == "none":
                self._advance()
                return None
            if token.text == "true":
                self._advance()
                return True
            if token.text == "false":
                self._advance()
                return False
            if token.text in _TYPE_HEADS:
                return self.parse_type()
            if token.text == "type":
                self._advance()
                self._expect_punct("(")
                wrapped = TypeValue(self.parse_type())
                self._expect_punct(")")
                return wrapped
            if token.text == "clockdomain":
                self._advance()
                self._expect_punct("(")
                domain = self._expect_string("a clock domain name string")
                self._expect_punct(")")
                return ClockDomainValue(domain)
            raise self._error(f"unexpected identifier {token.text!r} in a value")
        if token.kind == "number":
            self._advance()
            return self._number_value(token)
        if token.kind == "punct" and token.text == "-":
            self._advance()
            number = self._peek()
            if number.kind != "number":
                raise self._error(f"expected a number after '-', got {self._describe(number)}")
            self._advance()
            value = self._number_value(number)
            return -value  # type: ignore[operator]
        if token.kind == "string":
            return self._expect_string()
        if token.kind == "punct" and token.text == "(":
            return self._parse_tuple()
        if token.kind == "punct" and token.text == "[":
            return self._parse_list()
        if token.kind == "punct" and token.text == "{":
            return self._parse_dict()
        raise self._error(f"expected a value, got {self._describe(token)}")

    def _number_value(self, token: _Token) -> object:
        if _INT_RE.match(token.text):
            return int(token.text)
        try:
            return float(token.text)
        except ValueError as exc:
            raise self._error(f"invalid number {token.text!r}", token) from exc

    def _parse_tuple(self) -> tuple:
        self._expect_punct("(")
        items: list[object] = []
        if self._at_punct(")"):
            self._advance()
            return ()
        items.append(self.parse_value())
        while self._at_punct(","):
            self._advance()
            if self._at_punct(")"):  # trailing comma of a 1-tuple
                break
            items.append(self.parse_value())
        self._expect_punct(")")
        return tuple(items)

    def _parse_list(self) -> list:
        self._expect_punct("[")
        items: list[object] = []
        if not self._at_punct("]"):
            items.append(self.parse_value())
            while self._at_punct(","):
                self._advance()
                items.append(self.parse_value())
        self._expect_punct("]")
        return items

    def _parse_dict(self) -> dict:
        self._expect_punct("{")
        result: dict[str, object] = {}
        if not self._at_punct("}"):
            while True:
                key = self._expect_string("a string dict key")
                self._expect_punct(":")
                result[key] = self.parse_value()
                if not self._at_punct(","):
                    break
                self._advance()
        self._expect_punct("}")
        return result

    def _parse_dict_arg(self, what: str) -> dict:
        token = self._peek()
        if not self._at_punct("{"):
            raise self._error(f"expected a {{...}} dict after {what!r}, got {self._describe(token)}")
        return self._parse_dict()

    # -- document structure ---------------------------------------------------

    def parse_document(self) -> Project:
        self._expect_keyword("project")
        name = self._expect_string("the project name string")
        self._expect_punct(";")
        project = Project(name=name)
        while True:
            token = self._peek()
            if token.kind == "eof":
                break
            if token.kind != "ident":
                raise self._error(
                    f"expected 'streamlet', 'impl' or 'top', got {self._describe(token)}"
                )
            if token.text == "streamlet":
                streamlet = self._parse_streamlet()
                try:
                    project.add_streamlet(streamlet)
                except TydiBackendError as exc:
                    raise self._error(exc.message, token) from exc
            elif token.text == "impl":
                implementation = self._parse_implementation()
                try:
                    project.add_implementation(implementation)
                except TydiBackendError as exc:
                    raise self._error(exc.message, token) from exc
            elif token.text == "top":
                self._advance()
                project.top = self._expect_ident("the top implementation name").text
                self._expect_punct(";")
                trailing = self._peek()
                if trailing.kind != "eof":
                    raise self._error(
                        f"expected end of document after the top declaration, "
                        f"got {self._describe(trailing)}"
                    )
                break
            else:
                raise self._error(
                    f"expected 'streamlet', 'impl' or 'top', got {token.text!r}", token
                )
        return project

    def _parse_streamlet(self) -> Streamlet:
        keyword = self._expect_keyword("streamlet")
        name = self._expect_ident("the streamlet name").text
        self._expect_punct("{")
        documentation = ""
        ports: list[Port] = []
        while not self._at_punct("}"):
            token = self._peek()
            if token.kind != "ident":
                raise self._error(
                    f"expected 'doc', 'port' or '}}', got {self._describe(token)}"
                )
            if token.text == "doc":
                self._advance()
                documentation = self._expect_string()
                self._expect_punct(";")
            elif token.text == "port":
                self._advance()
                ports.append(self._parse_port())
            else:
                raise self._error(
                    f"expected 'doc', 'port' or '}}', got {token.text!r}", token
                )
        self._expect_punct("}")
        try:
            return Streamlet(name=name, ports=ports, documentation=documentation)
        except (TydiBackendError, TydiTypeError) as exc:
            raise self._error(exc.message, keyword) from exc

    def _parse_port(self) -> Port:
        name_token = self._expect_ident("the port name")
        self._expect_punct(":")
        logical_type = self.parse_type()
        direction_token = self._expect_ident("'in' or 'out'")
        if direction_token.text not in ("in", "out"):
            raise self._error(
                f"expected 'in' or 'out', got {direction_token.text!r}", direction_token
            )
        domain = "default"
        if self._at_punct("@"):
            self._advance()
            domain = self._expect_ident("a clock domain name").text
        attributes: dict[str, object] = {}
        if self._at_ident("attrs"):
            self._advance()
            attributes = self._parse_dict_arg("attrs")
        self._expect_punct(";")
        try:
            return Port(
                name=name_token.text,
                logical_type=logical_type,
                direction=PortDirection(direction_token.text),
                clock_domain=ClockDomain(domain),
                attributes=attributes,
            )
        except TydiTypeError as exc:
            raise self._error(exc.message, name_token) from exc

    def _parse_implementation(self) -> Implementation:
        keyword = self._expect_keyword("impl")
        name = self._expect_ident("the implementation name").text
        self._expect_keyword("of")
        streamlet = self._expect_ident("the streamlet name").text
        self._expect_punct("{")
        external = False
        documentation = ""
        metadata: dict[str, object] = {}
        instances: list[Instance] = []
        connections: list[Connection] = []
        while not self._at_punct("}"):
            token = self._peek()
            if token.kind != "ident":
                raise self._error(
                    f"expected an implementation item, got {self._describe(token)}"
                )
            if token.text == "external":
                self._advance()
                self._expect_punct(";")
                external = True
            elif token.text == "doc":
                self._advance()
                documentation = self._expect_string()
                self._expect_punct(";")
            elif token.text == "meta":
                self._advance()
                metadata = self._parse_dict_arg("meta")
                self._expect_punct(";")
            elif token.text == "instance":
                self._advance()
                instance_name = self._expect_ident("the instance name").text
                self._expect_keyword("of")
                inner = self._expect_ident("the instantiated implementation name").text
                instance_meta: dict[str, object] = {}
                if self._at_ident("meta"):
                    self._advance()
                    instance_meta = self._parse_dict_arg("meta")
                self._expect_punct(";")
                instances.append(
                    Instance(name=instance_name, implementation=inner, metadata=instance_meta)
                )
            elif token.text == "connect":
                self._advance()
                connections.append(self._parse_connection())
            else:
                raise self._error(
                    f"expected 'external', 'doc', 'meta', 'instance', 'connect' "
                    f"or '}}', got {token.text!r}",
                    token,
                )
        self._expect_punct("}")
        try:
            return Implementation(
                name=name,
                streamlet=streamlet,
                instances=instances,
                connections=connections,
                external=external,
                documentation=documentation,
                metadata=metadata,
            )
        except TydiBackendError as exc:
            raise self._error(exc.message, keyword) from exc

    def _parse_connection(self) -> Connection:
        source = self._parse_portref()
        self._expect_punct("=>")
        sink = self._parse_portref()
        logical_type: Optional[LogicalType] = None
        name = ""
        structural = False
        synthesized = False
        if self._at_ident("type"):
            self._advance()
            logical_type = self.parse_type()
        if self._at_ident("name"):
            self._advance()
            name = self._expect_string()
        if self._at_ident("structural"):
            self._advance()
            structural = True
        if self._at_ident("synthesized"):
            self._advance()
            synthesized = True
        self._expect_punct(";")
        return Connection(
            source=source,
            sink=sink,
            logical_type=logical_type,
            name=name,
            structural=structural,
            synthesized=synthesized,
        )

    def _parse_portref(self) -> PortRef:
        first = self._expect_ident("a port reference")
        if self._at_punct("."):
            self._advance()
            port = self._expect_ident("a port name")
            return PortRef(port=port.text, instance=first.text)
        return PortRef(port=first.text)


def _check_format_version(text: str, filename: str) -> None:
    match = _VERSION_RE.search(text)
    if match is None:
        return  # hand-written documents may omit the stamp
    version = int(match.group(1))
    if version > FORMAT_VERSION:
        raise TydiIngestError(
            f"{filename}: document declares interchange format v{version}, "
            f"but this toolchain reads up to v{FORMAT_VERSION}"
        )


def load_ir(text: str, *, filename: str = "<tydi-ir>") -> Project:
    """Parse one Tydi-IR interchange document into a :class:`Project`.

    The returned project has passed :meth:`~repro.ir.model.Project.validate`
    (referential integrity); type-level checks are the DRC's job, exactly as
    for an evaluated design.  Raises :class:`~repro.errors.TydiIngestError`
    on any lexical, syntactic or referential problem.
    """
    if not isinstance(text, str):
        raise TydiIngestError(
            f"an IR document must be a string, got {type(text).__name__}"
        )
    _check_format_version(text, filename)
    project = _DocumentParser(text, filename).parse_document()
    try:
        project.validate()
    except TydiBackendError as exc:
        raise TydiIngestError(f"{filename}: {exc.message}") from exc
    return project
