"""Tydi-IR interchange: a complete textual form of the object model.

The public Tydi intermediate representation of the companion IR paper is
both an *emit target* and an *ingest frontend*.  This package provides the
bridge in each direction:

* :mod:`repro.interchange.emit` -- render a compiled
  :class:`~repro.ir.model.Project` as one canonical interchange document
  (full logical-type syntax, metadata literals, declaration order
  preserved).  The registered ``tydi-ir`` backend
  (:mod:`repro.backends.tydi_ir`) wraps this with per-implementation unit
  caching.
* :mod:`repro.interchange.parse` -- :func:`load_ir`, parsing a document
  back into the evaluated object model with per-document type interning,
  so ingested designs flow through the existing sugar/DRC/backend stages.
* :mod:`repro.interchange.pipeline` -- :func:`compile_ir_document`, the
  ingest twin of the Figure-3 pipeline, producing an ordinary
  :class:`~repro.lang.compile.CompilationResult`.

The correctness spine is the byte-identical round trip
``emit(ingest(emit(P))) == emit(P)``, asserted over fuzzed and TPC-H
designs by ``tests/test_interchange_roundtrip.py``.  Grammar and
guarantees: ``docs/interchange.md``.
"""

from repro.interchange.emit import (
    FORMAT_VERSION,
    emit_document,
    emit_implementation_block,
    emit_streamlet_block,
    render_value,
)
from repro.interchange.parse import load_ir
from repro.interchange.pipeline import (
    compile_ir_document,
    ingest_stage,
    roundtrip_document,
)

__all__ = [
    "FORMAT_VERSION",
    "compile_ir_document",
    "emit_document",
    "emit_implementation_block",
    "emit_streamlet_block",
    "ingest_stage",
    "load_ir",
    "render_value",
    "roundtrip_document",
]
