"""Canonical Tydi-IR interchange emission.

The legacy textual IR (:mod:`repro.ir.emit`, the ``ir`` backend) is a
human-oriented *report*: its type references are abbreviated (a ``Stream``
reference drops direction, synchronicity, user and keep), so the text cannot
be parsed back into the exact :class:`~repro.ir.model.Project` it came from.
This module defines the *complete* interchange form the ``tydi-ir`` backend
emits and :func:`repro.interchange.parse.load_ir` ingests:

* every port and connection type is rendered with the full
  :meth:`~repro.spec.logical_types.LogicalType.to_tydi` surface syntax,
* documentation strings, metadata dictionaries and port attributes are
  carried verbatim through a small literal grammar
  (:func:`render_value`), and
* declaration order is preserved exactly (the emitter walks the project's
  insertion-ordered dictionaries; the parser re-inserts in document order),
  which is what makes the round trip ``emit(ingest(emit(P))) == emit(P)``
  byte-identical.

The only model field *not* carried is ``Implementation.simulation``:
behaviour specs drive the simulator, never emission (they are excluded from
:func:`repro.backends.implementation_fingerprint` for the same reason), and
they hold arbitrary Python callables with no stable textual form.  See
``docs/interchange.md``.
"""

from __future__ import annotations

import json
import math

from repro.errors import TydiBackendError
from repro.ir.model import Implementation, Port, Project, Streamlet
from repro.lang.values import ClockDomainValue, TypeValue
from repro.spec.logical_types import LogicalType

#: Format version stamped into the document prelude; the parser rejects
#: documents claiming a newer major format.
FORMAT_VERSION = 1


def render_value(value: object) -> str:
    """Render one metadata / attribute value in the interchange literal grammar.

    Supported: ``None`` / booleans / ints / finite floats / strings,
    logical types (full ``to_tydi`` syntax), and tuples / lists /
    string-keyed dicts of supported values.  Anything else is an emission
    error -- the document must stay parseable, so unknown objects may not
    leak through ``repr``.
    """
    if value is None:
        return "none"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if not math.isfinite(value):
            raise TydiBackendError(
                f"tydi-ir interchange cannot serialise non-finite float {value!r}"
            )
        return repr(value)
    if isinstance(value, str):
        return json.dumps(value)
    if isinstance(value, LogicalType):
        return value.to_tydi()
    if isinstance(value, TypeValue):
        # Evaluator wrapper for a type-valued template argument; kept
        # distinct from a bare logical type so primitive generators (which
        # sniff for the wrapper) behave identically after the round trip.
        return f"type({value.logical_type.to_tydi()})"
    if isinstance(value, ClockDomainValue):
        return f"clockdomain({json.dumps(value.name)})"
    if isinstance(value, tuple):
        if len(value) == 1:
            return f"({render_value(value[0])},)"
        return "(" + ", ".join(render_value(item) for item in value) + ")"
    if isinstance(value, list):
        return "[" + ", ".join(render_value(item) for item in value) + "]"
    if isinstance(value, dict):
        parts = []
        for key, item in value.items():
            if not isinstance(key, str):
                raise TydiBackendError(
                    f"tydi-ir interchange dict keys must be strings, got {key!r}"
                )
            parts.append(f"{json.dumps(key)}: {render_value(item)}")
        return "{" + ", ".join(parts) + "}"
    raise TydiBackendError(
        f"tydi-ir interchange cannot serialise a {type(value).__name__} value "
        f"({value!r}); supported: none/bool/int/float/str, logical types, "
        f"tuples, lists and string-keyed dicts thereof"
    )


def document_prelude(project: Project) -> str:
    """The header section: format stamp plus the project declaration."""
    return (
        f"// Tydi-IR interchange, format v{FORMAT_VERSION}\n"
        f"project {json.dumps(project.name)};"
    )


def _port_line(port: Port) -> str:
    parts = [f"port {port.name}: {port.logical_type.to_tydi()} {port.direction}"]
    if port.clock_domain.name != "default":
        if not port.clock_domain.name.isidentifier():
            raise TydiBackendError(
                f"tydi-ir interchange cannot serialise clock domain "
                f"{port.clock_domain.name!r} (not an identifier)"
            )
        parts.append(f"@{port.clock_domain.name}")
    if port.attributes:
        parts.append("attrs " + render_value(dict(port.attributes)))
    return " ".join(parts) + ";"


def emit_streamlet_block(streamlet: Streamlet) -> str:
    """One ``streamlet name { ... }`` section."""
    lines = [f"streamlet {streamlet.name} {{"]
    if streamlet.documentation:
        lines.append(f"  doc {json.dumps(streamlet.documentation)};")
    for port in streamlet.ports:
        lines.append("  " + _port_line(port))
    lines.append("}")
    return "\n".join(lines)


def emit_implementation_block(implementation: Implementation) -> str:
    """One ``impl name of streamlet { ... }`` section.

    External implementations keep the uniform block form with an
    ``external;`` body marker, so they can still carry documentation and
    metadata (primitive kinds live there).
    """
    lines = [f"impl {implementation.name} of {implementation.streamlet} {{"]
    if implementation.external:
        lines.append("  external;")
    if implementation.documentation:
        lines.append(f"  doc {json.dumps(implementation.documentation)};")
    if implementation.metadata:
        lines.append(f"  meta {render_value(dict(implementation.metadata))};")
    for instance in implementation.instances:
        line = f"  instance {instance.name} of {instance.implementation}"
        if instance.metadata:
            line += f" meta {render_value(dict(instance.metadata))}"
        lines.append(line + ";")
    for connection in implementation.connections:
        line = f"  connect {connection.source} => {connection.sink}"
        if connection.logical_type is not None:
            line += f" type {connection.logical_type.to_tydi()}"
        if connection.name:
            line += f" name {json.dumps(connection.name)}"
        if connection.structural:
            line += " structural"
        if connection.synthesized:
            line += " synthesized"
        lines.append(line + ";")
    lines.append("}")
    return "\n".join(lines)


def emit_document(project: Project) -> str:
    """Render the complete interchange document for one project."""
    sections = [document_prelude(project)]
    for streamlet in project.streamlets.values():
        sections.append(emit_streamlet_block(streamlet))
    for implementation in project.implementations.values():
        sections.append(emit_implementation_block(implementation))
    if project.top:
        sections.append(f"top {project.top};")
    return "\n\n".join(sections) + "\n"
