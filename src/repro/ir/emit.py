"""Textual Tydi-IR emission.

The Rust toolchain serialises the IR to a textual format that the IR-to-VHDL
tool consumes.  We emit an equivalent text so that the intermediate artifact
of the pipeline (Figure 1: "Tydi source code -> frontend -> Tydi IR ->
backend -> VHDL") is inspectable, countable (LoC) and diffable in tests.
"""

from __future__ import annotations

from repro.errors import TydiBackendError
from repro.ir.model import Implementation, Port, Project, Streamlet
from repro.spec.logical_types import Group, LogicalType, Stream, Union
from repro.utils.text import indent_block


def named_type_declarations(project: Project) -> dict[str, LogicalType]:
    """Collect named Group/Union declarations used anywhere in the project.

    Two *structurally identical* occurrences of a name collapse into one
    declaration; two structurally distinct types sharing a name are an
    error -- emitting only the first (the old ``setdefault`` behaviour)
    would silently misdeclare every use of the second.
    """
    named: dict[str, LogicalType] = {}

    def visit(t: LogicalType) -> None:
        for sub in t.walk():
            name = getattr(sub, "name", None)
            if name and isinstance(sub, (Group, Union)):
                existing = named.get(name)
                if existing is None:
                    named[name] = sub
                elif existing != sub:
                    raise TydiBackendError(
                        f"conflicting declarations of type {name!r}: "
                        f"{existing.to_tydi()} vs {sub.to_tydi()}"
                    )

    for streamlet in project.streamlets.values():
        for port in streamlet.ports:
            visit(port.logical_type)
    return named


#: Backwards-compatible private alias (pre-registry callers).
_named_type_declarations = named_type_declarations


def _type_ref(t: LogicalType) -> str:
    """Render a type reference, using the declared name when available."""
    name = getattr(t, "name", None)
    if name and isinstance(t, (Group, Union)):
        return name
    if isinstance(t, Stream):
        inner = _type_ref(t.element)
        args = [inner]
        if t.dimension:
            args.append(f"d={t.dimension}")
        if float(t.throughput) != 1.0:
            args.append(f"t={t.throughput}")
        if t.complexity.major != 1 or len(t.complexity.levels) > 1:
            args.append(f"c={t.complexity}")
        return f"Stream({', '.join(args)})"
    return t.to_tydi()


def emit_type_declaration(t: LogicalType) -> str:
    """Emit a named Group/Union declaration."""
    if isinstance(t, Group):
        fields = "\n".join(f"  {n}: {_type_ref(ft)};" for n, ft in t.fields)
        return f"Group {t.name} {{\n{fields}\n}}"
    if isinstance(t, Union):
        variants = "\n".join(f"  {n}: {_type_ref(vt)};" for n, vt in t.variants)
        return f"Union {t.name} {{\n{variants}\n}}"
    return f"type {getattr(t, 'name', 'anonymous')} = {t.to_tydi()};"


def emit_port(port: Port) -> str:
    clock = f" @{port.clock_domain}" if port.clock_domain.name != "default" else ""
    return f"{port.name}: {_type_ref(port.logical_type)} {port.direction}{clock};"


def emit_streamlet(streamlet: Streamlet) -> str:
    doc = f"// {streamlet.documentation}\n" if streamlet.documentation else ""
    ports = "\n".join(emit_port(p) for p in streamlet.ports)
    return f"{doc}streamlet {streamlet.name} {{\n{indent_block(ports, 2)}\n}}"


def emit_implementation(implementation: Implementation) -> str:
    doc = f"// {implementation.documentation}\n" if implementation.documentation else ""
    header = f"impl {implementation.name} of {implementation.streamlet}"
    if implementation.external:
        return f"{doc}external {header};"
    body_lines: list[str] = []
    for inst in implementation.instances:
        body_lines.append(f"instance {inst.name}({inst.implementation});")
    for conn in implementation.connections:
        suffix = " // auto-inserted" if conn.synthesized else ""
        body_lines.append(f"{conn.source} => {conn.sink};{suffix}")
    body = "\n".join(body_lines)
    return f"{doc}{header} {{\n{indent_block(body, 2)}\n}}"


def emit_project(project: Project) -> str:
    """Emit the whole project as textual Tydi-IR.

    The registered ``ir`` backend (:class:`repro.backends.ir_text.
    IrTextBackend`) composes the same section sequence and separators from
    cacheable per-implementation pieces; the two must stay byte-identical,
    which ``tests/test_backend_differential.py`` pins over fuzzed designs.
    Change the section order, separators or prelude here and there
    together.
    """
    sections: list[str] = [f"// Tydi-IR for project {project.name}"]
    named_types = named_type_declarations(project)
    for t in named_types.values():
        sections.append(emit_type_declaration(t))
    for streamlet in project.streamlets.values():
        sections.append(emit_streamlet(streamlet))
    for implementation in project.implementations.values():
        sections.append(emit_implementation(implementation))
    if project.top:
        sections.append(f"top {project.top};")
    return "\n\n".join(sections) + "\n"
