"""Tydi-IR data model.

The frontend lowers an evaluated Tydi-lang design into these classes; the
VHDL backend and the simulator both consume them.  The model is deliberately
flat: templates no longer exist at this level (every template instantiation
has been expanded into a concrete streamlet/implementation pair), and the
generative ``for``/``if`` constructs have been unrolled into plain instances
and connections.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.errors import TydiBackendError, TydiTypeError
from repro.spec.logical_types import LogicalType, Stream
from repro.utils.names import sanitize_identifier


class PortDirection(enum.Enum):
    """Direction of a port as seen from its streamlet."""

    IN = "in"
    OUT = "out"

    def flipped(self) -> "PortDirection":
        return PortDirection.OUT if self is PortDirection.IN else PortDirection.IN

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class ClockDomain:
    """A named clock domain; connections require matching domains."""

    name: str = "default"

    def __str__(self) -> str:
        return self.name


@dataclass
class Port:
    """A typed, directed port of a streamlet."""

    name: str
    logical_type: LogicalType
    direction: PortDirection
    clock_domain: ClockDomain = field(default_factory=ClockDomain)
    #: Free-form attributes; the DRC looks for "structural" to relax strict
    #: type equality on connections touching this port.
    attributes: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.logical_type, LogicalType):
            raise TydiTypeError(f"port {self.name!r} type must be a logical type")
        self.name = sanitize_identifier(self.name, keyword_suffix=False)

    def is_stream(self) -> bool:
        return isinstance(self.logical_type, Stream)

    def __str__(self) -> str:
        return f"{self.name}: {self.logical_type.to_tydi()} {self.direction}"


@dataclass(frozen=True)
class PortRef:
    """Reference to a port, optionally through an instance.

    ``instance=None`` refers to a port of the enclosing implementation's own
    streamlet ("self" port); otherwise to a port of a named inner instance.
    """

    port: str
    instance: Optional[str] = None

    def __str__(self) -> str:
        if self.instance is None:
            return self.port
        return f"{self.instance}.{self.port}"

    @classmethod
    def parse(cls, text: str) -> "PortRef":
        text = text.strip()
        if "." in text:
            instance, port = text.rsplit(".", 1)
            return cls(port=port, instance=instance)
        return cls(port=text)


@dataclass
class Streamlet:
    """The port map of a component (analogue of a VHDL entity)."""

    name: str
    ports: list[Port] = field(default_factory=list)
    documentation: str = ""

    def __post_init__(self) -> None:
        self.name = sanitize_identifier(self.name, keyword_suffix=False)
        index: dict[str, Port] = {}
        for port in self.ports:
            if port.name in index:
                raise TydiBackendError(f"streamlet {self.name!r} has duplicate port {port.name!r}")
            index[port.name] = port
        self._port_index = index

    def _ports_by_name(self) -> dict[str, Port]:
        """Name index over ``ports``, rebuilt lazily if it drifted.

        Every mutation goes through :meth:`add_port` (which maintains the
        index), but the list itself is a public field -- the length guard
        rebuilds after any out-of-band append, and after unpickling an
        instance stored before the index existed.  Not a dataclass field,
        so ``==``/``repr`` semantics are untouched.
        """
        index = getattr(self, "_port_index", None)
        if index is None or len(index) != len(self.ports):
            index = {}
            for port in self.ports:  # first-wins, like the linear scan it replaces
                index.setdefault(port.name, port)
            self._port_index = index
        return index

    def add_port(self, port: Port) -> Port:
        index = self._ports_by_name()
        if port.name in index:
            raise TydiBackendError(f"streamlet {self.name!r} already has port {port.name!r}")
        self.ports.append(port)
        index[port.name] = port
        return port

    def port(self, name: str) -> Port:
        port = self._ports_by_name().get(name)
        if port is None:
            raise TydiBackendError(f"streamlet {self.name!r} has no port {name!r}")
        return port

    def has_port(self, name: str) -> bool:
        return name in self._ports_by_name()

    def inputs(self) -> list[Port]:
        return [p for p in self.ports if p.direction is PortDirection.IN]

    def outputs(self) -> list[Port]:
        return [p for p in self.ports if p.direction is PortDirection.OUT]


@dataclass
class Instance:
    """A nested implementation instance within an implementation."""

    name: str
    implementation: str  # name of the instantiated Implementation
    #: Original template and arguments (for reporting / primitive generation).
    metadata: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.name = sanitize_identifier(self.name, keyword_suffix=False)


@dataclass
class Connection:
    """A directed connection from a source port to a sink port."""

    source: PortRef
    sink: PortRef
    logical_type: Optional[LogicalType] = None
    name: str = ""
    #: When True the DRC uses structural instead of strict type equality.
    structural: bool = False
    #: Marks connections inserted by sugaring (for reporting).
    synthesized: bool = False

    def __str__(self) -> str:
        return f"{self.source} => {self.sink}"


@dataclass
class Implementation:
    """The inner structure of a component (analogue of a VHDL architecture).

    ``external=True`` marks implementations whose behaviour is provided by an
    external tool (hand-written VHDL, Fletcher output, or a standard-library
    primitive generator); these have no instances or connections of their own
    but may carry ``simulation`` behaviour code for the simulator.
    """

    name: str
    streamlet: str  # name of the Streamlet providing the port map
    instances: list[Instance] = field(default_factory=list)
    connections: list[Connection] = field(default_factory=list)
    external: bool = False
    documentation: str = ""
    #: Parsed simulation behaviour (repro.sim.behavior.BehaviorSpec) if any.
    simulation: object = None
    #: Original template name + arguments for primitives and reporting.
    metadata: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.name = sanitize_identifier(self.name, keyword_suffix=False)
        self.streamlet = sanitize_identifier(self.streamlet, keyword_suffix=False)
        index: dict[str, Instance] = {}
        for inst in self.instances:
            index.setdefault(inst.name, inst)
        self._instance_index = index

    def _instances_by_name(self) -> dict[str, Instance]:
        """Name index over ``instances`` (same contract as
        :meth:`Streamlet._ports_by_name`): maintained by
        :meth:`add_instance`, lazily rebuilt behind a length guard.  With
        ``for``-expanded designs routinely holding hundreds of instances
        per implementation, the historical linear scans here were the
        single hottest cost of evaluate + DRC."""
        index = getattr(self, "_instance_index", None)
        if index is None or len(index) != len(self.instances):
            index = {}
            for inst in self.instances:  # first-wins, like the linear scan it replaces
                index.setdefault(inst.name, inst)
            self._instance_index = index
        return index

    def add_instance(self, instance: Instance) -> Instance:
        index = self._instances_by_name()
        if instance.name in index:
            raise TydiBackendError(
                f"implementation {self.name!r} already has instance {instance.name!r}"
            )
        self.instances.append(instance)
        index[instance.name] = instance
        return instance

    def instance(self, name: str) -> Instance:
        inst = self._instances_by_name().get(name)
        if inst is None:
            raise TydiBackendError(f"implementation {self.name!r} has no instance {name!r}")
        return inst

    def has_instance(self, name: str) -> bool:
        return name in self._instances_by_name()

    def add_connection(self, connection: Connection) -> Connection:
        self.connections.append(connection)
        return connection


@dataclass
class Project:
    """A closed Tydi-IR design: streamlets, implementations and a top level."""

    name: str = "design"
    streamlets: dict[str, Streamlet] = field(default_factory=dict)
    implementations: dict[str, Implementation] = field(default_factory=dict)
    top: Optional[str] = None

    def add_streamlet(self, streamlet: Streamlet) -> Streamlet:
        if streamlet.name in self.streamlets:
            existing = self.streamlets[streamlet.name]
            if existing is not streamlet:
                raise TydiBackendError(f"duplicate streamlet {streamlet.name!r}")
            return existing
        self.streamlets[streamlet.name] = streamlet
        return streamlet

    def add_implementation(self, implementation: Implementation) -> Implementation:
        if implementation.name in self.implementations:
            existing = self.implementations[implementation.name]
            if existing is not implementation:
                raise TydiBackendError(f"duplicate implementation {implementation.name!r}")
            return existing
        if implementation.streamlet not in self.streamlets:
            raise TydiBackendError(
                f"implementation {implementation.name!r} references unknown streamlet "
                f"{implementation.streamlet!r}"
            )
        self.implementations[implementation.name] = implementation
        return implementation

    def streamlet_of(self, implementation: Implementation | str) -> Streamlet:
        if isinstance(implementation, str):
            implementation = self.implementation(implementation)
        return self.streamlets[implementation.streamlet]

    def implementation(self, name: str) -> Implementation:
        try:
            return self.implementations[name]
        except KeyError as exc:
            raise TydiBackendError(f"project has no implementation {name!r}") from exc

    def streamlet(self, name: str) -> Streamlet:
        try:
            return self.streamlets[name]
        except KeyError as exc:
            raise TydiBackendError(f"project has no streamlet {name!r}") from exc

    def top_implementation(self) -> Implementation:
        if self.top is None:
            raise TydiBackendError("project has no top-level implementation")
        return self.implementation(self.top)

    def resolve_port(self, implementation: Implementation, ref: PortRef) -> Port:
        """Resolve a port reference within ``implementation`` to its Port."""
        if ref.instance is None:
            return self.streamlet_of(implementation).port(ref.port)
        inst = implementation.instance(ref.instance)
        inner_impl = self.implementation(inst.implementation)
        return self.streamlet_of(inner_impl).port(ref.port)

    def iter_connections(self) -> Iterator[tuple[Implementation, Connection]]:
        for impl in self.implementations.values():
            for conn in impl.connections:
                yield impl, conn

    def iter_instances(self) -> Iterator[tuple[Implementation, Instance]]:
        for impl in self.implementations.values():
            for inst in impl.instances:
                yield impl, inst

    def validate(self) -> None:
        """Structural validation: every reference resolves.

        This is *not* the DRC (type checks live in :mod:`repro.lang.drc`);
        it only guarantees referential integrity of the IR itself.
        """
        for impl in self.implementations.values():
            if impl.streamlet not in self.streamlets:
                raise TydiBackendError(
                    f"implementation {impl.name!r} references unknown streamlet {impl.streamlet!r}"
                )
            for inst in impl.instances:
                if inst.implementation not in self.implementations:
                    raise TydiBackendError(
                        f"instance {inst.name!r} in {impl.name!r} references unknown "
                        f"implementation {inst.implementation!r}"
                    )
            for conn in impl.connections:
                self.resolve_port(impl, conn.source)
                self.resolve_port(impl, conn.sink)
        if self.top is not None and self.top not in self.implementations:
            raise TydiBackendError(f"top implementation {self.top!r} does not exist")

    def statistics(self) -> dict[str, int]:
        """Simple design statistics used in reports and tests."""
        return {
            "streamlets": len(self.streamlets),
            "implementations": len(self.implementations),
            "external_implementations": sum(1 for i in self.implementations.values() if i.external),
            "instances": sum(len(i.instances) for i in self.implementations.values()),
            "connections": sum(len(i.connections) for i in self.implementations.values()),
            "ports": sum(len(s.ports) for s in self.streamlets.values()),
        }
