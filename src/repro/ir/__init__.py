"""Tydi-IR: the intermediate representation emitted by the Tydi-lang frontend.

The IR mirrors the hardware elements of Table I in the paper:

* :class:`~repro.ir.model.Port` -- named, directed, typed port.
* :class:`~repro.ir.model.Streamlet` -- the port map of a component
  (VHDL ``entity`` analogue).
* :class:`~repro.ir.model.Implementation` -- instances + connections
  (VHDL ``architecture`` analogue), or ``external``.
* :class:`~repro.ir.model.Instance` -- a nested implementation instance.
* :class:`~repro.ir.model.Connection` -- a typed link between two ports.
* :class:`~repro.ir.model.Project` -- a closed set of streamlets and
  implementations with a designated top level.

:mod:`repro.ir.emit` renders a project to the textual Tydi-IR syntax and
:mod:`repro.ir.testbench` models the prediction-style testbenches that the
simulator generates.
"""

from repro.ir.model import (
    ClockDomain,
    Connection,
    Implementation,
    Instance,
    Port,
    PortDirection,
    PortRef,
    Project,
    Streamlet,
)
from repro.ir.emit import emit_project, emit_streamlet, emit_implementation
from repro.ir.testbench import Testbench, TestbenchEvent, TestbenchVector

__all__ = [
    "ClockDomain",
    "Connection",
    "Implementation",
    "Instance",
    "Port",
    "PortDirection",
    "PortRef",
    "Project",
    "Streamlet",
    "emit_project",
    "emit_streamlet",
    "emit_implementation",
    "Testbench",
    "TestbenchEvent",
    "TestbenchVector",
]
