"""Tydi-IR testbench model.

Section V-C of the paper describes a prediction-strategy testbench: give the
component a sequence of input transfers and verify that the output transfers
match what the high-level simulation predicted.  A testbench therefore is a
set of timestamped *vectors* per port:

* input vectors drive data packets into input ports,
* expected vectors assert the data packets appearing on output ports.

The simulator (:mod:`repro.sim.testbench_gen`) produces these from a recorded
simulation trace; :mod:`repro.vhdl.testbench` lowers them to a VHDL testbench.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional


@dataclass(frozen=True)
class TestbenchEvent:
    """A single transfer on a port at a given time (in clock cycles)."""

    time: int
    port: str
    values: tuple[int, ...]
    #: Per-dimension "last" flags closing nesting levels, outermost first.
    last: tuple[bool, ...] = ()

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"testbench event time must be >= 0, got {self.time}")


@dataclass
class TestbenchVector:
    """All events for one port, in time order."""

    port: str
    direction: str  # "drive" for inputs, "expect" for outputs
    events: list[TestbenchEvent] = field(default_factory=list)

    def add(self, event: TestbenchEvent) -> None:
        if event.port != self.port:
            raise ValueError(f"event port {event.port!r} does not match vector port {self.port!r}")
        self.events.append(event)
        self.events.sort(key=lambda e: e.time)

    def last_time(self) -> int:
        return max((e.time for e in self.events), default=0)


@dataclass
class Testbench:
    """A complete testbench for one implementation."""

    implementation: str
    vectors: dict[str, TestbenchVector] = field(default_factory=dict)
    clock_period_ns: float = 10.0
    name: Optional[str] = None

    def vector(self, port: str, direction: str) -> TestbenchVector:
        if port not in self.vectors:
            self.vectors[port] = TestbenchVector(port=port, direction=direction)
        return self.vectors[port]

    def drive(self, time: int, port: str, values: Iterable[int], last: Iterable[bool] = ()) -> None:
        """Record an input stimulus transfer."""
        self.vector(port, "drive").add(
            TestbenchEvent(time=time, port=port, values=tuple(values), last=tuple(last))
        )

    def expect(self, time: int, port: str, values: Iterable[int], last: Iterable[bool] = ()) -> None:
        """Record an expected output transfer."""
        self.vector(port, "expect").add(
            TestbenchEvent(time=time, port=port, values=tuple(values), last=tuple(last))
        )

    def duration(self) -> int:
        """Total simulated cycles covered by the testbench."""
        return max((v.last_time() for v in self.vectors.values()), default=0) + 1

    def drive_vectors(self) -> list[TestbenchVector]:
        return [v for v in self.vectors.values() if v.direction == "drive"]

    def expect_vectors(self) -> list[TestbenchVector]:
        return [v for v in self.vectors.values() if v.direction == "expect"]

    def emit(self) -> str:
        """Emit the textual Tydi-IR testbench syntax."""
        lines = [f"testbench {self.name or self.implementation} for {self.implementation} {{"]
        lines.append(f"  clock_period: {self.clock_period_ns}ns;")
        for vector in self.vectors.values():
            keyword = "drive" if vector.direction == "drive" else "expect"
            for event in vector.events:
                values = ", ".join(str(v) for v in event.values)
                last = "".join("1" if flag else "0" for flag in event.last)
                last_part = f" last={last}" if last else ""
                lines.append(f"  @{event.time} {keyword} {vector.port} [{values}]{last_part};")
        lines.append("}")
        return "\n".join(lines) + "\n"
