"""Regeneration of the paper's tables and figures.

* :mod:`repro.report.loc` -- line-of-code accounting helpers.
* :mod:`repro.report.tables` -- Tables I (terminology), II (variable-based
  features), III (HDL comparison) and IV (TPC-H LoC evaluation).
* :mod:`repro.report.figures` -- Figures 1 (toolchain workflow), 2 (big-data
  workflow), 3 (frontend stages) and 4 (sugaring before/after), rendered as
  text derived from the *actual* pipeline objects rather than hard-coded
  strings wherever possible.
"""

from repro.report.loc import LocBreakdown, loc_breakdown, table4_rows
from repro.report.tables import table1, table2, table3, table4
from repro.report.figures import figure1, figure2, figure3, figure4

__all__ = [
    "LocBreakdown",
    "loc_breakdown",
    "table4_rows",
    "table1",
    "table2",
    "table3",
    "table4",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
]
