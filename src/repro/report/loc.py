"""Line-of-code accounting for the Table IV evaluation.

The paper's headline numbers are LoC ratios:

.. math::

    LoC_a = LoC_q + LoC_f + LoC_s \\qquad
    R_q = LoC_{vhdl} / LoC_q \\qquad
    R_a = LoC_{vhdl} / LoC_a

where *q* is the query logic, *f* the Fletcher-generated interface and *s*
the standard library.  :func:`table4_rows` evaluates every query design of
:mod:`repro.queries` and returns one :class:`repro.queries.base.QueryLoc` per
row of Table IV.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.queries import ALL_QUERIES
from repro.queries.base import QueryLoc
from repro.utils.text import count_loc


@dataclass(frozen=True)
class LocBreakdown:
    """Generic LoC breakdown of an arbitrary pair of sources."""

    tydi_loc: int
    vhdl_loc: int

    @property
    def ratio(self) -> float:
        return self.vhdl_loc / self.tydi_loc if self.tydi_loc else 0.0


def loc_breakdown(tydi_source: str, vhdl_files: dict[str, str]) -> LocBreakdown:
    """Measure a Tydi-lang source against its generated VHDL."""
    tydi = count_loc(tydi_source, language="tydi")
    vhdl = sum(count_loc(text, language="vhdl") for text in vhdl_files.values())
    return LocBreakdown(tydi_loc=tydi, vhdl_loc=vhdl)


def table4_rows() -> list[QueryLoc]:
    """Compute the LoC breakdown of every Table-IV row (compiles each query)."""
    return [query.loc() for query in ALL_QUERIES]


#: The numbers reported in the paper's Table IV, for paper-vs-measured
#: comparison in EXPERIMENTS.md and the benchmark output.
PAPER_TABLE4 = {
    "TPC-H 1 (without sugaring)": {"raw_sql": 20, "query_logic": 402, "total": 709, "vhdl": 7547, "rq": 18.77, "ra": 10.50},
    "TPC-H 1": {"raw_sql": 20, "query_logic": 284, "total": 601, "vhdl": 7547, "rq": 26.57, "ra": 12.56},
    "TPC-H 3": {"raw_sql": 22, "query_logic": 166, "total": 483, "vhdl": 6291, "rq": 37.90, "ra": 13.02},
    "TPC-H 5": {"raw_sql": 24, "query_logic": 197, "total": 514, "vhdl": 6992, "rq": 35.49, "ra": 13.60},
    "TPC-H 6": {"raw_sql": 9, "query_logic": 108, "total": 425, "vhdl": 4586, "rq": 42.46, "ra": 10.79},
    "TPC-H 19": {"raw_sql": 35, "query_logic": 297, "total": 614, "vhdl": 11734, "rq": 39.51, "ra": 19.11},
}

#: Paper constants for the shared parts.
PAPER_FLETCHER_LOC = 166
PAPER_STDLIB_LOC = 151
