"""Regeneration of Tables I-IV of the paper.

Tables I-III are descriptive; we regenerate them from the *implementation*
(type registry, feature registry, comparison matrix) so that the benchmark
that prints them doubles as a consistency check: if a term disappears from
the code base, the table changes and the test notices.
Table IV is fully measured -- it compiles every TPC-H design and counts LoC.
"""

from __future__ import annotations

from repro.queries import ALL_QUERIES
from repro.report.loc import PAPER_FLETCHER_LOC, PAPER_STDLIB_LOC, PAPER_TABLE4
from repro.stdlib.source import stdlib_loc
from repro.utils.text import format_table


def table1() -> str:
    """Table I: terms used in Tydi-spec and Tydi-IR."""
    from repro.spec.logical_types import Bit, Group, Null, Stream, Union
    from repro.ir.model import Connection, Implementation, Instance, Port, Streamlet, ClockDomain

    rows = [
        ["Null", "Logical type", Null.__doc__.strip().splitlines()[0]],
        ["Bit(x)", "Logical type", Bit.__doc__.strip().splitlines()[0]],
        ["Group(x,y)", "Logical type", Group.__doc__.strip().splitlines()[0]],
        ["Union(x,y)", "Logical type", Union.__doc__.strip().splitlines()[0]],
        ["Stream(x)", "Logical type", Stream.__doc__.strip().splitlines()[0]],
        ["Port", "Hardware element", Port.__doc__.strip().splitlines()[0]],
        ["Streamlet", "Hardware element", Streamlet.__doc__.strip().splitlines()[0]],
        ["Implementation", "Hardware element", Implementation.__doc__.strip().splitlines()[0]],
        ["Connection", "Hardware element", Connection.__doc__.strip().splitlines()[0]],
        ["Instance", "Hardware element", Instance.__doc__.strip().splitlines()[0]],
        ["Clock domain", "Hardware clock", ClockDomain.__doc__.strip().splitlines()[0]],
    ]
    return "Table I: terms used in Tydi-spec and Tydi-IR\n" + format_table(
        ["Term", "Type", "Meaning (from the implementing class)"], rows
    )


def table2() -> str:
    """Table II: features based on variables in Tydi-lang."""
    rows = [
        [
            "for x in x_array { /*scope*/ }",
            "syntax",
            "instances and connections in the scope are expanded once per value of x "
            "(repro.lang.evaluate, ForStmt expansion)",
        ],
        [
            "if (x) { /*scope*/ }",
            "syntax",
            "x must be a boolean; the scope is expanded only when x is true "
            "(repro.lang.evaluate, IfStmt expansion)",
        ],
        [
            "assert(var)",
            "builtin function",
            "evaluation fails with TydiAssertionError when var is false "
            "(repro.lang.evaluate, AssertStmt)",
        ],
    ]
    return "Table II: features based on variables in Tydi-lang\n" + format_table(
        ["Term", "Type", "Meaning"], rows
    )


#: The comparison matrix of Table III (a qualitative literature table).
HDL_COMPARISON = [
    # language, base language, design aspects, paradigm support, output
    ("Genesis2", "SystemVerilog", "architecture, configuration, functionality", "OOP", "HDL"),
    ("Clash", "Haskell", "architecture, configuration, functionality", "FP", "HDL"),
    (
        "Vitis HLS",
        "C/C++",
        "architecture, configuration, functionality",
        "bit-level stream, FP, OOP with templates",
        "HDL",
    ),
    (
        "CHISEL",
        "Scala",
        "architecture, configuration, functionality",
        "bit-level stream, FP, OOP with templates",
        "HDL, FIRRTL",
    ),
    ("Kamel", "IP-XACT", "architecture", "other", "HDL"),
    ("Veriscala", "Scala", "architecture, configuration, functionality", "FP, OOP", "HDL + driver (FPGA)"),
    (
        "Tydi-lang",
        "None",
        "architecture, configuration",
        "built-in typed stream, OOP with templates",
        "depends on the Tydi-IR backend, currently VHDL",
    ),
]


def table3() -> str:
    """Table III: comparison of Tydi-lang with other high-level HDLs."""
    rows = [list(entry) for entry in HDL_COMPARISON]
    return "Table III: comparison with other high-level HDLs\n" + format_table(
        ["Language", "Base language", "Supported design aspects", "Paradigm support", "Output"],
        rows,
    )


def table4(include_paper: bool = True) -> str:
    """Table IV: LoC for translating TPC-H queries to Tydi-lang (measured)."""
    headers = [
        "Query",
        "Raw SQL",
        "Query logic (LoCq)",
        "Total Tydi-lang (LoCa)",
        "Generated VHDL",
        "Rq = VHDL/LoCq",
        "Ra = VHDL/LoCa",
    ]
    rows: list[list[str]] = []
    fletcher_locs: list[int] = []
    for query in ALL_QUERIES:
        loc = query.loc()
        fletcher_locs.append(loc.fletcher)
        row = loc.as_row()
        if include_paper and loc.query in PAPER_TABLE4:
            paper = PAPER_TABLE4[loc.query]
            row[-2] += f" (paper {paper['rq']:.2f})"
            row[-1] += f" (paper {paper['ra']:.2f})"
        rows.append(row)
    header_lines = [
        "Table IV: LoC for translating TPC-H queries to Tydi-lang",
        f"LoC for Fletcher part (LoCf): {max(fletcher_locs)} (paper: {PAPER_FLETCHER_LOC})",
        f"LoC for Tydi-lang standard library (LoCs): {stdlib_loc()} (paper: {PAPER_STDLIB_LOC})",
    ]
    return "\n".join(header_lines) + "\n" + format_table(headers, rows)
