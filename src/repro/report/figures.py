"""Regeneration of Figures 1-4 of the paper as text diagrams.

Where possible the figures are derived from the live pipeline rather than
hard-coded: Figure 3 renders the stage log of an actual compilation and
Figure 4 renders the before/after component graphs of an actual sugaring run.
"""

from __future__ import annotations

from repro.lang.compile import CompilationResult, compile_project


def figure1() -> str:
    """Figure 1: the Tydi-lang toolchain workflow."""
    return "\n".join(
        [
            "Figure 1: Tydi-lang toolchain workflow",
            "",
            "  hardware designer",
            "        |",
            "        v",
            "  Tydi source code --frontend--> Tydi IR --backend--> VHDL --vendor tool--> FPGA application",
            "        |                            |                  ^",
            "        v                            v                  |",
            "  Tydi simulator ----------> Tydi testbench ----> VHDL testbench",
            "        |",
            "        v",
            "  bottleneck analysis",
            "",
            "module map: frontend=repro.lang, IR=repro.ir, backend=repro.vhdl,",
            "            simulator=repro.sim, testbenches=repro.ir.testbench+repro.vhdl.testbench,",
            "            bottleneck analysis=repro.sim.bottleneck",
        ]
    )


def figure2() -> str:
    """Figure 2: the Tydi-lang workflow in big data."""
    return "\n".join(
        [
            "Figure 2: Tydi-lang workflow in big data",
            "",
            "  Apache Arrow data schema --Fletcher--> components to access memory data",
            "        |                                        |",
            "        |                                        v",
            "  SQL application --designer--> Tydi source code --Tydi-lang compiler--> VHDL component",
            "        ^                               ^                                     |",
            "        |                               |                                     v",
            "  (future work: SQL trans-compiler)  Tydi standard library            FPGA application",
            "",
            "module map: Arrow schema=repro.arrow.schema, Fletcher=repro.arrow.fletcher,",
            "            SQL translation=repro.sql, standard library=repro.stdlib,",
            "            compiler=repro.lang, VHDL=repro.vhdl",
        ]
    )


_DEMO_SOURCE = """
type word = Stream(Bit(8), d=2);
streamlet echo_s { text_in: word in, text_out: word out, }
impl echo_i of echo_s {
    text_in => text_out,
}
top echo_i;
"""


def figure3(result: CompilationResult | None = None) -> str:
    """Figure 3: the Tydi-lang compiler frontend workflow (live stage log)."""
    if result is None:
        result = compile_project(_DEMO_SOURCE)
    lines = [
        "Figure 3: workflow of the Tydi-lang compiler frontend",
        "",
        "  Tydi-lang --parser--> AST --evaluation--> code structure #1..#3",
        "      --sugaring/desugaring--> code structure #4 --DRC--> DRC report --> Tydi-IR",
        "",
        "stage log of an actual compilation:",
    ]
    for index, stage in enumerate(result.stages, start=1):
        lines.append(f"  [{index}] {stage.name}: {stage.detail}")
    return "\n".join(lines)


_SUGARING_DEMO = """
type num = Stream(Bit(32), d=1);
streamlet producer_s { a: num out, unused: num out, }
external impl producer_i of producer_s;
streamlet consumer_s { value: num in, }
external impl adder10_i of consumer_s;
external impl doubler_i of consumer_s;
streamlet demo_s { b0: num out, b1: num out, }
impl demo_i of demo_s {
    // b0 = a + 10; b1 = a * 2;  -- 'a' is used twice, 'unused' never
    instance source(producer_i),
    instance adder(adder10_i),
    instance multiplier(doubler_i),
    source.a => adder.value,
    source.a => multiplier.value,
    b0 => b0,
}
top demo_i;
"""


def _component_graph(result: CompilationResult, implementation_name: str) -> list[str]:
    project = result.project
    implementation = project.implementation(implementation_name)
    lines = [f"  instances of {implementation_name}:"]
    for instance in implementation.instances:
        marker = " (auto-inserted)" if instance.metadata.get("synthesized") else ""
        lines.append(f"    {instance.name}: {instance.implementation}{marker}")
    lines.append("  connections:")
    for connection in implementation.connections:
        marker = " (auto)" if connection.synthesized else ""
        lines.append(f"    {connection.source} => {connection.sink}{marker}")
    return lines


def figure4() -> str:
    """Figure 4: automatic insertion of voider and duplicator (live example).

    Mirrors the paper's ``b0 = a + 10; b1 = a * 2`` example: the producer's
    ``a`` output feeds two consumers (a duplicator is inserted) and its
    ``unused`` output feeds nobody (a voider is inserted).
    """
    source = """
type num = Stream(Bit(32), d=1);
streamlet producer_s { a: num out, unused: num out, }
external impl producer_i of producer_s;
streamlet unary_op_s { value: num in, result: num out, }
external impl adder10_i of unary_op_s;
external impl doubler_i of unary_op_s;
streamlet demo_s { b0: num out, b1: num out, }
impl demo_i of demo_s {
    instance source(producer_i),
    instance adder(adder10_i),
    instance multiplier(doubler_i),
    source.a => adder.value,
    source.a => multiplier.value,
    adder.result => b0,
    multiplier.result => b1,
}
top demo_i;
"""
    before = compile_project(source, sugaring=False, strict_drc=False)
    after = compile_project(source, sugaring=True)
    lines = ["Figure 4: auto insertion of voider and duplicator", ""]
    lines.append("before sugaring (DRC would reject this design):")
    lines.extend(_component_graph(before, "demo_i"))
    drc_errors = [str(v) for v in before.drc.errors] if before.drc else []
    for error in drc_errors:
        lines.append(f"    DRC: {error}")
    lines.append("")
    lines.append("after sugaring:")
    lines.extend(_component_graph(after, "demo_i"))
    if after.sugaring:
        lines.append(f"  {after.sugaring.summary()}")
    return "\n".join(lines)
