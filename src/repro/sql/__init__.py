"""SQL subset frontend and SQL -> Tydi-lang translation.

Section VI of the paper translates TPC-H queries to Tydi-lang *by hand* and
notes that "it is possible to design a tool to automatically compile SQL to
Tydi-lang in the future".  This package implements that future-work tool for
the SQL subset the evaluation needs:

* ``SELECT`` of aggregates (``sum``, ``count``, ``avg``, ``min``, ``max``)
  over arithmetic expressions and plain columns,
* ``FROM`` a single table (or a join-aligned projection, matching how the
  hardware designs receive multi-table queries),
* ``WHERE`` with ``and`` / ``or`` / ``not``, comparisons, ``between`` and
  ``in`` lists over columns, numeric / string / date literals,
* ``GROUP BY`` one or two columns.

The translator (:func:`repro.sql.translate.translate_select`) emits Tydi-lang
in the same style as the hand-written designs of :mod:`repro.queries`, using
the same standard-library templates, so its output compiles, passes the DRC
and can be simulated.
"""

from repro.sql.ast import (
    Aggregate,
    BetweenExpr,
    BinaryExpr,
    ColumnRef,
    InExpr,
    Literal,
    NotExpr,
    SelectStatement,
)
from repro.sql.parser import parse_sql
from repro.sql.translate import TranslationResult, translate_select

__all__ = [
    "Aggregate",
    "BetweenExpr",
    "BinaryExpr",
    "ColumnRef",
    "InExpr",
    "Literal",
    "NotExpr",
    "SelectStatement",
    "parse_sql",
    "TranslationResult",
    "translate_select",
]
