"""Recursive-descent parser for the SQL subset.

Grammar (case-insensitive keywords):

.. code-block:: text

    select     := SELECT item ("," item)* FROM name ("," name)*
                  (WHERE expr)? (GROUP BY column ("," column)*)?
                  (ORDER BY column (ASC|DESC)? ("," ...)*)? ";"?
    item       := expr (AS? IDENT)?
    expr       := or_expr
    or_expr    := and_expr (OR and_expr)*
    and_expr   := not_expr (AND not_expr)*
    not_expr   := NOT not_expr | predicate
    predicate  := additive (("="|"<>"|"!="|"<"|"<="|">"|">=") additive
                  | BETWEEN additive AND additive
                  | IN "(" expr ("," expr)* ")")?
    additive   := multiplicative (("+"|"-") multiplicative)*
    multiplicative := primary (("*"|"/") primary)*
    primary    := NUMBER | STRING | DATE string | IDENT("." IDENT)?
                  | agg "(" ("*" | expr) ")" | "(" expr ")"
                  | DATE string (+|-) INTERVAL string unit

Date literals (``date '1994-01-01'``) are converted to integer day offsets
from 1992-01-01 so they compare directly against the synthetic dataset's
date columns; ``interval 'n' year/month/day`` arithmetic is folded into the
resulting day offset.
"""

from __future__ import annotations

import datetime
import re

from repro.errors import TydiSyntaxError
from repro.sql.ast import (
    Aggregate,
    BetweenExpr,
    BinaryExpr,
    ColumnRef,
    InExpr,
    Literal,
    NotExpr,
    SelectItem,
    SelectStatement,
    SqlExpr,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|--[^\n]*)
  | (?P<number>\d+\.\d+|\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><>|!=|<=|>=|[(),;*+\-/.=<>])
    """,
    re.VERBOSE,
)

_EPOCH = datetime.date(1992, 1, 1)

_AGGREGATES = {"sum", "count", "avg", "min", "max"}


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise TydiSyntaxError(f"unexpected SQL character {text[position]!r} at offset {position}")
        position = match.end()
        if match.lastgroup == "ws":
            continue
        tokens.append(match.group())
    return tokens


def _date_to_days(text: str) -> int:
    parsed = datetime.date.fromisoformat(text)
    return (parsed - _EPOCH).days


class SqlParser:
    """Token-list parser for the SQL subset."""

    def __init__(self, tokens: list[str]) -> None:
        self.tokens = tokens
        self.position = 0

    # -- token helpers -------------------------------------------------------------

    def peek(self, offset: int = 0) -> str:
        index = self.position + offset
        return self.tokens[index] if index < len(self.tokens) else ""

    def peek_lower(self, offset: int = 0) -> str:
        return self.peek(offset).lower()

    def advance(self) -> str:
        token = self.peek()
        self.position += 1
        return token

    def expect(self, expected: str) -> str:
        token = self.advance()
        if token.lower() != expected.lower():
            raise TydiSyntaxError(f"expected {expected!r} in SQL, found {token!r}")
        return token

    def accept(self, expected: str) -> bool:
        if self.peek_lower() == expected.lower():
            self.advance()
            return True
        return False

    # -- grammar ----------------------------------------------------------------------

    def parse_select(self) -> SelectStatement:
        self.expect("select")
        statement = SelectStatement()
        statement.items.append(self.parse_item())
        while self.accept(","):
            statement.items.append(self.parse_item())
        self.expect("from")
        statement.tables.append(self.advance())
        while self.accept(","):
            statement.tables.append(self.advance())
        if self.accept("where"):
            statement.where = self.parse_expr()
        if self.peek_lower() == "group":
            self.advance()
            self.expect("by")
            statement.group_by.append(self.parse_column())
            while self.accept(","):
                statement.group_by.append(self.parse_column())
        if self.peek_lower() == "order":
            self.advance()
            self.expect("by")
            while True:
                statement.order_by.append(self.parse_column())
                if self.peek_lower() in ("asc", "desc"):
                    self.advance()
                if not self.accept(","):
                    break
        self.accept(";")
        if self.position < len(self.tokens):
            raise TydiSyntaxError(f"unexpected trailing SQL token {self.peek()!r}")
        return statement

    def parse_item(self) -> SelectItem:
        expr = self.parse_expr()
        alias = None
        if self.accept("as"):
            alias = self.advance()
        elif self.peek() and self.peek_lower() not in (",", "from") and re.fullmatch(
            r"[A-Za-z_][A-Za-z_0-9]*", self.peek()
        ):
            alias = self.advance()
        if isinstance(expr, Aggregate) and alias:
            expr = Aggregate(function=expr.function, argument=expr.argument, alias=alias)
        return SelectItem(expr=expr, alias=alias)

    def parse_column(self) -> ColumnRef:
        name = self.advance()
        if self.peek() == ".":
            self.advance()
            column = self.advance()
            return ColumnRef(column=column, table=name)
        return ColumnRef(column=name)

    # expressions -----------------------------------------------------------------------

    def parse_expr(self) -> SqlExpr:
        return self.parse_or()

    def parse_or(self) -> SqlExpr:
        left = self.parse_and()
        while self.peek_lower() == "or":
            self.advance()
            right = self.parse_and()
            left = BinaryExpr(op="or", left=left, right=right)
        return left

    def parse_and(self) -> SqlExpr:
        left = self.parse_not()
        while self.peek_lower() == "and":
            self.advance()
            right = self.parse_not()
            left = BinaryExpr(op="and", left=left, right=right)
        return left

    def parse_not(self) -> SqlExpr:
        if self.peek_lower() == "not":
            self.advance()
            return NotExpr(operand=self.parse_not())
        return self.parse_predicate()

    def parse_predicate(self) -> SqlExpr:
        left = self.parse_additive()
        lower = self.peek_lower()
        if lower in ("=", "<>", "!=", "<", "<=", ">", ">="):
            op = self.advance()
            op = "<>" if op == "!=" else op
            right = self.parse_additive()
            return BinaryExpr(op=op, left=left, right=right)
        if lower == "between":
            self.advance()
            low = self.parse_additive()
            self.expect("and")
            high = self.parse_additive()
            return BetweenExpr(operand=left, low=low, high=high)
        if lower == "in":
            self.advance()
            self.expect("(")
            options = [self.parse_expr()]
            while self.accept(","):
                options.append(self.parse_expr())
            self.expect(")")
            return InExpr(operand=left, options=tuple(options))
        return left

    def parse_additive(self) -> SqlExpr:
        left = self.parse_multiplicative()
        while self.peek() in ("+", "-"):
            op = self.advance()
            right = self.parse_multiplicative()
            left = self._fold_or_binary(op, left, right)
        return left

    def parse_multiplicative(self) -> SqlExpr:
        left = self.parse_primary()
        while self.peek() in ("*", "/"):
            op = self.advance()
            right = self.parse_primary()
            left = BinaryExpr(op=op, left=left, right=right)
        return left

    def _fold_or_binary(self, op: str, left: SqlExpr, right: SqlExpr) -> SqlExpr:
        """Fold literal +/- literal (used by date +/- interval arithmetic)."""
        if isinstance(left, Literal) and isinstance(right, Literal) and isinstance(
            left.value, (int, float)
        ) and isinstance(right.value, (int, float)):
            value = left.value + right.value if op == "+" else left.value - right.value
            return Literal(value=value)
        return BinaryExpr(op=op, left=left, right=right)

    def parse_primary(self) -> SqlExpr:
        token = self.peek()
        lower = token.lower()

        if token == "(":
            self.advance()
            inner = self.parse_expr()
            self.expect(")")
            return inner

        if re.fullmatch(r"\d+\.\d+", token):
            self.advance()
            return Literal(value=float(token))
        if re.fullmatch(r"\d+", token):
            self.advance()
            return Literal(value=int(token))
        if token.startswith("'"):
            self.advance()
            return Literal(value=token[1:-1].replace("''", "'"))

        if lower == "date":
            self.advance()
            literal = self.advance()
            if not literal.startswith("'"):
                raise TydiSyntaxError(f"expected a quoted date after DATE, found {literal!r}")
            return Literal(value=_date_to_days(literal[1:-1]))

        if lower == "interval":
            self.advance()
            amount_token = self.advance()
            amount = int(amount_token.strip("'"))
            unit = self.advance().lower()
            days = {"day": 1, "days": 1, "month": 30, "months": 30, "year": 365, "years": 365}.get(unit)
            if days is None:
                raise TydiSyntaxError(f"unsupported interval unit {unit!r}")
            return Literal(value=amount * days)

        if lower in _AGGREGATES and self.peek(1) == "(":
            self.advance()
            self.expect("(")
            if self.peek() == "*":
                self.advance()
                argument = None
            else:
                argument = self.parse_expr()
            self.expect(")")
            return Aggregate(function=lower, argument=argument)

        if re.fullmatch(r"[A-Za-z_][A-Za-z_0-9]*", token):
            return self.parse_column()

        raise TydiSyntaxError(f"unexpected SQL token {token!r}")


def parse_sql(text: str) -> SelectStatement:
    """Parse a SELECT statement of the supported SQL subset."""
    return SqlParser(_tokenize(text)).parse_select()
