"""SQL -> Tydi-lang translation.

``translate_select`` turns a parsed :class:`~repro.sql.ast.SelectStatement`
into a Tydi-lang design in the same style as the hand-written TPC-H designs:

* one Fletcher reader instance for the source table (or join-aligned
  projection),
* a comparator / boolean-combinator network for the WHERE clause,
* arithmetic instances for the aggregated value expressions,
* ``filter`` + (grouped) aggregation instances, one top-level output port per
  SELECT aggregate.

Fan-out and unused reader columns are left to sugaring, exactly as in the
hand-written sugared designs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arrow.schema import ArrowSchema
from repro.errors import TydiEvaluationError
from repro.sql.ast import (
    Aggregate,
    BetweenExpr,
    BinaryExpr,
    ColumnRef,
    InExpr,
    Literal,
    NotExpr,
    SelectStatement,
    SqlExpr,
)

#: SQL comparison operator -> standard-library comparator template.
_COMPARATORS = {
    "=": "compare_eq_i",
    "<>": "compare_ne_i",
    "<": "compare_lt_i",
    "<=": "compare_le_i",
    ">": "compare_gt_i",
    ">=": "compare_ge_i",
}

#: Aggregate function -> (plain template, grouped template).
_AGGREGATE_TEMPLATES = {
    "sum": ("sum_i", "group_sum_i"),
    "count": ("count_i", "group_count_i"),
    "avg": ("avg_i", "group_avg_i"),
    "min": ("min_acc_i", "group_sum_i"),
    "max": ("max_acc_i", "group_sum_i"),
}


@dataclass
class TranslationResult:
    """The output of one SQL -> Tydi-lang translation."""

    source: str
    top: str
    schema: ArrowSchema
    output_ports: list[str] = field(default_factory=list)

    def loc(self) -> int:
        from repro.utils.text import count_loc

        return count_loc(self.source, language="tydi")


class _Emitter:
    """Collects instance/connection lines and hands out unique names."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self._counters: dict[str, int] = {}

    def fresh(self, prefix: str) -> str:
        self._counters[prefix] = self._counters.get(prefix, 0) + 1
        return f"{prefix}_{self._counters[prefix]}"

    def instance(self, name: str, target: str) -> str:
        self.lines.append(f"    instance {name}({target}),")
        return name

    def connect(self, source: str, sink: str) -> None:
        self.lines.append(f"    {source} => {sink},")

    def comment(self, text: str) -> None:
        self.lines.append(f"    // {text}")

    def blank(self) -> None:
        self.lines.append("")


class _Translator:
    def __init__(self, statement: SelectStatement, schema: ArrowSchema, name: str) -> None:
        self.statement = statement
        self.schema = schema
        self.name = name
        self.emitter = _Emitter()
        self.reader = "data"

    # -- type handling --------------------------------------------------------------

    def column_alias(self, column: ColumnRef) -> str:
        if column.column not in self.schema:
            raise TydiEvaluationError(
                f"column {column.column!r} is not part of schema {self.schema.name!r}"
            )
        return self.schema.field(column.column).type_alias()

    def literal_generator(self, value: object, type_alias: str) -> tuple[str, str]:
        """Emit a constant generator for ``value``; return (instance, template)."""
        if isinstance(value, bool):
            template = f"const_int_generator_i<type {type_alias}, {int(value)}>"
        elif isinstance(value, int):
            template = f"const_int_generator_i<type {type_alias}, {value}>"
        elif isinstance(value, float):
            template = f"const_float_generator_i<type {type_alias}, {value}>"
        else:
            escaped = str(value).replace('"', '\\"')
            template = f'const_str_generator_i<type {type_alias}, "{escaped}">'
        name = self.emitter.fresh("const")
        self.emitter.instance(name, template)
        return name, template

    # -- value expressions ------------------------------------------------------------

    def value_source(self, expr: SqlExpr) -> tuple[str, str]:
        """Lower a value expression; return (source port ref, type alias)."""
        if isinstance(expr, ColumnRef):
            return f"{self.reader}.{expr.column}", self.column_alias(expr)
        if isinstance(expr, Literal):
            # Standalone literal value streams (e.g. `1 - l_discount` lowers the 1).
            alias = "tpch_decimal" if isinstance(expr.value, float) else "tpch_int"
            name, _ = self.literal_generator(expr.value, alias)
            return f"{name}.output", alias
        if isinstance(expr, BinaryExpr) and expr.op in ("+", "-", "*", "/"):
            templates = {"+": "adder_i", "-": "subtractor_i", "*": "multiplier_i", "/": "divider_i"}
            # Determine the result alias from the non-literal operands first so
            # that literal operands can be generated with the matching named
            # type (strict DRC equality requires identical aliases).
            operand_aliases = [
                self.value_source_alias_only(side)[1]
                for side in (expr.left, expr.right)
                if not isinstance(side, Literal)
            ]
            result_alias = (
                "tpch_decimal"
                if not operand_aliases or "tpch_decimal" in operand_aliases
                else operand_aliases[0]
            )

            def lower_operand(side: SqlExpr) -> str:
                if isinstance(side, Literal):
                    name, _ = self.literal_generator(self._coerce(side.value, result_alias), result_alias)
                    return f"{name}.output"
                ref, _ = self.value_source(side)
                return ref

            left_ref = lower_operand(expr.left)
            right_ref = lower_operand(expr.right)
            name = self.emitter.fresh("arith")
            self.emitter.instance(
                name, f"{templates[expr.op]}<type {result_alias}, type {result_alias}>"
            )
            self.emitter.connect(left_ref, f"{name}.lhs")
            self.emitter.connect(right_ref, f"{name}.rhs")
            return f"{name}.output", result_alias
        raise TydiEvaluationError(f"unsupported value expression {expr!r} in SQL translation")

    # -- boolean expressions --------------------------------------------------------------

    def condition_source(self, expr: SqlExpr) -> str:
        """Lower a boolean expression; return the std_bool source port ref."""
        if isinstance(expr, BinaryExpr) and expr.op in ("and", "or"):
            operands = self._flatten(expr, expr.op)
            sources = [self.condition_source(operand) for operand in operands]
            gate = self.emitter.fresh("all" if expr.op == "and" else "any")
            template = "and_i" if expr.op == "and" else "or_i"
            self.emitter.instance(gate, f"{template}<{len(sources)}>")
            for index, source in enumerate(sources):
                self.emitter.connect(source, f"{gate}.input[{index}]")
            return f"{gate}.output"

        if isinstance(expr, NotExpr):
            inner = self.condition_source(expr.operand)
            gate = self.emitter.fresh("negate")
            self.emitter.instance(gate, "not_i")
            self.emitter.connect(inner, f"{gate}.input[0]")
            return f"{gate}.output"

        if isinstance(expr, BetweenExpr):
            low = BinaryExpr(op=">=", left=expr.operand, right=expr.low)
            high = BinaryExpr(op="<=", left=expr.operand, right=expr.high)
            return self.condition_source(BinaryExpr(op="and", left=low, right=high))

        if isinstance(expr, InExpr):
            options = [BinaryExpr(op="=", left=expr.operand, right=option) for option in expr.options]
            combined: SqlExpr = options[0]
            for option in options[1:]:
                combined = BinaryExpr(op="or", left=combined, right=option)
            return self.condition_source(combined)

        if isinstance(expr, BinaryExpr) and expr.op in _COMPARATORS:
            return self._comparison(expr)

        raise TydiEvaluationError(f"unsupported boolean expression {expr!r} in SQL translation")

    def _flatten(self, expr: BinaryExpr, op: str) -> list[SqlExpr]:
        operands: list[SqlExpr] = []
        for side in (expr.left, expr.right):
            if isinstance(side, BinaryExpr) and side.op == op:
                operands.extend(self._flatten(side, op))
            else:
                operands.append(side)
        return operands

    def _comparison(self, expr: BinaryExpr) -> str:
        left, right = expr.left, expr.right
        # Normalise literal-on-the-left comparisons.
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}
        if isinstance(left, Literal) and isinstance(right, (ColumnRef, BinaryExpr)):
            left, right = right, left
            expr = BinaryExpr(op=flipped[expr.op], left=left, right=right)

        # String equality against a constant uses the dedicated template.
        if (
            expr.op == "="
            and isinstance(right, Literal)
            and isinstance(right.value, str)
        ):
            _, alias = self.value_source_alias_only(left)
            name = self.emitter.fresh("cmp")
            escaped = right.value.replace('"', '\\"')
            self.emitter.instance(
                name, f'compare_const_eq_i<type {alias}, "{escaped}">'
            )
            left_ref, _ = self.value_source(left)
            self.emitter.connect(left_ref, f"{name}.input")
            return f"{name}.result"

        left_ref, left_alias = self.value_source(left)
        if isinstance(right, Literal):
            # Constant generators must produce the same named alias as the column.
            right_ref = self._retype_last_const(left_alias, right.value)
        else:
            right_ref, _ = self.value_source(right)
        name = self.emitter.fresh("cmp")
        self.emitter.instance(name, f"{_COMPARATORS[expr.op]}<type {left_alias}>")
        self.emitter.connect(left_ref, f"{name}.lhs")
        self.emitter.connect(right_ref, f"{name}.rhs")
        return f"{name}.result"

    def value_source_alias_only(self, expr: SqlExpr) -> tuple[None, str]:
        if isinstance(expr, ColumnRef):
            return None, self.column_alias(expr)
        return None, "tpch_decimal"

    def _coerce(self, value: object, alias: str) -> object:
        if alias == "tpch_decimal" and isinstance(value, int):
            return float(value)
        return value

    def _retype_last_const(self, alias: str, value: object) -> str:
        """Emit a constant generator typed with the column's alias."""
        name, _ = self.literal_generator(self._coerce(value, alias), alias)
        return f"{name}.output"

    # -- top level --------------------------------------------------------------------------

    def translate(self) -> TranslationResult:
        statement = self.statement
        emitter = self.emitter
        aggregates = statement.aggregates()
        if not aggregates:
            raise TydiEvaluationError(
                "SQL translation currently requires at least one aggregate in the SELECT list"
            )
        if len(statement.group_by) > 2:
            raise TydiEvaluationError("SQL translation supports at most two GROUP BY columns")

        output_ports: list[str] = []
        port_decls: list[str] = []
        result_type = f"{self.name}_result"
        key_type = f"{self.name}_key"

        emitter.comment(f"reader for {self.schema.name}")
        emitter.instance(self.reader, f"{self.schema.name}_reader_i")
        emitter.blank()

        keep_ref = None
        if statement.where is not None:
            emitter.comment("WHERE clause")
            keep_ref = self.condition_source(statement.where)
            emitter.blank()

        # Group key network (shared by all grouped aggregates).
        key_ref = None
        if statement.group_by:
            emitter.comment("GROUP BY key")
            if len(statement.group_by) == 1:
                key_ref, key_alias = self.value_source(statement.group_by[0])
            else:
                first, second = statement.group_by[0], statement.group_by[1]
                first_ref, first_alias = self.value_source(first)
                second_ref, second_alias = self.value_source(second)
                combiner = emitter.fresh("key")
                emitter.instance(
                    combiner,
                    f"combine2_i<type {first_alias}, type {second_alias}, type {key_type}>",
                )
                emitter.connect(first_ref, f"{combiner}.in0")
                emitter.connect(second_ref, f"{combiner}.in1")
                key_ref, key_alias = f"{combiner}.output", key_type
            if keep_ref is not None:
                key_filter = emitter.fresh("key_filter")
                emitter.instance(key_filter, f"filter_i<type {key_alias}>")
                emitter.connect(key_ref, f"{key_filter}.input")
                emitter.connect(keep_ref, f"{key_filter}.keep")
                key_ref = f"{key_filter}.output"
            emitter.blank()
        else:
            key_alias = key_type

        for index, aggregate in enumerate(aggregates):
            port = aggregate.alias or f"{aggregate.function}_{index}"
            output_ports.append(port)
            port_decls.append(f"    {port}: {result_type} out,")
            emitter.comment(f"aggregate {aggregate.function}({'' if aggregate.argument is None else '...'}) -> {port}")

            if aggregate.argument is None:
                value_ref, value_alias = self.value_source(self._count_argument())
            else:
                value_ref, value_alias = self.value_source(aggregate.argument)
            if keep_ref is not None:
                value_filter = emitter.fresh("filter")
                emitter.instance(value_filter, f"filter_i<type {value_alias}>")
                emitter.connect(value_ref, f"{value_filter}.input")
                emitter.connect(keep_ref, f"{value_filter}.keep")
                value_ref = f"{value_filter}.output"

            plain_template, grouped_template = _AGGREGATE_TEMPLATES[aggregate.function]
            agg = emitter.fresh("agg")
            if statement.group_by:
                emitter.instance(
                    agg,
                    f"{grouped_template}<type {key_alias}, type {value_alias}, type {result_type}>",
                )
                emitter.connect(key_ref, f"{agg}.key")
                emitter.connect(value_ref, f"{agg}.value")
            else:
                emitter.instance(agg, f"{plain_template}<type {value_alias}, type {result_type}>")
                emitter.connect(value_ref, f"{agg}.input")
            emitter.connect(f"{agg}.output", port)
            emitter.blank()

        top = f"{self.name}_i"
        streamlet = f"{self.name}_s"
        result_port_type = (
            f"type {result_type} = Stream(Bit(128), d=1);"
            if not statement.group_by
            else f"type {result_type} = Stream(Bit(128), d=1);"
        )
        key_decl = f"type {key_type} = Stream(Bit(128), d=1);" if statement.group_by else ""
        source = "\n".join(
            line
            for line in [
                f"package {self.name};",
                "",
                f"// Generated from SQL by repro.sql.translate (tables: {', '.join(statement.tables)})",
                "",
                result_port_type,
                key_decl,
                "",
                f"streamlet {streamlet} {{",
                *port_decls,
                "}",
                "",
                f"impl {top} of {streamlet} {{",
                *self.emitter.lines,
                "}",
                "",
                f"top {top};",
                "",
            ]
            if line is not None
        )
        return TranslationResult(
            source=source, top=top, schema=self.schema, output_ports=output_ports
        )

    def _count_argument(self) -> SqlExpr:
        """count(*) counts rows; use the first schema column as the carrier."""
        return ColumnRef(column=self.schema.fields[0].name)


def translate_select(
    statement: SelectStatement | str,
    schema: ArrowSchema,
    *,
    name: str = "generated_query",
) -> TranslationResult:
    """Translate a SELECT statement (or its SQL text) into a Tydi-lang design.

    ``schema`` names the table (or join-aligned projection) whose Fletcher
    reader supplies the columns; every column referenced by the statement
    must exist in it.
    """
    from repro.sql.parser import parse_sql

    if isinstance(statement, str):
        statement = parse_sql(statement)
    return _Translator(statement, schema, name).translate()
