"""AST node definitions for the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class SqlExpr:
    """Base class of SQL value/boolean expressions."""


@dataclass(frozen=True)
class Literal(SqlExpr):
    """A numeric, string or date literal (dates become integer day offsets)."""

    value: object


@dataclass(frozen=True)
class ColumnRef(SqlExpr):
    """A reference to a column, optionally qualified with a table name."""

    column: str
    table: Optional[str] = None

    @property
    def name(self) -> str:
        return self.column


@dataclass(frozen=True)
class BinaryExpr(SqlExpr):
    """A binary operation: arithmetic, comparison, AND or OR."""

    op: str  # '+', '-', '*', '/', '=', '<>', '<', '<=', '>', '>=', 'and', 'or'
    left: SqlExpr
    right: SqlExpr


@dataclass(frozen=True)
class NotExpr(SqlExpr):
    """Boolean negation."""

    operand: SqlExpr


@dataclass(frozen=True)
class BetweenExpr(SqlExpr):
    """``expr BETWEEN low AND high``."""

    operand: SqlExpr
    low: SqlExpr
    high: SqlExpr


@dataclass(frozen=True)
class InExpr(SqlExpr):
    """``expr IN (v1, v2, ...)``."""

    operand: SqlExpr
    options: tuple[SqlExpr, ...]


@dataclass(frozen=True)
class Aggregate(SqlExpr):
    """An aggregate function call: sum/count/avg/min/max."""

    function: str
    argument: Optional[SqlExpr]  # None for count(*)
    alias: Optional[str] = None


@dataclass(frozen=True)
class SelectItem:
    """One item of the SELECT list."""

    expr: SqlExpr
    alias: Optional[str] = None


@dataclass
class SelectStatement:
    """A parsed SELECT statement."""

    items: list[SelectItem] = field(default_factory=list)
    tables: list[str] = field(default_factory=list)
    where: Optional[SqlExpr] = None
    group_by: list[ColumnRef] = field(default_factory=list)
    order_by: list[ColumnRef] = field(default_factory=list)

    def aggregates(self) -> list[Aggregate]:
        return [item.expr for item in self.items if isinstance(item.expr, Aggregate)]

    def plain_columns(self) -> list[ColumnRef]:
        return [item.expr for item in self.items if isinstance(item.expr, ColumnRef)]
