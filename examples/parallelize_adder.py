#!/usr/bin/env python3
"""The paper's Section IV-B worked example: the ``parallelize`` template.

A 32-bit adder with a latency of 8 cycles cannot absorb one packet per cycle
on its own.  The standard library's ``parallelize_i`` template wraps *any*
processing-unit implementation with a demultiplexer and a multiplexer so that
``channel`` copies work round-robin in parallel, restoring full throughput.

This example instantiates the template with an 8-cycle adder and 8 channels,
simulates both the single adder and the parallelised version, and compares
how long each takes to process the same input stream -- the kind of
bottleneck analysis Section V describes.

Run with:  python examples/parallelize_adder.py
"""

from repro.lang import compile_project
from repro.sim import Simulator, analyze_bottlenecks
from repro.sim.behavior import PrimitiveBehavior
from repro.sim.packets import Packet

SOURCE_TEMPLATE = """
Group AdderInput {{ data0: Bit(32), data1: Bit(32), }}
type Input = Stream(AdderInput, d=1);
Group AdderResult {{ data: Bit(32), overflow: Bit(1), }}
type Result = Stream(AdderResult, d=1);

// The processing unit: an externally implemented 32-bit adder with an
// 8-cycle latency (its behaviour is registered with the simulator below).
external impl adder_32 of process_unit_s<type Input, type Result>;

streamlet accelerator_s {{
    input: Input in,
    output: Result out,
}}

impl accelerator_i of accelerator_s {{
    // {description}
    instance engine({engine}),
    input => engine.input,
    engine.output => output,
}}

top accelerator_i;
"""


class SlowAdderBehavior(PrimitiveBehavior):
    """A 32-bit adder that takes 8 cycles per packet (the paper's premise)."""

    latency = 8

    def fire(self, ctx) -> bool:
        if not ctx.has_input("input") or not ctx.can_send("output"):
            return False
        if ctx.get_state("busy_until", 0) > ctx.now:
            return False
        packet = ctx.take("input")
        if packet.value is None:
            ctx.send("output", Packet(None, last=packet.last), delay=self.latency)
            return True
        data0, data1 = packet.value
        total = (data0 + data1) & 0xFFFFFFFF
        overflow = int(data0 + data1 > 0xFFFFFFFF)
        ctx.send("output", Packet((total, overflow), last=packet.last), delay=self.latency)
        ctx.set_state("busy_until", ctx.now + self.latency)
        return True


def build(engine: str, description: str):
    return compile_project(SOURCE_TEMPLATE.format(engine=engine, description=description))


def simulate(result, label: str, packets):
    simulator = Simulator(
        result.project,
        behaviors={"adder_32": lambda impl: SlowAdderBehavior(impl)},
        channel_capacity=2,
    )
    simulator.drive("input", packets)
    trace = simulator.run()
    outputs = trace.output_values("output")
    print(f"  {label:<28} processed {len(outputs)} packets in {trace.end_time} cycles")
    report = analyze_bottlenecks(trace)
    worst = report.worst(1)
    if worst and worst[0].congestion_score() > 0:
        print(f"  {'':<28} bottleneck: {worst[0].channel} "
              f"(avg wait {worst[0].average_queue_wait:.1f} cycles)")
    return trace


def main() -> None:
    packets = [(i, 1000 + i) for i in range(64)]

    print("single 8-cycle adder:")
    single = build("adder_32", "a single slow processing unit")
    simulate(single, "1 processing unit", packets)

    print("\nparallelize_i<Input, Result, adder_32, 8> (the paper's template):")
    parallel = build(
        "parallelize_i<type Input, type Result, impl adder_32, 8>",
        "8 processing units behind a demux/mux pair",
    )
    trace = simulate(parallel, "8 parallel processing units", packets)

    results = trace.output_values("output")
    assert sorted(r[0] for r in results) == sorted((a + b) & 0xFFFFFFFF for a, b in packets)
    print("\nresults verified: parallelised output matches the scalar adder semantics")


if __name__ == "__main__":
    main()
