#!/usr/bin/env python3
"""The big-data workflow of Figure 2: SQL -> Tydi-lang -> VHDL, validated in simulation.

This example drives the whole accelerator-design flow the paper motivates:

1. take a SQL query (TPC-H Q6) over an Arrow-style schema,
2. generate the memory-access interfaces with the Fletcher substitute,
3. translate the query automatically to Tydi-lang (the paper's future-work
   trans-compiler, implemented in :mod:`repro.sql`),
4. compile to Tydi-IR, apply sugaring, run the DRC and emit VHDL,
5. stream a synthetic TPC-H dataset through the compiled design with the
   event-driven simulator and compare against the numpy reference answer,
6. report the line-of-code ratios that Table IV is built from.

Run with:  python examples/sql_acceleration.py
"""

from repro.arrow.fletcher import fletcher_interface_source, reader_behaviors
from repro.arrow.tpch import LINEITEM_SCHEMA, generate_tpch_data, golden_q6
from repro.lang import compile_sources
from repro.queries.q6 import SQL as Q6_SQL
from repro.sim import Simulator
from repro.sql import translate_select
from repro.utils.text import count_loc
from repro.vhdl.backend import VhdlBackend

def main() -> None:
    print("== 1. the SQL query (TPC-H Q6) ==")
    print(Q6_SQL.strip())

    print("\n== 2. Fletcher-generated memory interface ==")
    fletcher_source = fletcher_interface_source([LINEITEM_SCHEMA])
    print(f"  {count_loc(fletcher_source, 'tydi')} LoC of reader interface for "
          f"{len(LINEITEM_SCHEMA)} lineitem columns")

    print("\n== 3. automatic SQL -> Tydi-lang translation ==")
    translation = translate_select(Q6_SQL, LINEITEM_SCHEMA, name="q6_accel")
    print(f"  generated {translation.loc()} LoC of Tydi-lang query logic")
    print("  excerpt:")
    for line in translation.source.splitlines()[12:24]:
        print(f"    {line}")

    print("\n== 4. compile to Tydi-IR and VHDL ==")
    result = compile_sources(
        [(fletcher_source, "fletcher.td"), (translation.source, "q6.td")],
        top=translation.top,
        project_name="q6_accel",
    )
    for stage in result.stages:
        print(f"  {stage}")
    vhdl_loc = VhdlBackend(result.project).total_loc()
    tydi_loc = translation.loc() + count_loc(fletcher_source, "tydi")
    print(f"  generated VHDL: {vhdl_loc} LoC "
          f"(ratio vs. query logic: {vhdl_loc / translation.loc():.1f}x)")

    print("\n== 5. functional validation in the Tydi simulator ==")
    tables = generate_tpch_data(600, seed=2023)
    simulator = Simulator(
        result.project,
        behaviors=reader_behaviors([LINEITEM_SCHEMA], {"lineitem": tables["lineitem"]}),
        channel_capacity=4,
    )
    trace = simulator.run()
    measured = trace.output_values(translation.output_ports[0])[-1]
    reference = golden_q6(tables)
    print(f"  simulated revenue: {measured:,.2f}")
    print(f"  numpy reference:   {reference:,.2f}")
    assert abs(measured - reference) < 1e-6 * max(1.0, abs(reference))
    print("  MATCH — the generated hardware computes the query correctly")

    print("\n== 6. design-effort summary (the Table IV quantities) ==")
    print(f"  raw SQL:             {count_loc(Q6_SQL, 'sql'):>6} LoC")
    print(f"  Tydi-lang (total):   {tydi_loc:>6} LoC")
    print(f"  generated VHDL:      {vhdl_loc:>6} LoC")


if __name__ == "__main__":
    main()
