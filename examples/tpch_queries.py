#!/usr/bin/env python3
"""Reproduce the paper's evaluation flow for all TPC-H query designs (Section VI).

For each of the evaluated queries (Q1 with and without sugaring, Q3, Q5, Q6
and Q19) this example compiles the hand-written Tydi-lang design, prints its
line-of-code breakdown (the columns of Table IV), and functionally validates
the compiled design against a numpy reference by streaming a synthetic TPC-H
dataset through the event-driven simulator.

Run with:  python examples/tpch_queries.py
"""

from repro.arrow.tpch import generate_tpch_data
from repro.queries import ALL_QUERIES
from repro.report.tables import table4


def approximately_equal(a, b, tolerance=1e-6):
    if isinstance(a, dict) and isinstance(b, dict):
        return set(a) == set(b) and all(approximately_equal(a[k], b[k], tolerance) for k in a)
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return abs(a - b) <= tolerance * max(1.0, abs(b))
    return a == b


def main() -> None:
    tables = generate_tpch_data(1000, seed=5)

    print("== per-query design effort and functional validation ==")
    for query in ALL_QUERIES:
        loc = query.loc()
        result, trace, _ = query.simulate(tables)
        golden = query.golden(tables)
        # The grouped results are dicts of per-group aggregates; scalar queries
        # return a single float.
        if isinstance(golden, dict) and golden and isinstance(next(iter(golden.values())), dict):
            match = all(
                approximately_equal(result.get(key, {}), group) for key, group in golden.items()
            )
        else:
            match = approximately_equal(result, golden)
        status = "OK " if match else "MISMATCH"
        print(
            f"  {query.title:<28} SQL {loc.raw_sql:>3}  Tydi-lang {loc.query_logic:>4} "
            f"(+{loc.fletcher} Fletcher, +{loc.stdlib} stdlib)  VHDL {loc.vhdl:>5}  "
            f"Rq {loc.ratio_query:5.1f}x  Ra {loc.ratio_total:5.1f}x  sim={status}"
        )

    print("\n== Table IV (measured, with the paper's ratios for comparison) ==")
    print(table4())


if __name__ == "__main__":
    main()
