#!/usr/bin/env python3
"""Simulator-driven bottleneck and deadlock analysis (Section V).

The Tydi simulator's purpose is not only functional prediction: because every
stream is handshaked, the time packets spend waiting in front of a component
directly exposes the design's throughput bottleneck, and components that wait
forever for an operand expose deadlocks.

This example builds a small pricing pipeline over the TPC-H ``lineitem``
table in which one component (the multiplier) is artificially slow, shows how
the bottleneck report pinpoints it, and then breaks the design on purpose (an
operand stream that is never produced) to show the deadlock report.

Run with:  python examples/bottleneck_analysis.py
"""

from repro.arrow.fletcher import fletcher_interface_source, reader_behaviors
from repro.errors import TydiSimulationError
from repro.arrow.tpch import LINEITEM_SCHEMA, generate_tpch_data
from repro.lang import compile_sources
from repro.sim import Simulator, analyze_bottlenecks, detect_deadlock
from repro.sim.behavior import BinaryOpBehavior

PIPELINE = """
streamlet pricing_s {
    total: tpch_decimal out,
}

impl pricing_i of pricing_s {
    instance lineitem(lineitem_reader_i),

    // discounted price = l_extendedprice * (1 - l_discount)
    instance one(const_float_generator_i<type tpch_decimal, 1.0>),
    instance rebate(subtractor_i<type tpch_decimal, type tpch_decimal>),
    one.output => rebate.lhs,
    lineitem.l_discount => rebate.rhs,
    instance price(multiplier_i<type tpch_decimal, type tpch_decimal>),
    lineitem.l_extendedprice => price.lhs,
    rebate.output => price.rhs,

    instance total_sum(sum_i<type tpch_decimal, type tpch_decimal>),
    price.output => total_sum.input,
    total_sum.output => total,
}

top pricing_i;
"""


class SlowMultiplier(BinaryOpBehavior):
    """A multiplier that needs 6 cycles per element: the intended bottleneck."""

    latency = 6

    def __init__(self, implementation):
        super().__init__(implementation, lambda a, b: a * b)


def build():
    return compile_sources(
        [(fletcher_interface_source([LINEITEM_SCHEMA]), "fletcher.td"), (PIPELINE, "pricing.td")],
        top="pricing_i",
        project_name="pricing",
    )


def main() -> None:
    tables = generate_tpch_data(400, seed=99)
    result = build()

    print("== healthy pipeline with a slow multiplier ==")
    behaviors = reader_behaviors([LINEITEM_SCHEMA], {"lineitem": tables["lineitem"]})
    # Override just the multiplier instances with the slow model.
    slow = dict(behaviors)
    slow["price"] = lambda impl: SlowMultiplier(impl)
    simulator = Simulator(result.project, behaviors=slow, channel_capacity=2)
    trace = simulator.run()
    print(f"  processed {tables['lineitem'].num_rows} rows in {trace.end_time} cycles")
    print(f"  total discounted price: {trace.output_values('total')[-1]:,.2f}")

    report = analyze_bottlenecks(trace)
    print("\n" + report.summary())
    culprit = report.bottleneck_component()
    print(f"  => bottleneck component: {culprit}")

    print("\n== broken pipeline (deadlock demonstration) ==")
    # A two-operand component whose second operand is never produced: the adder
    # receives data on one input and waits forever on the other, which is
    # exactly the asynchronous-arrival hazard Section V-B describes.
    broken_source = """
    type num = Stream(Bit(32), d=1);
    streamlet broken_s { a: num in, b: num in, o: num out, }
    impl broken_i of broken_s {
        instance add(adder_i<type num, type num>),
        a => add.lhs,
        b => add.rhs,
        add.output => o,
    }
    top broken_i;
    """
    from repro.lang import compile_project

    broken_result = compile_project(broken_source)
    broken = Simulator(broken_result.project, channel_capacity=2)
    broken.drive("a", [1, 2, 3])  # nobody ever drives "b"
    try:
        broken.run(max_time=5_000)
    except TydiSimulationError as exc:
        # The time budget ran out with events still pending -- the partial
        # trace attached to the error is what we analyse.
        print(f"  simulation stopped: {exc.message}")
    deadlock = detect_deadlock(broken)
    print(f"  deadlocked: {deadlock.deadlocked}")
    print("  " + deadlock.summary().replace("\n", "\n  "))


if __name__ == "__main__":
    main()
