#!/usr/bin/env python3
"""Quickstart: describe typed streaming hardware, compile it, generate VHDL.

This walks the basic Tydi-lang flow of Figure 1:

1. write Tydi-lang source describing logical types, a streamlet and an
   implementation (here: a small component that adds a constant to a stream
   of numbers and accumulates the result),
2. compile it to Tydi-IR with the frontend (templates expanded, sugaring
   applied, design rules checked),
3. generate VHDL with the backend,
4. simulate the design and generate a testbench from the run.

Run with:  python examples/quickstart.py
"""

from repro.lang import compile_project
from repro.sim import Simulator, testbench_from_trace
from repro.vhdl import generate_vhdl, generate_vhdl_testbench

SOURCE = """
// A stream of 32-bit numbers: one sequence (d=1) of unknown length.
type number = Stream(Bit(32), d=1);

// The port map of our accelerator: numbers in, one total out.
streamlet add_and_sum_s {
    values: number in,
    total: number out,
}

// Its implementation, built entirely from standard-library templates:
// a constant generator, an adder and a sum accumulator.
impl add_and_sum_i of add_and_sum_s {
    instance offset(const_int_generator_i<type number, 10>),
    instance add(adder_i<type number, type number>),
    instance accumulate(sum_i<type number, type number>),

    values => add.lhs,
    offset.output => add.rhs,
    add.output => accumulate.input,
    accumulate.output => total,
}

top add_and_sum_i;
"""


def main() -> None:
    # 1 + 2: parse, evaluate, sugar, check, and lower to Tydi-IR.
    result = compile_project(SOURCE)
    print("== frontend stage log ==")
    for stage in result.stages:
        print(f"  {stage}")
    print("\n== design statistics ==")
    for key, value in result.project.statistics().items():
        print(f"  {key}: {value}")

    print("\n== Tydi-IR (excerpt) ==")
    print("\n".join(result.ir_text().splitlines()[:20]))

    # 3: VHDL generation.
    vhdl_files = generate_vhdl(result.project)
    total_lines = sum(len(text.splitlines()) for text in vhdl_files.values())
    print(f"\n== VHDL backend ==\n  {len(vhdl_files)} file(s), {total_lines} lines total")
    for name in sorted(vhdl_files):
        print(f"  - {name}")

    # 4: simulate the design on a concrete input sequence.
    simulator = Simulator(result.project)
    inputs = [1, 2, 3, 4, 5]
    simulator.drive("values", inputs)
    trace = simulator.run()
    expected = sum(v + 10 for v in inputs)
    print(f"\n== simulation ==\n  inputs:   {inputs}")
    print(f"  total:    {trace.output_values('total')[0]} (expected {expected})")

    # ...and turn the observed behaviour into a self-checking VHDL testbench.
    testbench = testbench_from_trace(simulator, trace)
    vhdl_tb = generate_vhdl_testbench(result.project, testbench)
    print(f"\n== generated testbench ==\n  Tydi-IR testbench: {len(testbench.emit().splitlines())} lines")
    print(f"  VHDL testbench:    {len(vhdl_tb.splitlines())} lines")


if __name__ == "__main__":
    main()
